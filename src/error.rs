//! The one error type of the `logr` façade.
//!
//! Every public [`crate::Engine`] entry point returns `Result<_, Error>`:
//! callers match one `#[non_exhaustive]` enum instead of juggling the
//! per-crate error types underneath (`SpillError` from the shard store,
//! `PortableError` from summary serialization, raw `std::io::Error` from
//! the filesystem) — those convert in via `From`, and the originals stay
//! reachable through [`std::error::Error::source`] for callers that need
//! the underlying detail.

use logr_cluster::SpillError;
use logr_core::PortableError;
use std::fmt;
use std::path::PathBuf;

/// Why an engine operation failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Underlying filesystem failure outside the shard store.
    Io(std::io::Error),
    /// The shard spill store failed (reload, append, eviction, or a
    /// recovered file that is truncated/corrupt — the [`SpillError`]
    /// variant says which).
    Spill(SpillError),
    /// Portable-summary serialization failed.
    Portable(PortableError),
    /// The engine configuration is invalid (zero-sized window, slide
    /// wider than the window, `k == 0`, an advisor threshold outside
    /// `[0, 1]`, …).
    Config {
        /// What is wrong with it.
        detail: &'static str,
    },
    /// A typed workload predicate references a feature the workload's
    /// codebook has never seen — the summary can say nothing about it
    /// (the [`crate::analytics`] replacement for the legacy estimators'
    /// silent zero).
    UnknownFeature {
        /// The unresolved feature.
        feature: logr_feature::Feature,
    },
    /// [`crate::EngineBuilder::resume`] found no manifest: the directory
    /// is empty (or was never an engine store).
    MissingManifest {
        /// The store directory inspected.
        dir: PathBuf,
    },
    /// The store manifest was written by a newer build than this one —
    /// refusing to guess at a future format.
    ManifestVersion {
        /// Version found in the manifest.
        found: u32,
        /// Largest version this build reads.
        supported: u32,
    },
    /// The store manifest fails validation (bad magic, checksum mismatch,
    /// or a structurally impossible payload).
    CorruptManifest {
        /// What failed.
        detail: String,
    },
    /// The manifest references a shard file that no longer exists.
    MissingShard {
        /// The missing file.
        path: PathBuf,
    },
    /// Manifest and shard files disagree (point counts or feature
    /// universes that cannot belong to one checkpoint).
    StoreMismatch {
        /// The inconsistency found.
        detail: String,
    },
    /// The store directory is already owned by a live engine (this
    /// process or another): opening it twice would let one engine
    /// garbage-collect shard files the other still reads.
    StoreLocked {
        /// The contested store directory.
        dir: PathBuf,
        /// Process id recorded in the lock.
        pid: u32,
    },
    /// The storage device is out of space (`ENOSPC`). Split from
    /// [`Error::Io`] because it is the one I/O failure an operator fixes
    /// without touching the store: free disk and retry — the engine
    /// leaves the store openable at its previous durable checkpoint.
    StorageExhausted {
        /// The operation that hit the full disk.
        detail: String,
    },
    /// A write operation (ingest, flush, checkpoint, compact) was asked
    /// of an engine opened with [`crate::EngineBuilder::read_only`].
    ReadOnly,
    /// A durable-only operation (checkpoint) was asked of an in-memory
    /// engine.
    NotDurable,
    /// A thread panicked while holding an engine lock; the in-memory
    /// state may be torn. Durable engines recover by reopening from the
    /// last checkpoint.
    Poisoned,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "engine I/O error: {e}"),
            Error::Spill(e) => write!(f, "shard store error: {e}"),
            Error::Portable(e) => write!(f, "portable summary error: {e}"),
            Error::Config { detail } => write!(f, "invalid engine configuration: {detail}"),
            Error::UnknownFeature { feature } => {
                write!(f, "predicate references a feature unknown to this workload: {feature}")
            }
            Error::MissingManifest { dir } => {
                write!(f, "no engine manifest in {} (nothing to resume)", dir.display())
            }
            Error::ManifestVersion { found, supported } => write!(
                f,
                "engine manifest version {found} is newer than this build reads (≤ {supported})"
            ),
            Error::CorruptManifest { detail } => write!(f, "corrupt engine manifest: {detail}"),
            Error::MissingShard { path } => {
                write!(f, "manifest references a missing shard file: {}", path.display())
            }
            Error::StoreMismatch { detail } => {
                write!(f, "inconsistent engine store: {detail}")
            }
            Error::StoreLocked { dir, pid } => {
                write!(f, "engine store {} is locked by live process {pid}", dir.display())
            }
            Error::StorageExhausted { detail } => {
                write!(f, "storage exhausted (disk full): {detail}")
            }
            Error::ReadOnly => {
                write!(f, "engine was opened read-only; writes are not available")
            }
            Error::NotDurable => {
                write!(f, "operation requires a durable engine (opened on a directory)")
            }
            Error::Poisoned => write!(f, "engine lock poisoned by a panicking thread"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Spill(e) => Some(e),
            Error::Portable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::StorageFull {
            return Error::StorageExhausted { detail: e.to_string() };
        }
        Error::Io(e)
    }
}

impl From<SpillError> for Error {
    fn from(e: SpillError) -> Self {
        match e {
            // ENOSPC inside the shard store is the same operator
            // condition as ENOSPC anywhere else — surface it uniformly.
            SpillError::Io(io) if io.kind() == std::io::ErrorKind::StorageFull => {
                Error::StorageExhausted { detail: format!("shard store: {io}") }
            }
            // Shard files that decode but belong to a different chain
            // position (swapped payloads, foreign restores) are a store
            // inconsistency, not file corruption.
            SpillError::ChainMismatch { detail } => {
                Error::StoreMismatch { detail: detail.to_string() }
            }
            other => Error::Spill(other),
        }
    }
}

impl From<PortableError> for Error {
    fn from(e: PortableError) -> Self {
        Error::Portable(e)
    }
}
