//! The engine store manifest: one versioned, checksummed file that makes
//! a spill directory **reopenable**.
//!
//! The shard spill files (`logr-cluster::spill`) hold the history's
//! pairwise mismatch structure, but on their own a directory of them is
//! not a resumable engine: nothing records the stream configuration, the
//! absorbed history log (codebook + distinct vectors + multiplicities),
//! the drift-baseline rotation, the partially-filled window buffer, or
//! which files belong to the checkpoint in which order. The manifest
//! stores exactly that — every bit of [`logr_core::StreamState`] plus the
//! ordered shard-file list — so [`crate::Engine::open`] rebuilds a
//! summarizer that continues **bit-identically** from where the persisted
//! one stopped.
//!
//! # Format (version 3, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! ──────  ────  ──────────────────────────────────────────────────────
//!      0  8     magic  b"LOGRMNFT"
//!      8  4     version (u32, = 3)
//!     12  …     body (see below)
//!  end−8  8     checksum: FNV-1a 64 over bytes [8, end−8)
//! ```
//!
//! Body, in order: the stream configuration (version 3 appends the
//! source configuration — a tag byte, plus the template-miner knobs when
//! the source is `Template`), the resident budget, the scalar stream
//! state, the window buffer and pending statements (raw record text),
//! the baseline rotation and materialized baseline, the history log, the
//! featurizer journal (`u64` length + bytes; version 3 only), and the
//! shard chain (universe width, total points, ordered file names
//! relative to the store directory). Strings are `u64` length + UTF-8;
//! optional integers are a presence byte + value; query logs store their
//! universe width, codebook (class tag + text, in id order) and entries
//! (sorted id list + multiplicity, in insertion order) — enough to
//! reproduce interning order, and therefore every downstream bit.
//!
//! Readers validate in order — length floor, magic, **version** (a
//! manifest from a newer build is refused before its bytes are
//! interpreted), checksum, then structure — so every way the file can be
//! wrong maps to one typed [`Error`] variant and decoding never panics.
//!
//! # The delta log (`engine.delta`)
//!
//! Rewriting the full manifest at every window close costs
//! `O(history)`; the delta log makes the close path `O(window)`. Each
//! window close appends one self-checksummed [`DeltaRecord`] — the
//! post-close scalars, window buffer, pending statements, the closed
//! window's stride log (the increment `history.absorb`ed *and* the input
//! the baseline rotation replays, with its weight and exclusion span),
//! and the shard files added by that close — to an append-only log
//! **bound to one exact base manifest** by the base's trailing checksum
//! and byte length (header fields). Recovery reads the base, then
//! replays every valid record in sequence; a log whose binding does not
//! match the current base is stale (a full rewrite superseded it) and is
//! ignored, then swept by the next writable resume's GC.
//!
//! ```text
//! header:  magic b"LOGRDLTA" · version u32 · base checksum u64 ·
//!          base length u64 · FNV-1a 64 over bytes [8, 28)
//! record:  payload length u64 · payload · FNV-1a 64 over the payload
//! ```
//!
//! Commit protocol: the first record is written together with the header
//! as one file creation (truncating any stale predecessor), fsynced,
//! and the directory synced; every later record is a single
//! [`Vfs::append`] followed by an fsync — no rename, because the log is
//! never replaced, only extended. Replay stops at the first torn or
//! checksum-invalid frame: a torn tail is an unacknowledged close (the
//! ingest call that wrote it never returned), exactly like a torn
//! manifest rename under the full-rewrite protocol. A checksum-*valid*
//! record that is structurally wrong (bad sequence number, malformed
//! body) is a typed [`Error::CorruptManifest`] — that is tampering or a
//! writer bug, never a crash artifact, and must be loud.
//!
//! Version 2 of the manifest is byte-compatible with version 1; the bump
//! exists so builds that predate the delta log refuse stores that may
//! carry one (opening the base alone would silently drop acknowledged
//! closes). Version 3 adds the pluggable-source fields — the source
//! configuration at the end of the stream configuration and the
//! featurizer journal after the history log — and readers still accept
//! version 2 bytes (decoded as the SQL source with an empty journal,
//! exactly what every version-2 store was). Delta-log version 2
//! likewise appends the close's journal increment to each record;
//! version-1 records decode with an empty increment.

use crate::error::Error;
use logr_cluster::spill::fnv1a64;
use logr_cluster::vfs::{retry_io, RealFs, Vfs};
use logr_cluster::Distance;
use logr_core::{
    rotate_baseline, SourceConfig, StreamConfig, StreamState, TemplateConfig, TimeWindows,
};
use logr_feature::{Feature, FeatureClass, FeatureId, QueryLog, QueryVector};
use std::collections::VecDeque;
use std::path::Path;

/// File name of the manifest inside an engine store directory.
pub const FILE_NAME: &str = "engine.manifest";

/// First 8 bytes of every manifest.
pub const MAGIC: [u8; 8] = *b"LOGRMNFT";

/// Format version this build writes and the newest one it reads.
/// Version 2 bodies are byte-identical to version 1; the bump gates
/// stores that may carry an `engine.delta` log away from older builds
/// that would silently ignore it. Version 3 adds the source
/// configuration and the featurizer journal; version-2 bytes still
/// decode (as the SQL source with an empty journal — see the module
/// docs).
pub const VERSION: u32 = 3;

/// Everything needed to reopen an engine (see the module docs).
#[derive(Debug, Clone)]
pub struct Manifest {
    /// The stream configuration in force when the checkpoint was taken.
    pub config: StreamConfig,
    /// The resident shard budget in force.
    pub resident_budget: usize,
    /// The summarizer's resumable state.
    pub state: StreamState,
    /// Feature-universe width of the shard set at checkpoint.
    pub n_features: usize,
    /// Total points across the shard chain (cross-check for the files).
    pub total_points: usize,
    /// Shard file names in chain order, relative to the store directory.
    pub shard_files: Vec<String>,
}

/// Serialize a manifest to its wire form.
pub fn encode(m: &Manifest) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());

    put_config(&mut out, &m.config);
    put_u64(&mut out, m.resident_budget as u64);

    put_u64(&mut out, m.state.windows_closed as u64);
    put_u64(&mut out, m.state.since_close);
    put_u64(&mut out, m.state.last_ts_ms);
    put_opt_u64(&mut out, m.state.next_close_ms);
    put_u64(&mut out, m.state.statements_parsed);

    put_u64(&mut out, m.state.buffer.len() as u64);
    for (sql, count, ts) in &m.state.buffer {
        put_str(&mut out, sql);
        put_u64(&mut out, *count);
        put_u64(&mut out, *ts);
    }
    put_u64(&mut out, m.state.pending.len() as u64);
    for (sql, count) in &m.state.pending {
        put_str(&mut out, sql);
        put_u64(&mut out, *count);
    }
    put_u64(&mut out, m.state.baseline_logs.len() as u64);
    for (log, offered) in &m.state.baseline_logs {
        put_log(&mut out, log);
        put_u64(&mut out, *offered);
    }
    put_log(&mut out, &m.state.baseline);
    put_log(&mut out, &m.state.history);
    put_bytes(&mut out, &m.state.source_state);

    put_u64(&mut out, m.n_features as u64);
    put_u64(&mut out, m.total_points as u64);
    put_u64(&mut out, m.shard_files.len() as u64);
    for name in &m.shard_files {
        put_str(&mut out, name);
    }

    let checksum = fnv1a64(&out[8..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode and validate a manifest's wire form (see the module docs for
/// the validation order). Never panics.
pub fn decode(bytes: &[u8]) -> Result<Manifest, Error> {
    if bytes.len() < 8 + 4 + 8 {
        return Err(corrupt("shorter than magic + version + checksum"));
    }
    if bytes[..8] != MAGIC {
        return Err(corrupt("bad magic (not an engine manifest)"));
    }
    let mut version_le = [0u8; 4];
    version_le.copy_from_slice(&bytes[8..12]);
    let version = u32::from_le_bytes(version_le);
    if version > VERSION {
        return Err(Error::ManifestVersion { found: version, supported: VERSION });
    }
    let mut stored_le = [0u8; 8];
    stored_le.copy_from_slice(&bytes[bytes.len() - 8..]);
    let stored = u64::from_le_bytes(stored_le);
    let computed = fnv1a64(&bytes[8..bytes.len() - 8]);
    if stored != computed {
        return Err(Error::CorruptManifest {
            detail: format!("checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"),
        });
    }

    let mut r = Reader { bytes: &bytes[12..bytes.len() - 8] };
    let config = get_config(&mut r, version)?;
    let resident_budget = get_usize(&mut r, "resident budget")?;

    let windows_closed = get_usize(&mut r, "windows closed")?;
    let since_close = r.u64("since-close counter")?;
    let last_ts_ms = r.u64("last timestamp")?;
    let next_close_ms = get_opt_u64(&mut r, "next close boundary")?;
    let statements_parsed = r.u64("parse counter")?;

    let n = get_len(&mut r, "buffer length")?;
    let mut buffer = Vec::with_capacity(n);
    for _ in 0..n {
        let sql = r.str("buffered statement")?;
        let count = r.u64("buffered multiplicity")?;
        let ts = r.u64("buffered timestamp")?;
        buffer.push((sql, count, ts));
    }
    let n = get_len(&mut r, "pending length")?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        let sql = r.str("pending statement")?;
        let count = r.u64("pending multiplicity")?;
        pending.push((sql, count));
    }
    let n = get_len(&mut r, "baseline rotation length")?;
    let mut baseline_logs = Vec::with_capacity(n);
    for _ in 0..n {
        let log = get_log(&mut r)?;
        let offered = r.u64("baseline stride size")?;
        baseline_logs.push((log, offered));
    }
    let baseline = get_log(&mut r)?;
    let history = get_log(&mut r)?;
    // Version 2 predates pluggable sources: the featurizer was the SQL
    // path, whose journal is always empty.
    let source_state =
        if version >= 3 { get_bytes(&mut r, "featurizer journal")? } else { Vec::new() };

    let n_features = get_usize(&mut r, "shard universe width")?;
    let total_points = get_usize(&mut r, "shard point total")?;
    let n = get_len(&mut r, "shard file count")?;
    let mut shard_files = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("shard file name")?;
        // File names are interpreted relative to the store directory; a
        // name that escapes it (separator or parent component) cannot
        // come from our writer.
        if name.is_empty() || name.contains(['/', '\\']) || name == ".." {
            return Err(corrupt("shard file name escapes the store directory"));
        }
        shard_files.push(name);
    }
    if !r.bytes.is_empty() {
        return Err(corrupt("trailing bytes after the shard file list"));
    }

    Ok(Manifest {
        config,
        resident_budget,
        state: StreamState {
            buffer,
            pending,
            since_close,
            next_close_ms,
            last_ts_ms,
            windows_closed,
            statements_parsed,
            baseline_logs,
            baseline,
            history,
            source_state,
        },
        n_features,
        total_points,
        shard_files,
    })
}

/// Atomically and durably write a manifest to `path`: write a `.tmp`
/// sibling, **fsync it**, rename over the target, then fsync the
/// directory. The manifest is the store's single recovery root (shard
/// files are write-once under fresh names, so an old manifest always
/// points at intact files — but a replaced manifest is gone), which is
/// why the fsyncs matter: without them a power loss shortly after the
/// rename can leave a zero-length manifest on journaled filesystems
/// with delayed allocation, and with them a crash at any point leaves
/// either the previous checkpoint or the new one.
pub fn write_file(path: &Path, m: &Manifest) -> Result<(), Error> {
    write_file_with(&RealFs, path, m)
}

/// [`write_file`] with every file operation routed through `vfs`.
/// Transient errors (`EINTR`/`EAGAIN`) are retried with bounded backoff
/// at each step; any other failure — `ENOSPC` included — aborts with the
/// `.tmp` sibling swept, leaving the previous manifest untouched (the
/// store stays openable at its last durable checkpoint).
pub fn write_file_with(vfs: &dyn Vfs, path: &Path, m: &Manifest) -> Result<(), Error> {
    write_bytes_with(vfs, path, &encode(m))
}

/// [`write_file_with`] that also opens a fresh [`DeltaLog`] session bound
/// to the just-written base — the one encode pass serves both the file
/// and the binding, so full persists never hash the manifest twice.
pub fn write_base_with(vfs: &dyn Vfs, path: &Path, m: &Manifest) -> Result<DeltaLog, Error> {
    let bytes = encode(m);
    write_bytes_with(vfs, path, &bytes)?;
    Ok(DeltaLog::for_base_bytes(&bytes))
}

fn write_bytes_with(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), Error> {
    let tmp = path.with_extension("tmp");
    let write_sync_rename = (|| {
        retry_io(|| vfs.write(&tmp, bytes))?;
        retry_io(|| vfs.fsync(&tmp))?;
        retry_io(|| vfs.rename(&tmp, path))?;
        // Persist the rename itself (see `Vfs::sync_dir` for the
        // non-POSIX degradation).
        if let Some(dir) = path.parent() {
            retry_io(|| vfs.sync_dir(dir))?;
        }
        Ok::<(), std::io::Error>(())
    })();
    if let Err(e) = write_sync_rename {
        let _: Result<(), _> = vfs.remove(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Load and validate a manifest from `path`.
pub fn read_file(path: &Path) -> Result<Manifest, Error> {
    read_file_with(&RealFs, path)
}

/// [`read_file`] through `vfs`, riding out transient read errors.
pub fn read_file_with(vfs: &dyn Vfs, path: &Path) -> Result<Manifest, Error> {
    decode(&retry_io(|| vfs.read(path))?)
}

fn corrupt(detail: impl Into<String>) -> Error {
    Error::CorruptManifest { detail: detail.into() }
}

// ---- the delta log ----------------------------------------------------

/// File name of the delta log inside an engine store directory.
pub const DELTA_FILE_NAME: &str = "engine.delta";

/// First 8 bytes of every delta log.
pub const DELTA_MAGIC: [u8; 8] = *b"LOGRDLTA";

/// Delta-log format version this build writes and the newest one it
/// reads. Version 2 appends the close's featurizer-journal increment to
/// each record; version-1 records decode with an empty increment (the
/// SQL source, the only one version 1 could carry, journals nothing).
pub const DELTA_VERSION: u32 = 2;

/// Bytes in a delta-log header: magic + version + base checksum + base
/// length + header checksum.
pub const DELTA_HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;

/// One window close's increment over the base manifest (see the module
/// docs): everything `close_window` changed, in `O(window)` bytes —
/// scalars and the window buffer are post-close *values* (overwritten on
/// replay), the stride log is the exact increment the history absorbed
/// (re-absorbed on replay) and the pair the baseline rotation pushed
/// (replayed through [`logr_core::rotate_baseline`], the same function
/// the live close ran, so the rotation and rebuilt baseline land
/// bit-identically without being recorded), and the shard-file additions
/// extend the base's chain.
#[derive(Debug, Clone)]
pub struct DeltaRecord {
    /// 1-based position in the log (assigned by [`DeltaLog::append_with`],
    /// verified on replay).
    pub seq: u64,
    /// Post-close [`StreamState::windows_closed`].
    pub windows_closed: usize,
    /// Post-close [`StreamState::since_close`].
    pub since_close: u64,
    /// Post-close [`StreamState::last_ts_ms`].
    pub last_ts_ms: u64,
    /// Post-close [`StreamState::next_close_ms`].
    pub next_close_ms: Option<u64>,
    /// Post-close [`StreamState::statements_parsed`].
    pub statements_parsed: u64,
    /// Post-close window buffer (the sliding overlap; empty for tumbling).
    pub buffer: Vec<(String, u64, u64)>,
    /// Post-close pending stride statements.
    pub pending: Vec<(String, u64)>,
    /// The closed window's stride log — the exact increment
    /// `history.absorb`ed at this close, and the log the baseline
    /// rotation pushed.
    pub stride_log: QueryLog,
    /// Offered-query weight the rotation paired with `stride_log`.
    pub window_queries: u64,
    /// Exclusion span the rotation's skip walk used at close time.
    pub overlap_span: u64,
    /// Shard file names this close added to the chain, in order.
    pub new_shard_files: Vec<String>,
    /// Post-close feature-universe width of the shard set.
    pub n_features: usize,
    /// Post-close total points across the shard chain.
    pub total_points: usize,
    /// The featurizer-journal increment since the previous record (from
    /// [`logr_core::CloseDelta::source_events`]); replay appends it to
    /// the base's journal, so concatenated increments rebuild the full
    /// journal byte-for-byte. Empty for the SQL source.
    pub source_events: Vec<u8>,
}

/// Writer side of one delta log, bound to the base manifest it extends.
/// Created by [`write_base_with`] (or [`DeltaLog::for_base_bytes`]);
/// dropped — never persisted — whenever a full rewrite supersedes it.
#[derive(Debug, Clone)]
pub struct DeltaLog {
    base_checksum: u64,
    base_len: u64,
    next_seq: u64,
    appended_bytes: u64,
}

impl DeltaLog {
    /// A fresh session bound to the encoded base manifest `bytes`
    /// (binding = its trailing FNV-1a 64 checksum + byte length).
    pub fn for_base_bytes(bytes: &[u8]) -> DeltaLog {
        let mut checksum_le = [0u8; 8];
        if bytes.len() >= 8 {
            checksum_le.copy_from_slice(&bytes[bytes.len() - 8..]);
        }
        DeltaLog {
            base_checksum: u64::from_le_bytes(checksum_le),
            base_len: bytes.len() as u64,
            next_seq: 1,
            appended_bytes: 0,
        }
    }

    /// Records appended so far in this session.
    pub fn records(&self) -> u64 {
        self.next_seq - 1
    }

    /// Log bytes appended so far (frames only; the header is free).
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Byte length of the base manifest this session extends.
    pub fn base_len(&self) -> u64 {
        self.base_len
    }

    /// Append one record durably: the first record creates the log file
    /// (header + frame in one truncating write — replacing any stale
    /// predecessor — then fsync + directory sync for the new dirent);
    /// every later record is a single [`Vfs::append`] + fsync. On error
    /// the log tail may be torn — the caller must abandon the session
    /// (fall back to a full rewrite), never append again, because a
    /// second append after a partial one would misalign every later
    /// frame. Replay treats a torn tail as an unacknowledged close.
    pub fn append_with(
        &mut self,
        vfs: &dyn Vfs,
        dir: &Path,
        rec: &DeltaRecord,
    ) -> Result<(), Error> {
        let payload = encode_record_payload(rec, self.next_seq);
        let mut frame = Vec::with_capacity(payload.len() + 16);
        put_u64(&mut frame, payload.len() as u64);
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        let path = dir.join(DELTA_FILE_NAME);
        if self.next_seq == 1 {
            let mut bytes = Vec::with_capacity(DELTA_HEADER_LEN + frame.len());
            bytes.extend_from_slice(&DELTA_MAGIC);
            bytes.extend_from_slice(&DELTA_VERSION.to_le_bytes());
            put_u64(&mut bytes, self.base_checksum);
            put_u64(&mut bytes, self.base_len);
            let header_sum = fnv1a64(&bytes[8..28]);
            bytes.extend_from_slice(&header_sum.to_le_bytes());
            bytes.extend_from_slice(&frame);
            retry_io(|| vfs.write(&path, &bytes))?;
            retry_io(|| vfs.fsync(&path))?;
            retry_io(|| vfs.sync_dir(dir))?;
        } else {
            retry_io(|| vfs.append(&path, &frame))?;
            retry_io(|| vfs.fsync(&path))?;
        }
        self.next_seq += 1;
        self.appended_bytes += frame.len() as u64;
        Ok(())
    }
}

/// What replaying a store's delta log found (see [`read_store_with`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaReplay {
    /// Valid records applied on top of the base (0 when the log is
    /// absent, stale, or its first frame is torn).
    pub records_applied: u64,
    /// Whether an `engine.delta` file existed at all.
    pub log_present: bool,
    /// Whether its header was intact and bound to the loaded base. A
    /// present-but-unbound log is stale (a full rewrite superseded it)
    /// and safe to delete.
    pub log_bound: bool,
}

/// Load a store's recovery root: the base manifest plus every valid
/// delta record replayed in sequence. This is the one read-side entry
/// point recovery uses; the [`DeltaReplay`] tells the caller whether a
/// fold (rewrite base, drop log) is warranted.
pub fn read_store_with(vfs: &dyn Vfs, dir: &Path) -> Result<(Manifest, DeltaReplay), Error> {
    let base_bytes = retry_io(|| vfs.read(&dir.join(FILE_NAME)))?;
    let mut m = decode(&base_bytes)?;
    let delta_bytes = match retry_io(|| vfs.read(&dir.join(DELTA_FILE_NAME))) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let replay = DeltaReplay { records_applied: 0, log_present: false, log_bound: false };
            return Ok((m, replay));
        }
        Err(e) => return Err(e.into()),
    };
    let replay = replay_delta(&mut m, &base_bytes, &delta_bytes)?;
    Ok((m, replay))
}

/// Replay `delta_bytes` over the manifest decoded from `base_bytes`.
/// Tolerant exactly where a power cut can tear (short/unsynced header,
/// torn or checksum-invalid trailing frame: replay stops, the tail was
/// never acknowledged), loud everywhere else (foreign magic, newer
/// version, checksum-valid but malformed or out-of-sequence records are
/// typed errors — those are tampering or writer bugs, not crash
/// artifacts).
pub fn replay_delta(
    m: &mut Manifest,
    base_bytes: &[u8],
    delta_bytes: &[u8],
) -> Result<DeltaReplay, Error> {
    let stale = |bound| DeltaReplay { records_applied: 0, log_present: true, log_bound: bound };
    if delta_bytes.len() < DELTA_HEADER_LEN {
        // A creation write torn before the header completed: the log
        // holds nothing acknowledged.
        return Ok(stale(false));
    }
    if delta_bytes[..8] != DELTA_MAGIC {
        return Err(corrupt("bad delta-log magic (not an engine delta log)"));
    }
    let mut version_le = [0u8; 4];
    version_le.copy_from_slice(&delta_bytes[8..12]);
    let version = u32::from_le_bytes(version_le);
    if version > DELTA_VERSION {
        return Err(Error::ManifestVersion { found: version, supported: DELTA_VERSION });
    }
    let mut stored_le = [0u8; 8];
    stored_le.copy_from_slice(&delta_bytes[28..36]);
    if u64::from_le_bytes(stored_le) != fnv1a64(&delta_bytes[8..28]) {
        // Torn creation: header never became durable in full.
        return Ok(stale(false));
    }
    let mut base_checksum_le = [0u8; 8];
    base_checksum_le.copy_from_slice(&delta_bytes[12..20]);
    let mut base_len_le = [0u8; 8];
    base_len_le.copy_from_slice(&delta_bytes[20..28]);
    let bound_checksum = base_bytes.len() >= 8
        && base_bytes[base_bytes.len() - 8..] == base_checksum_le
        && u64::from_le_bytes(base_len_le) == base_bytes.len() as u64;
    if !bound_checksum {
        // Bound to a different base: a full rewrite superseded this log.
        return Ok(stale(false));
    }
    let mut off = DELTA_HEADER_LEN;
    let mut applied = 0u64;
    while off < delta_bytes.len() {
        if delta_bytes.len() - off < 8 {
            break; // torn length prefix
        }
        let mut len_le = [0u8; 8];
        len_le.copy_from_slice(&delta_bytes[off..off + 8]);
        let Ok(len) = usize::try_from(u64::from_le_bytes(len_le)) else { break };
        let Some(end) = off.checked_add(8 + len).and_then(|e| e.checked_add(8)) else { break };
        if end > delta_bytes.len() {
            break; // torn frame
        }
        let payload = &delta_bytes[off + 8..off + 8 + len];
        let mut frame_sum_le = [0u8; 8];
        frame_sum_le.copy_from_slice(&delta_bytes[end - 8..end]);
        if u64::from_le_bytes(frame_sum_le) != fnv1a64(payload) {
            break; // torn or unsynced tail — never acknowledged
        }
        let rec = decode_record(payload, version)?;
        if rec.seq != applied + 1 {
            return Err(corrupt(format!(
                "delta record out of sequence: found {}, expected {}",
                rec.seq,
                applied + 1
            )));
        }
        apply_record(m, &rec);
        applied += 1;
        off = end;
    }
    Ok(DeltaReplay { records_applied: applied, log_present: true, log_bound: true })
}

/// Fold one record into the manifest — the replay side of the recording
/// `close_window` does (see [`DeltaRecord`] field docs). The baseline
/// rotation is not stored in the record: it reruns here through the same
/// [`rotate_baseline`] the live close used, on the manifest's rotation
/// state, from the record's inputs.
fn apply_record(m: &mut Manifest, rec: &DeltaRecord) {
    m.state.windows_closed = rec.windows_closed;
    m.state.since_close = rec.since_close;
    m.state.last_ts_ms = rec.last_ts_ms;
    m.state.next_close_ms = rec.next_close_ms;
    m.state.statements_parsed = rec.statements_parsed;
    m.state.buffer = rec.buffer.clone();
    m.state.pending = rec.pending.clone();
    m.state.history.absorb(&rec.stride_log);
    let mut rotation: VecDeque<(QueryLog, u64)> = std::mem::take(&mut m.state.baseline_logs).into();
    m.state.baseline = rotate_baseline(
        &mut rotation,
        rec.stride_log.clone(),
        rec.window_queries,
        rec.overlap_span,
        m.config.baseline_windows,
    );
    m.state.baseline_logs = rotation.into();
    m.shard_files.extend(rec.new_shard_files.iter().cloned());
    m.n_features = rec.n_features;
    m.total_points = rec.total_points;
    m.state.source_state.extend_from_slice(&rec.source_events);
}

fn encode_record_payload(rec: &DeltaRecord, seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    put_u64(&mut out, seq);
    put_u64(&mut out, rec.windows_closed as u64);
    put_u64(&mut out, rec.since_close);
    put_u64(&mut out, rec.last_ts_ms);
    put_opt_u64(&mut out, rec.next_close_ms);
    put_u64(&mut out, rec.statements_parsed);
    put_u64(&mut out, rec.buffer.len() as u64);
    for (sql, count, ts) in &rec.buffer {
        put_str(&mut out, sql);
        put_u64(&mut out, *count);
        put_u64(&mut out, *ts);
    }
    put_u64(&mut out, rec.pending.len() as u64);
    for (sql, count) in &rec.pending {
        put_str(&mut out, sql);
        put_u64(&mut out, *count);
    }
    put_log(&mut out, &rec.stride_log);
    put_u64(&mut out, rec.window_queries);
    put_u64(&mut out, rec.overlap_span);
    put_u64(&mut out, rec.new_shard_files.len() as u64);
    for name in &rec.new_shard_files {
        put_str(&mut out, name);
    }
    put_u64(&mut out, rec.n_features as u64);
    put_u64(&mut out, rec.total_points as u64);
    put_bytes(&mut out, &rec.source_events);
    out
}

fn decode_record(payload: &[u8], version: u32) -> Result<DeltaRecord, Error> {
    let mut r = Reader { bytes: payload };
    let seq = r.u64("delta sequence number")?;
    let windows_closed = get_usize(&mut r, "delta windows closed")?;
    let since_close = r.u64("delta since-close counter")?;
    let last_ts_ms = r.u64("delta last timestamp")?;
    let next_close_ms = get_opt_u64(&mut r, "delta next close boundary")?;
    let statements_parsed = r.u64("delta parse counter")?;
    let n = get_len(&mut r, "delta buffer length")?;
    let mut buffer = Vec::with_capacity(n);
    for _ in 0..n {
        let sql = r.str("delta buffered statement")?;
        let count = r.u64("delta buffered multiplicity")?;
        let ts = r.u64("delta buffered timestamp")?;
        buffer.push((sql, count, ts));
    }
    let n = get_len(&mut r, "delta pending length")?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        let sql = r.str("delta pending statement")?;
        let count = r.u64("delta pending multiplicity")?;
        pending.push((sql, count));
    }
    let stride_log = get_log(&mut r)?;
    let window_queries = r.u64("delta rotation weight")?;
    let overlap_span = r.u64("delta rotation exclusion span")?;
    let n = get_len(&mut r, "delta shard file count")?;
    let mut new_shard_files = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("delta shard file name")?;
        if name.is_empty() || name.contains(['/', '\\']) || name == ".." {
            return Err(corrupt("delta shard file name escapes the store directory"));
        }
        new_shard_files.push(name);
    }
    let n_features = get_usize(&mut r, "delta shard universe width")?;
    let total_points = get_usize(&mut r, "delta shard point total")?;
    // Version 1 predates pluggable sources: SQL journals nothing.
    let source_events =
        if version >= 2 { get_bytes(&mut r, "delta journal increment")? } else { Vec::new() };
    if !r.bytes.is_empty() {
        return Err(corrupt("trailing bytes after the delta record"));
    }
    Ok(DeltaRecord {
        seq,
        windows_closed,
        since_close,
        last_ts_ms,
        next_close_ms,
        statements_parsed,
        buffer,
        pending,
        stride_log,
        window_queries,
        overlap_span,
        new_shard_files,
        n_features,
        total_points,
        source_events,
    })
}

// ---- primitive writers ------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_config(out: &mut Vec<u8>, c: &StreamConfig) {
    put_u64(out, c.window);
    put_opt_u64(out, c.slide);
    match c.time {
        None => out.push(0),
        Some(tw) => {
            out.push(1);
            put_u64(out, tw.window_ms);
            put_opt_u64(out, tw.slide_ms);
        }
    }
    put_u64(out, c.baseline_windows as u64);
    put_u64(out, c.k as u64);
    let (tag, p) = match c.metric {
        Distance::Euclidean => (0u8, 0.0),
        Distance::Manhattan => (1, 0.0),
        Distance::Minkowski(p) => (2, p),
        Distance::Hamming => (3, 0.0),
        Distance::Chebyshev => (4, 0.0),
        Distance::Canberra => (5, 0.0),
    };
    out.push(tag);
    put_f64(out, p);
    put_f64(out, c.drift_tolerance);
    put_u64(out, c.seed);
    // Version 3: the record → feature source. A tag byte keeps the SQL
    // default one byte wide; the template miner's knobs follow its tag.
    match c.source {
        SourceConfig::Sql => out.push(0),
        SourceConfig::Template(t) => {
            out.push(1);
            put_u64(out, t.depth as u64);
            put_u64(out, t.max_children as u64);
            put_f64(out, t.similarity);
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn put_log(out: &mut Vec<u8>, log: &QueryLog) {
    put_u64(out, log.num_features() as u64);
    put_u64(out, log.codebook().len() as u64);
    for (_, feature) in log.codebook().iter() {
        let tag = match feature.class {
            FeatureClass::Select => 0u8,
            FeatureClass::From => 1,
            FeatureClass::Where => 2,
            FeatureClass::GroupBy => 3,
            FeatureClass::OrderBy => 4,
            FeatureClass::Template => 5,
            FeatureClass::Param => 6,
        };
        out.push(tag);
        put_str(out, &feature.text);
    }
    put_u64(out, log.entries().len() as u64);
    for (vector, count) in log.entries() {
        put_u64(out, vector.ids().len() as u64);
        for id in vector.iter() {
            out.extend_from_slice(&id.0.to_le_bytes());
        }
        put_u64(out, *count);
    }
}

// ---- primitive readers ------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
}

impl Reader<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], Error> {
        if self.bytes.len() < n {
            return Err(corrupt(format!("truncated while reading {what}")));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, Error> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, Error> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, Error> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self, what: &str) -> Result<f64, Error> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<String, Error> {
        // `as usize` would silently truncate a hostile 64-bit length on
        // 32-bit targets and misparse from the wrong offset; convert
        // fallibly like `get_usize` does.
        let len = usize::try_from(self.u64(what)?)
            .map_err(|_| corrupt(format!("{what} length exceeds the address space")))?;
        // A hostile length must not become a huge reservation: take()
        // bounds it against the remaining bytes first.
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt(format!("{what} is not valid UTF-8")))
    }
}

fn get_usize(r: &mut Reader<'_>, what: &str) -> Result<usize, Error> {
    usize::try_from(r.u64(what)?).map_err(|_| corrupt(format!("{what} exceeds the address space")))
}

/// A declared element count, sanity-bounded by the remaining bytes (every
/// element is at least one byte) so hostile counts cannot over-reserve.
fn get_len(r: &mut Reader<'_>, what: &str) -> Result<usize, Error> {
    let n = get_usize(r, what)?;
    if n > r.bytes.len() {
        return Err(corrupt(format!("{what} larger than the remaining payload")));
    }
    Ok(n)
}

fn get_opt_u64(r: &mut Reader<'_>, what: &str) -> Result<Option<u64>, Error> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.u64(what)?)),
        _ => Err(corrupt(format!("bad presence byte for {what}"))),
    }
}

fn get_config(r: &mut Reader<'_>, version: u32) -> Result<StreamConfig, Error> {
    let window = r.u64("window size")?;
    let slide = get_opt_u64(r, "slide")?;
    let time = match r.u8("time-window presence")? {
        0 => None,
        1 => {
            let window_ms = r.u64("time window span")?;
            let slide_ms = get_opt_u64(r, "time slide")?;
            Some(TimeWindows { window_ms, slide_ms })
        }
        _ => return Err(corrupt("bad presence byte for time windows")),
    };
    let baseline_windows = get_usize(r, "baseline window count")?;
    let k = get_usize(r, "cluster count")?;
    let tag = r.u8("metric tag")?;
    let p = r.f64("metric parameter")?;
    let metric = match tag {
        0 => Distance::Euclidean,
        1 => Distance::Manhattan,
        2 => Distance::Minkowski(p),
        3 => Distance::Hamming,
        4 => Distance::Chebyshev,
        5 => Distance::Canberra,
        _ => return Err(corrupt(format!("unknown metric tag {tag}"))),
    };
    let drift_tolerance = r.f64("drift tolerance")?;
    let seed = r.u64("seed")?;
    // Version 2 predates pluggable sources: every store was SQL-fed.
    let source = if version >= 3 {
        match r.u8("source tag")? {
            0 => SourceConfig::Sql,
            1 => {
                let depth = get_usize(r, "template depth")?;
                let max_children = get_usize(r, "template fan-out bound")?;
                let similarity = r.f64("template similarity threshold")?;
                SourceConfig::Template(TemplateConfig { depth, max_children, similarity })
            }
            tag => return Err(corrupt(format!("unknown source tag {tag}"))),
        }
    } else {
        SourceConfig::Sql
    };
    Ok(StreamConfig {
        window,
        slide,
        time,
        baseline_windows,
        k,
        metric,
        drift_tolerance,
        seed,
        source,
    })
}

fn get_bytes(r: &mut Reader<'_>, what: &str) -> Result<Vec<u8>, Error> {
    let len = get_len(r, what)?;
    Ok(r.take(len, what)?.to_vec())
}

fn get_log(r: &mut Reader<'_>) -> Result<QueryLog, Error> {
    let num_features = get_usize(r, "log universe width")?;
    let mut log = QueryLog::new();
    let n_features = get_len(r, "codebook length")?;
    for i in 0..n_features {
        let tag = r.u8("feature class tag")?;
        let class = match tag {
            0 => FeatureClass::Select,
            1 => FeatureClass::From,
            2 => FeatureClass::Where,
            3 => FeatureClass::GroupBy,
            4 => FeatureClass::OrderBy,
            5 => FeatureClass::Template,
            6 => FeatureClass::Param,
            _ => return Err(corrupt(format!("unknown feature class tag {tag}"))),
        };
        let text = r.str("feature text")?;
        let id = log.codebook_mut().intern(Feature::new(class, text));
        if id.index() != i {
            // A duplicate feature would silently renumber everything
            // after it — reject rather than rebuild a different log.
            return Err(corrupt("duplicate feature in a stored codebook"));
        }
    }
    let n_entries = get_len(r, "entry count")?;
    for _ in 0..n_entries {
        let n_ids = get_len(r, "entry id count")?;
        let mut ids = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            ids.push(FeatureId(r.u32("feature id")?));
        }
        let count = r.u64("entry multiplicity")?;
        if count == 0 {
            // `add_vector` ignores zero counts; a stored zero would
            // silently drop a distinct entry and shift every index after
            // it.
            return Err(corrupt("zero-multiplicity entry in a stored log"));
        }
        log.add_vector(QueryVector::new(ids), count);
    }
    log.reserve_universe(num_features);
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::LogIngest;

    fn sample_log(statements: &[(&str, u64)]) -> QueryLog {
        let mut ingest = LogIngest::new();
        for (sql, count) in statements {
            ingest.ingest_with_count(sql, *count);
        }
        ingest.finish().0
    }

    fn sample_manifest() -> Manifest {
        let history = sample_log(&[
            ("SELECT id, body FROM messages WHERE status = ?", 40),
            ("SELECT balance FROM accounts WHERE owner = ?", 7),
            ("SELECT a FROM t WHERE x = ? OR y = ?", 2),
        ]);
        let baseline = sample_log(&[("SELECT id, body FROM messages WHERE status = ?", 40)]);
        Manifest {
            config: StreamConfig {
                window: 64,
                slide: Some(16),
                time: None,
                baseline_windows: 3,
                k: 4,
                metric: Distance::Minkowski(4.0),
                drift_tolerance: 1e-3,
                seed: 42,
                source: SourceConfig::Sql,
            },
            resident_budget: 65536,
            state: StreamState {
                buffer: vec![("SELECT tab\there FROM t".into(), 3, 17)],
                pending: vec![("SELECT 1 FROM t".into(), 1)],
                since_close: 3,
                next_close_ms: Some(12345),
                last_ts_ms: 12000,
                windows_closed: 9,
                statements_parsed: 31,
                baseline_logs: vec![(baseline.clone(), 40)],
                baseline,
                history,
                source_state: Vec::new(),
            },
            n_features: 11,
            total_points: 4,
            shard_files: vec!["shard-00000-1-00000001.bin".into()],
        }
    }

    fn assert_log_eq(a: &QueryLog, b: &QueryLog) {
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.num_features(), b.num_features());
        assert_eq!(a.total_queries(), b.total_queries());
        assert_eq!(a.codebook().len(), b.codebook().len());
        for (id, f) in a.codebook().iter() {
            assert_eq!(b.codebook().feature(id), f);
        }
    }

    #[test]
    fn round_trips_bit_for_bit() {
        let m = sample_manifest();
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(format!("{:?}", decoded.config), format!("{:?}", m.config));
        assert_eq!(decoded.resident_budget, m.resident_budget);
        assert_eq!(decoded.state.buffer, m.state.buffer);
        assert_eq!(decoded.state.pending, m.state.pending);
        assert_eq!(decoded.state.since_close, m.state.since_close);
        assert_eq!(decoded.state.next_close_ms, m.state.next_close_ms);
        assert_eq!(decoded.state.windows_closed, m.state.windows_closed);
        assert_eq!(decoded.state.statements_parsed, m.state.statements_parsed);
        assert_eq!(decoded.state.baseline_logs.len(), 1);
        assert_eq!(decoded.state.baseline_logs[0].1, 40);
        assert_log_eq(&decoded.state.baseline_logs[0].0, &m.state.baseline_logs[0].0);
        assert_log_eq(&decoded.state.baseline, &m.state.baseline);
        assert_log_eq(&decoded.state.history, &m.state.history);
        assert_eq!(decoded.n_features, m.n_features);
        assert_eq!(decoded.total_points, m.total_points);
        assert_eq!(decoded.shard_files, m.shard_files);
        // Re-encoding the decoded manifest is byte-identical.
        assert_eq!(encode(&decoded), encode(&m));
    }

    #[test]
    fn version_gate_refuses_newer_manifests() {
        let mut bytes = encode(&sample_manifest());
        bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
        // Version is checked before the checksum: no need to re-hash.
        match decode(&bytes).unwrap_err() {
            Error::ManifestVersion { found, supported } => {
                assert_eq!(found, VERSION + 1);
                assert_eq!(supported, VERSION);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode(&sample_manifest());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(Error::CorruptManifest { .. }) => {}
                Err(other) => panic!("cut {cut}: wrong error {other}"),
                Ok(_) => panic!("cut {cut}: truncated manifest decoded"),
            }
        }
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let bytes = encode(&sample_manifest());
        // Flip each payload byte (past magic, before checksum): the
        // checksum rejects it before any structural interpretation.
        for i in 8..bytes.len() - 8 {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0x40;
            match decode(&dirty) {
                Err(Error::CorruptManifest { .. }) | Err(Error::ManifestVersion { .. }) => {}
                Err(other) => panic!("byte {i}: wrong error {other}"),
                Ok(_) => panic!("byte {i}: corrupt manifest decoded"),
            }
        }
        // Bad magic is its own message.
        let mut dirty = bytes.clone();
        dirty[0] ^= 0xff;
        assert!(matches!(decode(&dirty), Err(Error::CorruptManifest { .. })));
    }

    #[test]
    fn hostile_lengths_do_not_over_allocate() {
        // A checksum-valid manifest with an absurd declared count
        // *mid-body* must be rejected by the remaining-bytes bound in
        // `get_len`, not trusted into a multi-gigabyte reservation.
        // Locate the buffer-length field without hard-coding offsets:
        // encode two manifests identical up to the buffer, whose buffers
        // differ in entry count — the first differing byte is the low
        // byte of the buffer-length u64.
        let m = sample_manifest();
        let mut m2 = m.clone();
        m2.state.buffer.push(("SELECT 2 FROM t".into(), 1, 18));
        let (a, b) = (encode(&m), encode(&m2));
        let off = a.iter().zip(&b).position(|(x, y)| x != y).expect("buffers differ");
        // Overwrite the count with u64::MAX and re-checksum, so the
        // checksum gate passes and the hostile-count path is what fires.
        let mut bytes = a;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let total = bytes.len();
        let checksum = fnv1a64(&bytes[8..total - 8]);
        bytes[total - 8..].copy_from_slice(&checksum.to_le_bytes());
        match decode(&bytes).unwrap_err() {
            Error::CorruptManifest { detail } => {
                // The typed rejection must come from the count bound
                // itself (no reservation happened), not from running off
                // the end of the payload while parsing entries.
                assert!(
                    detail.contains("buffer length") && detail.contains("remaining"),
                    "rejection must name the hostile count: {detail}"
                );
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let store = logr_cluster::testutil::TempStore::new("manifest");
        let path = store.join(FILE_NAME);
        let m = sample_manifest();
        write_file(&path, &m).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let back = read_file(&path).unwrap();
        assert_eq!(encode(&back), encode(&m));
        // Overwrite with different content: reads see old-or-new, never torn.
        let mut m2 = m.clone();
        m2.state.windows_closed += 1;
        write_file(&path, &m2).unwrap();
        assert_eq!(read_file(&path).unwrap().state.windows_closed, m.state.windows_closed + 1);
    }

    #[test]
    fn escaping_shard_names_are_rejected() {
        let mut m = sample_manifest();
        m.shard_files = vec!["../../etc/passwd".into()];
        assert!(matches!(decode(&encode(&m)), Err(Error::CorruptManifest { .. })));
    }

    /// The frozen version-2 body layout — pre-source stores carry no
    /// source tag in the config and no featurizer journal. Pinned here
    /// so `decode`'s back-compat path is exercised against real v2
    /// bytes, not bytes derived from the current writer.
    fn encode_v2(m: &Manifest) -> Vec<u8> {
        assert!(matches!(m.config.source, SourceConfig::Sql));
        assert!(m.state.source_state.is_empty());
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&2u32.to_le_bytes());
        let c = &m.config;
        put_u64(&mut out, c.window);
        put_opt_u64(&mut out, c.slide);
        match c.time {
            None => out.push(0),
            Some(tw) => {
                out.push(1);
                put_u64(&mut out, tw.window_ms);
                put_opt_u64(&mut out, tw.slide_ms);
            }
        }
        put_u64(&mut out, c.baseline_windows as u64);
        put_u64(&mut out, c.k as u64);
        let (tag, p) = match c.metric {
            Distance::Euclidean => (0u8, 0.0),
            Distance::Manhattan => (1, 0.0),
            Distance::Minkowski(p) => (2, p),
            Distance::Hamming => (3, 0.0),
            Distance::Chebyshev => (4, 0.0),
            Distance::Canberra => (5, 0.0),
        };
        out.push(tag);
        put_f64(&mut out, p);
        put_f64(&mut out, c.drift_tolerance);
        put_u64(&mut out, c.seed);
        put_u64(&mut out, m.resident_budget as u64);
        put_u64(&mut out, m.state.windows_closed as u64);
        put_u64(&mut out, m.state.since_close);
        put_u64(&mut out, m.state.last_ts_ms);
        put_opt_u64(&mut out, m.state.next_close_ms);
        put_u64(&mut out, m.state.statements_parsed);
        put_u64(&mut out, m.state.buffer.len() as u64);
        for (sql, count, ts) in &m.state.buffer {
            put_str(&mut out, sql);
            put_u64(&mut out, *count);
            put_u64(&mut out, *ts);
        }
        put_u64(&mut out, m.state.pending.len() as u64);
        for (sql, count) in &m.state.pending {
            put_str(&mut out, sql);
            put_u64(&mut out, *count);
        }
        put_u64(&mut out, m.state.baseline_logs.len() as u64);
        for (log, offered) in &m.state.baseline_logs {
            put_log(&mut out, log);
            put_u64(&mut out, *offered);
        }
        put_log(&mut out, &m.state.baseline);
        put_log(&mut out, &m.state.history);
        put_u64(&mut out, m.n_features as u64);
        put_u64(&mut out, m.total_points as u64);
        put_u64(&mut out, m.shard_files.len() as u64);
        for name in &m.shard_files {
            put_str(&mut out, name);
        }
        let checksum = fnv1a64(&out[8..]);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    #[test]
    fn version_2_stores_decode_as_the_sql_source() {
        let m = sample_manifest();
        let decoded = decode(&encode_v2(&m)).unwrap();
        assert!(matches!(decoded.config.source, SourceConfig::Sql));
        assert!(decoded.state.source_state.is_empty());
        // Upgrading rewrites the same state in the version-3 layout.
        assert_eq!(encode(&decoded), encode(&m));
    }

    #[test]
    fn template_manifest_round_trips_with_its_journal() {
        let mut m = sample_manifest();
        m.config.source = SourceConfig::template();
        m.state.source_state = vec![5, 0, 0, 0, b'h', b'e', b'l', b'l', b'o'];
        let decoded = decode(&encode(&m)).unwrap();
        match decoded.config.source {
            SourceConfig::Template(t) => {
                let d = TemplateConfig::default();
                assert_eq!((t.depth, t.max_children), (d.depth, d.max_children));
                assert_eq!(t.similarity.to_bits(), d.similarity.to_bits());
            }
            other => panic!("wrong source decoded: {other:?}"),
        }
        assert_eq!(decoded.state.source_state, m.state.source_state);
        assert_eq!(encode(&decoded), encode(&m));
    }

    #[test]
    fn unknown_source_tag_is_a_typed_error() {
        // Locate the source tag without hard-coding offsets: the Sql and
        // Template encodings of the same manifest first differ at it.
        let m = sample_manifest();
        let mut m2 = m.clone();
        m2.config.source = SourceConfig::template();
        let (a, b) = (encode(&m), encode(&m2));
        let off = a.iter().zip(&b).position(|(x, y)| x != y).expect("sources differ");
        let mut bytes = a;
        bytes[off] = 9;
        let total = bytes.len();
        let checksum = fnv1a64(&bytes[8..total - 8]);
        bytes[total - 8..].copy_from_slice(&checksum.to_le_bytes());
        match decode(&bytes).unwrap_err() {
            Error::CorruptManifest { detail } => {
                assert!(detail.contains("source tag"), "{detail}")
            }
            other => panic!("wrong error: {other}"),
        }
    }

    // ---- delta log ----------------------------------------------------

    use logr_cluster::vfs::{FaultFs, IoOp, Vfs};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn sample_record(i: u64) -> DeltaRecord {
        let stride = sample_log(&[(&format!("SELECT s{i} FROM t{i} WHERE q{i} = ?"), i + 1)]);
        DeltaRecord {
            seq: 0, // assigned by append_with
            windows_closed: 9 + i as usize,
            since_close: i,
            last_ts_ms: 12000 + i,
            next_close_ms: Some(13000 + i),
            statements_parsed: 31 + i,
            buffer: vec![(format!("SELECT b{i} FROM t"), 1, 90 + i)],
            pending: vec![(format!("SELECT p{i} FROM t"), 2)],
            stride_log: stride,
            window_queries: 7 + i,
            overlap_span: 0,
            new_shard_files: vec![format!("shard-0000{i}-1-0000000{i}.bin")],
            n_features: 11 + i as usize,
            total_points: 4 + i as usize,
            source_events: format!("journal-increment-{i}").into_bytes(),
        }
    }

    /// Base written to a FaultFs store, a delta session over it, and the
    /// frame end offsets after each of `n` appends.
    fn delta_store(n: u64) -> (Arc<FaultFs>, PathBuf, Manifest, Vec<usize>) {
        let fs = Arc::new(FaultFs::new());
        let dir = PathBuf::from("/delta-store");
        fs.create_dir_all(&dir).unwrap();
        let m = sample_manifest();
        let mut log = write_base_with(&*fs, &dir.join(FILE_NAME), &m).unwrap();
        let mut ends = Vec::new();
        for i in 0..n {
            log.append_with(&*fs, &dir, &sample_record(i)).unwrap();
            ends.push(DELTA_HEADER_LEN + log.appended_bytes() as usize);
        }
        (fs, dir, m, ends)
    }

    #[test]
    fn delta_records_replay_onto_the_base_in_sequence() {
        let (fs, dir, base, _) = delta_store(3);
        let (m, replay) = read_store_with(&*fs, &dir).unwrap();
        assert_eq!(replay, DeltaReplay { records_applied: 3, log_present: true, log_bound: true });
        // Scalars come from the *last* record; shard files accumulate;
        // the history absorbed every stride in order; the rotation
        // replayed each record's push (exclusion span 0, capacity 3), so
        // the base's one stride rotated out at the third record and the
        // three record strides remain — the rebuilt baseline is their
        // union.
        let last = sample_record(2);
        assert_eq!(m.state.windows_closed, last.windows_closed);
        assert_eq!(m.state.since_close, last.since_close);
        assert_eq!(m.state.next_close_ms, last.next_close_ms);
        assert_eq!(m.state.statements_parsed, last.statements_parsed);
        assert_eq!(m.state.buffer, last.buffer);
        assert_eq!(m.state.pending, last.pending);
        assert_eq!(m.state.baseline_logs.len(), 3);
        let mut expected_baseline = QueryLog::new();
        for i in 0..3u64 {
            let rec = sample_record(i);
            assert_log_eq(&m.state.baseline_logs[i as usize].0, &rec.stride_log);
            assert_eq!(m.state.baseline_logs[i as usize].1, rec.window_queries);
            expected_baseline.absorb(&rec.stride_log);
        }
        assert_log_eq(&m.state.baseline, &expected_baseline);
        assert_eq!(m.n_features, last.n_features);
        assert_eq!(m.total_points, last.total_points);
        let mut expected_files = base.shard_files.clone();
        for i in 0..3 {
            expected_files.extend(sample_record(i).new_shard_files);
        }
        assert_eq!(m.shard_files, expected_files);
        let mut expected_history = base.state.history.clone();
        for i in 0..3 {
            expected_history.absorb(&sample_record(i).stride_log);
        }
        assert_log_eq(&m.state.history, &expected_history);
        // Journal increments concatenate in record order onto the base's
        // journal (empty here), rebuilding the full journal.
        let mut expected_journal = base.state.source_state.clone();
        for i in 0..3 {
            expected_journal.extend_from_slice(&sample_record(i).source_events);
        }
        assert_eq!(m.state.source_state, expected_journal);
        // Replay is deterministic: a second read applies identically.
        let (m2, _) = read_store_with(&*fs, &dir).unwrap();
        assert_eq!(encode(&m2), encode(&m));
    }

    #[test]
    fn delta_append_protocol_creates_then_extends() {
        let (fs, dir, _, _) = delta_store(0);
        let mut log = DeltaLog::for_base_bytes(&fs.files()[&dir.join(FILE_NAME)]);
        let before = fs.trace_len();
        log.append_with(&*fs, &dir, &sample_record(0)).unwrap();
        log.append_with(&*fs, &dir, &sample_record(1)).unwrap();
        let trace = fs.trace();
        let delta = dir.join(DELTA_FILE_NAME);
        // First record: truncating create + fsync + directory sync (the
        // dirent must be durable). Second record: append + fsync only —
        // no rename, no directory sync, no tmp sibling, ever.
        match &trace[before..] {
            [IoOp::Write { path: p1, .. }, IoOp::Fsync { path: p2 }, IoOp::SyncDir { dir: d }, IoOp::Append { path: p3, .. }, IoOp::Fsync { path: p4 }] =>
            {
                assert_eq!((p1, p2, d), (&delta, &delta, &dir));
                assert_eq!((p3, p4), (&delta, &delta));
            }
            ops => panic!("unexpected delta commit trace: {ops:?}"),
        }
    }

    #[test]
    fn superseded_delta_log_is_stale_and_ignored() {
        let (fs, dir, _, _) = delta_store(2);
        // A full rewrite supersedes the log: its binding no longer
        // matches, so replay must apply nothing from it.
        let mut m2 = sample_manifest();
        m2.state.windows_closed = 77;
        write_file_with(&*fs, &dir.join(FILE_NAME), &m2).unwrap();
        let (m, replay) = read_store_with(&*fs, &dir).unwrap();
        assert_eq!(replay, DeltaReplay { records_applied: 0, log_present: true, log_bound: false });
        assert_eq!(m.state.windows_closed, 77);
    }

    #[test]
    fn torn_delta_tail_replays_the_acknowledged_prefix() {
        let (fs, dir, _, ends) = delta_store(3);
        let delta_path = dir.join(DELTA_FILE_NAME);
        let full = fs.files()[&delta_path].clone();
        assert_eq!(*ends.last().unwrap(), full.len());
        for cut in 0..full.len() {
            fs.write(&delta_path, &full[..cut]).unwrap();
            let expected = ends.iter().filter(|&&e| e <= cut).count() as u64;
            let (m, replay) = read_store_with(&*fs, &dir)
                .unwrap_or_else(|e| panic!("cut {cut}: torn tail must not be an error: {e}"));
            assert_eq!(replay.records_applied, expected, "cut {cut}");
            assert_eq!(replay.log_bound, cut >= DELTA_HEADER_LEN, "cut {cut}");
            let expected_windows = if expected == 0 {
                sample_manifest().state.windows_closed
            } else {
                sample_record(expected - 1).windows_closed
            };
            assert_eq!(m.state.windows_closed, expected_windows, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_delta_frames_stop_replay_at_the_last_good_record() {
        let (fs, dir, _, ends) = delta_store(3);
        let delta_path = dir.join(DELTA_FILE_NAME);
        let full = fs.files()[&delta_path].clone();
        for flip in DELTA_HEADER_LEN..full.len() {
            let mut dirty = full.clone();
            dirty[flip] ^= 0x40;
            fs.write(&delta_path, &dirty).unwrap();
            // The frame containing the flipped byte fails its checksum
            // (or tears the framing); every record before it applies.
            let expected = ends.iter().filter(|&&e| e <= flip).count() as u64;
            match read_store_with(&*fs, &dir) {
                Ok((_, replay)) => assert_eq!(replay.records_applied, expected, "flip {flip}"),
                Err(e) => panic!("flip {flip}: corruption must degrade, not error: {e}"),
            }
        }
    }

    #[test]
    fn delta_version_gate_refuses_newer_logs() {
        let (fs, dir, _, _) = delta_store(1);
        let delta_path = dir.join(DELTA_FILE_NAME);
        let mut bytes = fs.files()[&delta_path].clone();
        bytes[8..12].copy_from_slice(&(DELTA_VERSION + 1).to_le_bytes());
        let header_sum = fnv1a64(&bytes[8..28]);
        bytes[28..36].copy_from_slice(&header_sum.to_le_bytes());
        fs.write(&delta_path, &bytes).unwrap();
        match read_store_with(&*fs, &dir).unwrap_err() {
            Error::ManifestVersion { found, supported } => {
                assert_eq!(found, DELTA_VERSION + 1);
                assert_eq!(supported, DELTA_VERSION);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn out_of_sequence_delta_record_is_a_typed_error() {
        // A checksum-valid frame whose payload claims the wrong sequence
        // number is tampering or a writer bug, never a crash artifact —
        // it must be loud. Splice a seq-5 frame after the two real ones.
        let (fs, dir, _, _) = delta_store(2);
        let delta_path = dir.join(DELTA_FILE_NAME);
        let mut bytes = fs.files()[&delta_path].clone();
        let payload = encode_record_payload(&sample_record(2), 5);
        put_u64(&mut bytes, payload.len() as u64);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        fs.write(&delta_path, &bytes).unwrap();
        match read_store_with(&*fs, &dir).unwrap_err() {
            Error::CorruptManifest { detail } => {
                assert!(detail.contains("out of sequence"), "{detail}")
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn version_1_delta_records_decode_with_an_empty_increment() {
        let rec = sample_record(0);
        let mut payload = encode_record_payload(&rec, 1);
        // Version 1 ends at the shard point total: strip the appended
        // journal increment (length prefix + bytes) to recover the
        // frozen v1 payload bytes.
        payload.truncate(payload.len() - 8 - rec.source_events.len());
        let decoded = decode_record(&payload, 1).unwrap();
        assert!(decoded.source_events.is_empty());
        assert_eq!(decoded.windows_closed, rec.windows_closed);
        assert_eq!(decoded.new_shard_files, rec.new_shard_files);
    }
}
