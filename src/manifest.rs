//! The engine store manifest: one versioned, checksummed file that makes
//! a spill directory **reopenable**.
//!
//! The shard spill files (`logr-cluster::spill`) hold the history's
//! pairwise mismatch structure, but on their own a directory of them is
//! not a resumable engine: nothing records the stream configuration, the
//! absorbed history log (codebook + distinct vectors + multiplicities),
//! the drift-baseline rotation, the partially-filled window buffer, or
//! which files belong to the checkpoint in which order. The manifest
//! stores exactly that — every bit of [`logr_core::StreamState`] plus the
//! ordered shard-file list — so [`crate::Engine::open`] rebuilds a
//! summarizer that continues **bit-identically** from where the persisted
//! one stopped.
//!
//! # Format (version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! ──────  ────  ──────────────────────────────────────────────────────
//!      0  8     magic  b"LOGRMNFT"
//!      8  4     version (u32, = 1)
//!     12  …     body (see below)
//!  end−8  8     checksum: FNV-1a 64 over bytes [8, end−8)
//! ```
//!
//! Body, in order: the stream configuration, the resident budget, the
//! scalar stream state, the window buffer and pending statements (raw
//! SQL), the baseline rotation and materialized baseline, the history
//! log, and the shard chain (universe width, total points, ordered file
//! names relative to the store directory). Strings are `u64` length +
//! UTF-8; optional integers are a presence byte + value; query logs store
//! their universe width, codebook (class tag + text, in id order) and
//! entries (sorted id list + multiplicity, in insertion order) — enough
//! to reproduce interning order, and therefore every downstream bit.
//!
//! Readers validate in order — length floor, magic, **version** (a
//! manifest from a newer build is refused before its bytes are
//! interpreted), checksum, then structure — so every way the file can be
//! wrong maps to one typed [`Error`] variant and decoding never panics.

use crate::error::Error;
use logr_cluster::spill::fnv1a64;
use logr_cluster::vfs::{retry_io, RealFs, Vfs};
use logr_cluster::Distance;
use logr_core::{StreamConfig, StreamState, TimeWindows};
use logr_feature::{Feature, FeatureClass, FeatureId, QueryLog, QueryVector};
use std::path::Path;

/// File name of the manifest inside an engine store directory.
pub const FILE_NAME: &str = "engine.manifest";

/// First 8 bytes of every manifest.
pub const MAGIC: [u8; 8] = *b"LOGRMNFT";

/// Format version this build writes and the newest one it reads.
pub const VERSION: u32 = 1;

/// Everything needed to reopen an engine (see the module docs).
#[derive(Debug, Clone)]
pub struct Manifest {
    /// The stream configuration in force when the checkpoint was taken.
    pub config: StreamConfig,
    /// The resident shard budget in force.
    pub resident_budget: usize,
    /// The summarizer's resumable state.
    pub state: StreamState,
    /// Feature-universe width of the shard set at checkpoint.
    pub n_features: usize,
    /// Total points across the shard chain (cross-check for the files).
    pub total_points: usize,
    /// Shard file names in chain order, relative to the store directory.
    pub shard_files: Vec<String>,
}

/// Serialize a manifest to its wire form.
pub fn encode(m: &Manifest) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());

    put_config(&mut out, &m.config);
    put_u64(&mut out, m.resident_budget as u64);

    put_u64(&mut out, m.state.windows_closed as u64);
    put_u64(&mut out, m.state.since_close);
    put_u64(&mut out, m.state.last_ts_ms);
    put_opt_u64(&mut out, m.state.next_close_ms);
    put_u64(&mut out, m.state.statements_parsed);

    put_u64(&mut out, m.state.buffer.len() as u64);
    for (sql, count, ts) in &m.state.buffer {
        put_str(&mut out, sql);
        put_u64(&mut out, *count);
        put_u64(&mut out, *ts);
    }
    put_u64(&mut out, m.state.pending.len() as u64);
    for (sql, count) in &m.state.pending {
        put_str(&mut out, sql);
        put_u64(&mut out, *count);
    }
    put_u64(&mut out, m.state.baseline_logs.len() as u64);
    for (log, offered) in &m.state.baseline_logs {
        put_log(&mut out, log);
        put_u64(&mut out, *offered);
    }
    put_log(&mut out, &m.state.baseline);
    put_log(&mut out, &m.state.history);

    put_u64(&mut out, m.n_features as u64);
    put_u64(&mut out, m.total_points as u64);
    put_u64(&mut out, m.shard_files.len() as u64);
    for name in &m.shard_files {
        put_str(&mut out, name);
    }

    let checksum = fnv1a64(&out[8..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode and validate a manifest's wire form (see the module docs for
/// the validation order). Never panics.
pub fn decode(bytes: &[u8]) -> Result<Manifest, Error> {
    if bytes.len() < 8 + 4 + 8 {
        return Err(corrupt("shorter than magic + version + checksum"));
    }
    if bytes[..8] != MAGIC {
        return Err(corrupt("bad magic (not an engine manifest)"));
    }
    let mut version_le = [0u8; 4];
    version_le.copy_from_slice(&bytes[8..12]);
    let version = u32::from_le_bytes(version_le);
    if version > VERSION {
        return Err(Error::ManifestVersion { found: version, supported: VERSION });
    }
    let mut stored_le = [0u8; 8];
    stored_le.copy_from_slice(&bytes[bytes.len() - 8..]);
    let stored = u64::from_le_bytes(stored_le);
    let computed = fnv1a64(&bytes[8..bytes.len() - 8]);
    if stored != computed {
        return Err(Error::CorruptManifest {
            detail: format!("checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"),
        });
    }

    let mut r = Reader { bytes: &bytes[12..bytes.len() - 8] };
    let config = get_config(&mut r)?;
    let resident_budget = get_usize(&mut r, "resident budget")?;

    let windows_closed = get_usize(&mut r, "windows closed")?;
    let since_close = r.u64("since-close counter")?;
    let last_ts_ms = r.u64("last timestamp")?;
    let next_close_ms = get_opt_u64(&mut r, "next close boundary")?;
    let statements_parsed = r.u64("parse counter")?;

    let n = get_len(&mut r, "buffer length")?;
    let mut buffer = Vec::with_capacity(n);
    for _ in 0..n {
        let sql = r.str("buffered statement")?;
        let count = r.u64("buffered multiplicity")?;
        let ts = r.u64("buffered timestamp")?;
        buffer.push((sql, count, ts));
    }
    let n = get_len(&mut r, "pending length")?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        let sql = r.str("pending statement")?;
        let count = r.u64("pending multiplicity")?;
        pending.push((sql, count));
    }
    let n = get_len(&mut r, "baseline rotation length")?;
    let mut baseline_logs = Vec::with_capacity(n);
    for _ in 0..n {
        let log = get_log(&mut r)?;
        let offered = r.u64("baseline stride size")?;
        baseline_logs.push((log, offered));
    }
    let baseline = get_log(&mut r)?;
    let history = get_log(&mut r)?;

    let n_features = get_usize(&mut r, "shard universe width")?;
    let total_points = get_usize(&mut r, "shard point total")?;
    let n = get_len(&mut r, "shard file count")?;
    let mut shard_files = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("shard file name")?;
        // File names are interpreted relative to the store directory; a
        // name that escapes it (separator or parent component) cannot
        // come from our writer.
        if name.is_empty() || name.contains(['/', '\\']) || name == ".." {
            return Err(corrupt("shard file name escapes the store directory"));
        }
        shard_files.push(name);
    }
    if !r.bytes.is_empty() {
        return Err(corrupt("trailing bytes after the shard file list"));
    }

    Ok(Manifest {
        config,
        resident_budget,
        state: StreamState {
            buffer,
            pending,
            since_close,
            next_close_ms,
            last_ts_ms,
            windows_closed,
            statements_parsed,
            baseline_logs,
            baseline,
            history,
        },
        n_features,
        total_points,
        shard_files,
    })
}

/// Atomically and durably write a manifest to `path`: write a `.tmp`
/// sibling, **fsync it**, rename over the target, then fsync the
/// directory. The manifest is the store's single recovery root (shard
/// files are write-once under fresh names, so an old manifest always
/// points at intact files — but a replaced manifest is gone), which is
/// why the fsyncs matter: without them a power loss shortly after the
/// rename can leave a zero-length manifest on journaled filesystems
/// with delayed allocation, and with them a crash at any point leaves
/// either the previous checkpoint or the new one.
pub fn write_file(path: &Path, m: &Manifest) -> Result<(), Error> {
    write_file_with(&RealFs, path, m)
}

/// [`write_file`] with every file operation routed through `vfs`.
/// Transient errors (`EINTR`/`EAGAIN`) are retried with bounded backoff
/// at each step; any other failure — `ENOSPC` included — aborts with the
/// `.tmp` sibling swept, leaving the previous manifest untouched (the
/// store stays openable at its last durable checkpoint).
pub fn write_file_with(vfs: &dyn Vfs, path: &Path, m: &Manifest) -> Result<(), Error> {
    let bytes = encode(m);
    let tmp = path.with_extension("tmp");
    let write_sync_rename = (|| {
        retry_io(|| vfs.write(&tmp, &bytes))?;
        retry_io(|| vfs.fsync(&tmp))?;
        retry_io(|| vfs.rename(&tmp, path))?;
        // Persist the rename itself (see `Vfs::sync_dir` for the
        // non-POSIX degradation).
        if let Some(dir) = path.parent() {
            retry_io(|| vfs.sync_dir(dir))?;
        }
        Ok::<(), std::io::Error>(())
    })();
    if let Err(e) = write_sync_rename {
        let _: Result<(), _> = vfs.remove(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Load and validate a manifest from `path`.
pub fn read_file(path: &Path) -> Result<Manifest, Error> {
    read_file_with(&RealFs, path)
}

/// [`read_file`] through `vfs`, riding out transient read errors.
pub fn read_file_with(vfs: &dyn Vfs, path: &Path) -> Result<Manifest, Error> {
    decode(&retry_io(|| vfs.read(path))?)
}

fn corrupt(detail: impl Into<String>) -> Error {
    Error::CorruptManifest { detail: detail.into() }
}

// ---- primitive writers ------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_config(out: &mut Vec<u8>, c: &StreamConfig) {
    put_u64(out, c.window);
    put_opt_u64(out, c.slide);
    match c.time {
        None => out.push(0),
        Some(tw) => {
            out.push(1);
            put_u64(out, tw.window_ms);
            put_opt_u64(out, tw.slide_ms);
        }
    }
    put_u64(out, c.baseline_windows as u64);
    put_u64(out, c.k as u64);
    let (tag, p) = match c.metric {
        Distance::Euclidean => (0u8, 0.0),
        Distance::Manhattan => (1, 0.0),
        Distance::Minkowski(p) => (2, p),
        Distance::Hamming => (3, 0.0),
        Distance::Chebyshev => (4, 0.0),
        Distance::Canberra => (5, 0.0),
    };
    out.push(tag);
    put_f64(out, p);
    put_f64(out, c.drift_tolerance);
    put_u64(out, c.seed);
}

fn put_log(out: &mut Vec<u8>, log: &QueryLog) {
    put_u64(out, log.num_features() as u64);
    put_u64(out, log.codebook().len() as u64);
    for (_, feature) in log.codebook().iter() {
        let tag = match feature.class {
            FeatureClass::Select => 0u8,
            FeatureClass::From => 1,
            FeatureClass::Where => 2,
            FeatureClass::GroupBy => 3,
            FeatureClass::OrderBy => 4,
        };
        out.push(tag);
        put_str(out, &feature.text);
    }
    put_u64(out, log.entries().len() as u64);
    for (vector, count) in log.entries() {
        put_u64(out, vector.ids().len() as u64);
        for id in vector.iter() {
            out.extend_from_slice(&id.0.to_le_bytes());
        }
        put_u64(out, *count);
    }
}

// ---- primitive readers ------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
}

impl Reader<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], Error> {
        if self.bytes.len() < n {
            return Err(corrupt(format!("truncated while reading {what}")));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, Error> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, Error> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, Error> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self, what: &str) -> Result<f64, Error> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<String, Error> {
        let len = self.u64(what)? as usize;
        // A hostile length must not become a huge reservation: take()
        // bounds it against the remaining bytes first.
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt(format!("{what} is not valid UTF-8")))
    }
}

fn get_usize(r: &mut Reader<'_>, what: &str) -> Result<usize, Error> {
    usize::try_from(r.u64(what)?).map_err(|_| corrupt(format!("{what} exceeds the address space")))
}

/// A declared element count, sanity-bounded by the remaining bytes (every
/// element is at least one byte) so hostile counts cannot over-reserve.
fn get_len(r: &mut Reader<'_>, what: &str) -> Result<usize, Error> {
    let n = get_usize(r, what)?;
    if n > r.bytes.len() {
        return Err(corrupt(format!("{what} larger than the remaining payload")));
    }
    Ok(n)
}

fn get_opt_u64(r: &mut Reader<'_>, what: &str) -> Result<Option<u64>, Error> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.u64(what)?)),
        _ => Err(corrupt(format!("bad presence byte for {what}"))),
    }
}

fn get_config(r: &mut Reader<'_>) -> Result<StreamConfig, Error> {
    let window = r.u64("window size")?;
    let slide = get_opt_u64(r, "slide")?;
    let time = match r.u8("time-window presence")? {
        0 => None,
        1 => {
            let window_ms = r.u64("time window span")?;
            let slide_ms = get_opt_u64(r, "time slide")?;
            Some(TimeWindows { window_ms, slide_ms })
        }
        _ => return Err(corrupt("bad presence byte for time windows")),
    };
    let baseline_windows = get_usize(r, "baseline window count")?;
    let k = get_usize(r, "cluster count")?;
    let tag = r.u8("metric tag")?;
    let p = r.f64("metric parameter")?;
    let metric = match tag {
        0 => Distance::Euclidean,
        1 => Distance::Manhattan,
        2 => Distance::Minkowski(p),
        3 => Distance::Hamming,
        4 => Distance::Chebyshev,
        5 => Distance::Canberra,
        _ => return Err(corrupt(format!("unknown metric tag {tag}"))),
    };
    let drift_tolerance = r.f64("drift tolerance")?;
    let seed = r.u64("seed")?;
    Ok(StreamConfig { window, slide, time, baseline_windows, k, metric, drift_tolerance, seed })
}

fn get_log(r: &mut Reader<'_>) -> Result<QueryLog, Error> {
    let num_features = get_usize(r, "log universe width")?;
    let mut log = QueryLog::new();
    let n_features = get_len(r, "codebook length")?;
    for i in 0..n_features {
        let tag = r.u8("feature class tag")?;
        let class = match tag {
            0 => FeatureClass::Select,
            1 => FeatureClass::From,
            2 => FeatureClass::Where,
            3 => FeatureClass::GroupBy,
            4 => FeatureClass::OrderBy,
            _ => return Err(corrupt(format!("unknown feature class tag {tag}"))),
        };
        let text = r.str("feature text")?;
        let id = log.codebook_mut().intern(Feature::new(class, text));
        if id.index() != i {
            // A duplicate feature would silently renumber everything
            // after it — reject rather than rebuild a different log.
            return Err(corrupt("duplicate feature in a stored codebook"));
        }
    }
    let n_entries = get_len(r, "entry count")?;
    for _ in 0..n_entries {
        let n_ids = get_len(r, "entry id count")?;
        let mut ids = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            ids.push(FeatureId(r.u32("feature id")?));
        }
        let count = r.u64("entry multiplicity")?;
        if count == 0 {
            // `add_vector` ignores zero counts; a stored zero would
            // silently drop a distinct entry and shift every index after
            // it.
            return Err(corrupt("zero-multiplicity entry in a stored log"));
        }
        log.add_vector(QueryVector::new(ids), count);
    }
    log.reserve_universe(num_features);
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::LogIngest;

    fn sample_log(statements: &[(&str, u64)]) -> QueryLog {
        let mut ingest = LogIngest::new();
        for (sql, count) in statements {
            ingest.ingest_with_count(sql, *count);
        }
        ingest.finish().0
    }

    fn sample_manifest() -> Manifest {
        let history = sample_log(&[
            ("SELECT id, body FROM messages WHERE status = ?", 40),
            ("SELECT balance FROM accounts WHERE owner = ?", 7),
            ("SELECT a FROM t WHERE x = ? OR y = ?", 2),
        ]);
        let baseline = sample_log(&[("SELECT id, body FROM messages WHERE status = ?", 40)]);
        Manifest {
            config: StreamConfig {
                window: 64,
                slide: Some(16),
                time: None,
                baseline_windows: 3,
                k: 4,
                metric: Distance::Minkowski(4.0),
                drift_tolerance: 1e-3,
                seed: 42,
            },
            resident_budget: 65536,
            state: StreamState {
                buffer: vec![("SELECT tab\there FROM t".into(), 3, 17)],
                pending: vec![("SELECT 1 FROM t".into(), 1)],
                since_close: 3,
                next_close_ms: Some(12345),
                last_ts_ms: 12000,
                windows_closed: 9,
                statements_parsed: 31,
                baseline_logs: vec![(baseline.clone(), 40)],
                baseline,
                history,
            },
            n_features: 11,
            total_points: 4,
            shard_files: vec!["shard-00000-1-00000001.bin".into()],
        }
    }

    fn assert_log_eq(a: &QueryLog, b: &QueryLog) {
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.num_features(), b.num_features());
        assert_eq!(a.total_queries(), b.total_queries());
        assert_eq!(a.codebook().len(), b.codebook().len());
        for (id, f) in a.codebook().iter() {
            assert_eq!(b.codebook().feature(id), f);
        }
    }

    #[test]
    fn round_trips_bit_for_bit() {
        let m = sample_manifest();
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(format!("{:?}", decoded.config), format!("{:?}", m.config));
        assert_eq!(decoded.resident_budget, m.resident_budget);
        assert_eq!(decoded.state.buffer, m.state.buffer);
        assert_eq!(decoded.state.pending, m.state.pending);
        assert_eq!(decoded.state.since_close, m.state.since_close);
        assert_eq!(decoded.state.next_close_ms, m.state.next_close_ms);
        assert_eq!(decoded.state.windows_closed, m.state.windows_closed);
        assert_eq!(decoded.state.statements_parsed, m.state.statements_parsed);
        assert_eq!(decoded.state.baseline_logs.len(), 1);
        assert_eq!(decoded.state.baseline_logs[0].1, 40);
        assert_log_eq(&decoded.state.baseline_logs[0].0, &m.state.baseline_logs[0].0);
        assert_log_eq(&decoded.state.baseline, &m.state.baseline);
        assert_log_eq(&decoded.state.history, &m.state.history);
        assert_eq!(decoded.n_features, m.n_features);
        assert_eq!(decoded.total_points, m.total_points);
        assert_eq!(decoded.shard_files, m.shard_files);
        // Re-encoding the decoded manifest is byte-identical.
        assert_eq!(encode(&decoded), encode(&m));
    }

    #[test]
    fn version_gate_refuses_newer_manifests() {
        let mut bytes = encode(&sample_manifest());
        bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
        // Version is checked before the checksum: no need to re-hash.
        match decode(&bytes).unwrap_err() {
            Error::ManifestVersion { found, supported } => {
                assert_eq!(found, VERSION + 1);
                assert_eq!(supported, VERSION);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode(&sample_manifest());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(Error::CorruptManifest { .. }) => {}
                Err(other) => panic!("cut {cut}: wrong error {other}"),
                Ok(_) => panic!("cut {cut}: truncated manifest decoded"),
            }
        }
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let bytes = encode(&sample_manifest());
        // Flip each payload byte (past magic, before checksum): the
        // checksum rejects it before any structural interpretation.
        for i in 8..bytes.len() - 8 {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0x40;
            match decode(&dirty) {
                Err(Error::CorruptManifest { .. }) | Err(Error::ManifestVersion { .. }) => {}
                Err(other) => panic!("byte {i}: wrong error {other}"),
                Ok(_) => panic!("byte {i}: corrupt manifest decoded"),
            }
        }
        // Bad magic is its own message.
        let mut dirty = bytes.clone();
        dirty[0] ^= 0xff;
        assert!(matches!(decode(&dirty), Err(Error::CorruptManifest { .. })));
    }

    #[test]
    fn hostile_lengths_do_not_over_allocate() {
        // A checksum-valid manifest with an absurd declared count must be
        // rejected by the remaining-bytes bound, not trusted into a
        // multi-gigabyte reservation. Craft one: valid prefix, then a huge
        // buffer length, re-checksummed.
        let m = sample_manifest();
        let mut bytes = encode(&m);
        let total = bytes.len();
        bytes.truncate(total - 8);
        // The buffer length lives right after config (58 bytes) + budget +
        // 5 scalars + presence byte… easier: append garbage count at the
        // end and rely on the trailing-bytes check instead.
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let checksum = fnv1a64(&bytes[8..]);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(Error::CorruptManifest { .. })));
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let store = logr_cluster::testutil::TempStore::new("manifest");
        let path = store.join(FILE_NAME);
        let m = sample_manifest();
        write_file(&path, &m).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let back = read_file(&path).unwrap();
        assert_eq!(encode(&back), encode(&m));
        // Overwrite with different content: reads see old-or-new, never torn.
        let mut m2 = m.clone();
        m2.state.windows_closed += 1;
        write_file(&path, &m2).unwrap();
        assert_eq!(read_file(&path).unwrap().state.windows_closed, m.state.windows_closed + 1);
    }

    #[test]
    fn escaping_shard_names_are_rejected() {
        let mut m = sample_manifest();
        m.shard_files = vec!["../../etc/passwd".into()];
        assert!(matches!(decode(&encode(&m)), Err(Error::CorruptManifest { .. })));
    }
}
