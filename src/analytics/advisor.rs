//! The pluggable advisor family: one trait, many workload analytics.
//!
//! The paper's premise (§1, §2, §9.1) is that a single compressed summary
//! serves *many* downstream consumers — index selection, materialized-view
//! selection, query recommendation, monitoring. Each consumer is an
//! [`Advisor`]: a strategy object that reads a [`WorkloadView`] (an
//! [`crate::EngineSnapshot`] or a batch [`SummaryView`](super::SummaryView))
//! and returns ranked [`Advice`]. Because views are immutable, any number
//! of advisors run concurrently with ingestion off the same snapshot.
//!
//! Three advisors ship:
//!
//! * [`IndexAdvisor`] — the §2 lead application: WHERE predicates whose
//!   estimated workload share clears a threshold (the logic behind
//!   [`crate::EngineSnapshot::advise`]);
//! * [`ViewAdvisor`] — materialized-view selection: FROM-pair
//!   co-occurrence through the mixture, which keeps anti-correlated
//!   workloads apart where a single naive encoding hallucinates joins (§5);
//! * [`QueryRecommender`] — QueRIE/SnipSuggest-style ranking of query
//!   continuations by conditional marginal `p(f | partial)` (§9.1).

use super::query::WorkloadView;
use crate::error::Error;
use logr_core::interpret::{render_ranked, RenderConfig};
use logr_core::LogRSummary;
use logr_feature::{Feature, FeatureClass, LogIngest, QueryVector};
use std::sync::Arc;

/// What kind of action a piece of advice proposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdviceKind {
    /// Create an index covering a hot WHERE predicate.
    Index,
    /// Materialize a frequently co-occurring join.
    MaterializedView,
    /// Extend a partial query with a likely continuation.
    Recommendation,
    /// A workload-drift alarm: the monitoring window diverged from the
    /// baseline beyond tolerance.
    Drift,
}

/// One ranked advisor pick, estimated entirely from the summary (the raw
/// log is never consulted).
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// What the advisor proposes.
    pub kind: AdviceKind,
    /// The proposal's subject: a predicate's canonical text
    /// ([`AdviceKind::Index`]), `"a ⋈ b"` ([`AdviceKind::MaterializedView`]),
    /// or the suggested feature's text ([`AdviceKind::Recommendation`]).
    pub subject: String,
    /// The concrete workload features behind the subject (one predicate,
    /// two joined tables, one suggested feature) — typed access for
    /// callers that render or act on the advice.
    pub features: Vec<Feature>,
    /// Estimated queries benefiting: the predicate's / join pair's /
    /// extended fragment's estimated occurrence count.
    pub estimated: f64,
    /// The advisor's ranking signal in `[0, 1]`: share of the
    /// *summarized* workload ([`WorkloadView::summarized_queries`]) for
    /// index and view advice, conditional probability `p(f | partial)`
    /// for recommendations.
    pub share: f64,
}

impl Advice {
    /// One DBA-facing report line, rendered through
    /// [`logr_core::interpret::render_ranked`] so advisor reports share
    /// the summary renderer's conventions exactly — the same quartile
    /// shade glyph and `[NN.N%]` annotation Fig. 1-style summaries use.
    /// The action verb comes from [`Advice::kind`]; the percentage is
    /// [`Advice::share`] (for drift picks: divergence over the `ln 2`
    /// ceiling).
    pub fn render(&self) -> String {
        let action = match self.kind {
            AdviceKind::Index => format!("index {}", self.subject),
            AdviceKind::MaterializedView => format!("materialize {}", self.subject),
            AdviceKind::Recommendation => format!("extend with {}", self.subject),
            AdviceKind::Drift => format!("drift: {}", self.subject),
            // `AdviceKind` is non_exhaustive for wire evolution; an
            // unmapped kind still renders its subject.
            #[allow(unreachable_patterns)]
            _ => self.subject.clone(),
        };
        // Advice already cleared its advisor's threshold: render every
        // line (no second `min_marginal` cut here).
        render_ranked(
            &[(action, self.share)],
            &RenderConfig { min_marginal: 0.0, ..RenderConfig::default() },
        )
    }
}

/// A whole advisor report as DBA-facing text: one [`Advice::render`]
/// line per pick, in the advisor's ranking order. Empty advice renders
/// the literal line `"(no advice)"` so piping a report somewhere never
/// produces silent emptiness.
pub fn render_report(advice: &[Advice]) -> String {
    if advice.is_empty() {
        return "(no advice)".to_owned();
    }
    advice.iter().map(|a| a.render()).collect::<Vec<_>>().join("\n")
}

/// A workload analytic over a compressed summary. Implementations are
/// cheap value objects configured at construction; [`Advisor::advise`]
/// reads any [`WorkloadView`] and returns ranked picks. An empty view
/// (nothing summarized yet) yields empty advice, not an error.
pub trait Advisor {
    /// Short stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Rank this advisor's picks against one workload view.
    fn advise(&self, view: &dyn WorkloadView) -> Result<Vec<Advice>, Error>;
}

/// Reject thresholds that are not probabilities (NaN included) before
/// they silently produce nonsense rankings.
fn validate_share(value: f64, what: &'static str) -> Result<(), Error> {
    if !(0.0..=1.0).contains(&value) {
        return Err(Error::Config { detail: what });
    }
    Ok(())
}

/// The shared advisor preamble: a validated view, or `None` advice-wise
/// when nothing has been summarized yet.
fn summary_and_total(view: &dyn WorkloadView) -> Result<Option<(Arc<LogRSummary>, f64)>, Error> {
    let Some(summary) = view.summary()? else { return Ok(None) };
    let total = view.summarized_queries() as f64;
    if total == 0.0 {
        return Ok(None);
    }
    Ok(Some((summary, total)))
}

/// Index selection (paper §2's lead application): every WHERE predicate
/// whose estimated share of the workload is at least `min_share`,
/// descending by estimated count. This is the one implementation behind
/// [`crate::Engine::advise`] and [`crate::EngineSnapshot::advise`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexAdvisor {
    /// Minimum workload share for a predicate to be advised.
    pub min_share: f64,
}

impl IndexAdvisor {
    /// Advisor keeping predicates at or above `min_share` (validated as a
    /// probability when [`Advisor::advise`] runs).
    pub fn new(min_share: f64) -> IndexAdvisor {
        IndexAdvisor { min_share }
    }
}

impl Advisor for IndexAdvisor {
    fn name(&self) -> &'static str {
        "index"
    }

    fn advise(&self, view: &dyn WorkloadView) -> Result<Vec<Advice>, Error> {
        validate_share(self.min_share, "min_share must be a probability in [0, 1]")?;
        let Some((summary, total)) = summary_and_total(view)? else { return Ok(Vec::new()) };
        let mut picks = Vec::new();
        for (id, feature) in view.codebook().iter() {
            if feature.class != FeatureClass::Where {
                continue;
            }
            let estimated = summary.estimate_count(&QueryVector::new(vec![id]));
            let share = estimated / total;
            if share >= self.min_share {
                picks.push(Advice {
                    kind: AdviceKind::Index,
                    subject: feature.text.clone(),
                    features: vec![feature.clone()],
                    estimated,
                    share,
                });
            }
        }
        picks.sort_by(|a, b| b.estimated.total_cmp(&a.estimated).then(a.subject.cmp(&b.subject)));
        Ok(picks)
    }
}

/// Materialized-view selection (paper §2's second application): every
/// pair of FROM tables the summary says co-occur in at least `min_share`
/// of the workload, descending by estimated joint frequency. Pair
/// estimates go through the mixture's per-cluster marginals, so
/// anti-correlated workloads don't hallucinate joins (§5); pairs
/// estimating under one query are noise-floored away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewAdvisor {
    /// Minimum workload share for a join pair to be advised.
    pub min_share: f64,
}

impl ViewAdvisor {
    /// Advisor keeping join pairs at or above `min_share` (validated as a
    /// probability when [`Advisor::advise`] runs).
    pub fn new(min_share: f64) -> ViewAdvisor {
        ViewAdvisor { min_share }
    }
}

impl Advisor for ViewAdvisor {
    fn name(&self) -> &'static str {
        "view"
    }

    fn advise(&self, view: &dyn WorkloadView) -> Result<Vec<Advice>, Error> {
        validate_share(self.min_share, "min_share must be a probability in [0, 1]")?;
        let Some((summary, total)) = summary_and_total(view)? else { return Ok(Vec::new()) };
        let tables: Vec<_> = view
            .codebook()
            .iter()
            .filter(|(_, f)| f.class == FeatureClass::From)
            .map(|(id, _)| id)
            .collect();
        let mut picks: Vec<Advice> = summary
            .estimate_pair_counts(&tables)
            .into_iter()
            .filter(|&(_, _, estimated)| estimated >= 1.0)
            .map(|(a, b, estimated)| {
                let (fa, fb) = (view.codebook().feature(a), view.codebook().feature(b));
                Advice {
                    kind: AdviceKind::MaterializedView,
                    subject: format!("{} ⋈ {}", fa.text, fb.text),
                    features: vec![fa.clone(), fb.clone()],
                    estimated,
                    share: estimated / total,
                }
            })
            .collect();
        picks.sort_by(|a, b| b.estimated.total_cmp(&a.estimated));
        picks.retain(|p| p.share >= self.min_share);
        Ok(picks)
    }
}

/// Query recommendation (paper §1/§9.1): given the SQL fragment a user
/// has typed so far, rank every codebook feature `f` by the conditional
/// marginal `p(f | partial) = est[partial ∪ {f}] / est[partial]`,
/// keeping suggestions strictly above `min_conditional` — the scoring
/// loop of recommenders like QueRIE and SnipSuggest, answered from the
/// summary alone.
///
/// Fragment features the workload has never seen are skipped (a partial
/// query may legitimately reference novel columns); if nothing resolves,
/// or the resolved fragment estimates zero, there is nothing to condition
/// on and the advice is empty.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecommender {
    /// The user's partial query, as SQL text.
    pub partial_sql: String,
    /// Minimum conditional probability for a suggestion (strict).
    pub min_conditional: f64,
}

impl QueryRecommender {
    /// Recommender for one partial query (threshold validated as a
    /// probability when [`Advisor::advise`] runs).
    pub fn new(partial_sql: impl Into<String>, min_conditional: f64) -> QueryRecommender {
        QueryRecommender { partial_sql: partial_sql.into(), min_conditional }
    }

    /// The fragment's features resolved against `view`'s codebook
    /// (unknown features skipped — see the type docs).
    fn partial_vector(&self, view: &dyn WorkloadView) -> QueryVector {
        let mut probe = LogIngest::new();
        probe.ingest(&self.partial_sql);
        let (probe_log, _) = probe.finish();
        let mut ids = Vec::new();
        for (_, feature) in probe_log.codebook().iter() {
            if let Some(id) = view.codebook().get(feature) {
                ids.push(id);
            }
        }
        QueryVector::new(ids)
    }
}

impl Advisor for QueryRecommender {
    fn name(&self) -> &'static str {
        "recommend"
    }

    fn advise(&self, view: &dyn WorkloadView) -> Result<Vec<Advice>, Error> {
        validate_share(self.min_conditional, "min_conditional must be a probability in [0, 1]")?;
        let Some((summary, _)) = summary_and_total(view)? else { return Ok(Vec::new()) };
        let partial = self.partial_vector(view);
        if partial.is_empty() {
            return Ok(Vec::new());
        }
        let base = summary.estimate_count(&partial);
        let picks = summary
            .rank_continuations(&partial, self.min_conditional)
            .into_iter()
            // Summaries over raw-vector logs can span feature ids beyond
            // the codebook; only named features can be suggested.
            .filter(|(id, _)| id.index() < view.codebook().len())
            .map(|(id, conditional)| {
                let feature = view.codebook().feature(id);
                Advice {
                    kind: AdviceKind::Recommendation,
                    subject: feature.text.clone(),
                    features: vec![feature.clone()],
                    estimated: conditional * base,
                    share: conditional,
                }
            })
            .collect();
        Ok(picks)
    }
}

/// Drift alarms in advisor shape (paper §2 "Online Database Monitoring"):
/// the window drift report every [`crate::Engine`] close already computes,
/// surfaced through the same `advise()` contract as index and view advice
/// so monitoring consumers (dashboards, the `logr-server` wire protocol)
/// need exactly one advisory surface.
///
/// When the view's latest [`DriftReport`](logr_core::DriftReport) is
/// stable at `tolerance` ([`logr_core::DriftReport::is_stable`]) — or the
/// view has no drift at all, e.g. a batch summary — the advice is empty.
/// Otherwise the picks are, in order:
///
/// 1. one **aggregate** alarm, subject `"workload drift"`, whose
///    `estimated` is the report's mean per-feature JS divergence (nats);
/// 2. one alarm per **new feature** (never seen in the baseline — the
///    highest-signal injection events). Their divergence is not itemized
///    in the report, so they carry the Bernoulli-divergence ceiling
///    `ln 2`, ranking above any baseline feature;
/// 3. one alarm per **baseline feature** whose itemized divergence
///    exceeds `tolerance`, descending (the report's order).
///
/// For every drift pick, `estimated` is a JS divergence in nats (not a
/// query count) and `share` is that divergence normalized by the `ln 2`
/// ceiling into the usual `[0, 1]` ranking signal. Baseline feature ids
/// resolve through [`WorkloadView::baseline_codebook`]; ids the current
/// baseline no longer carries render as `"feature #<id>"` with empty
/// `features`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAdvisor {
    /// Divergence tolerance in nats; alarms are raised only above it.
    pub tolerance: f64,
}

impl DriftAdvisor {
    /// Advisor alarming when drift exceeds `tolerance` (validated as a
    /// finite non-negative divergence when [`Advisor::advise`] runs).
    pub fn new(tolerance: f64) -> DriftAdvisor {
        DriftAdvisor { tolerance }
    }
}

impl Advisor for DriftAdvisor {
    fn name(&self) -> &'static str {
        "drift"
    }

    fn advise(&self, view: &dyn WorkloadView) -> Result<Vec<Advice>, Error> {
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return Err(Error::Config {
                detail: "tolerance must be a finite non-negative divergence",
            });
        }
        let Some(report) = view.drift() else { return Ok(Vec::new()) };
        if report.is_stable(self.tolerance) {
            return Ok(Vec::new());
        }
        let ceiling = std::f64::consts::LN_2;
        let share_of = |js: f64| (js / ceiling).clamp(0.0, 1.0);
        let mut picks = vec![Advice {
            kind: AdviceKind::Drift,
            subject: "workload drift".to_owned(),
            features: Vec::new(),
            estimated: report.overall,
            share: share_of(report.overall),
        }];
        for text in &report.new_features {
            picks.push(Advice {
                kind: AdviceKind::Drift,
                subject: text.clone(),
                features: Vec::new(),
                estimated: ceiling,
                share: 1.0,
            });
        }
        let baseline = view.baseline_codebook();
        for &(id, js) in &report.per_feature {
            if js <= self.tolerance {
                // The report is sorted descending; everything after this
                // is within tolerance too.
                break;
            }
            let resolved =
                baseline.filter(|cb| id.index() < cb.len()).map(|cb| cb.feature(id).clone());
            picks.push(Advice {
                kind: AdviceKind::Drift,
                subject: resolved
                    .as_ref()
                    .map_or_else(|| format!("feature #{}", id.0), |f| f.to_string()),
                features: resolved.into_iter().collect(),
                estimated: js,
                share: share_of(js),
            });
        }
        Ok(picks)
    }
}
