//! Unified workload-analytics query API over compressed summaries.
//!
//! One LogR summary answers *many* downstream analyses (paper §1, §2,
//! §9.1): index selection, materialized-view selection, query
//! recommendation, monitoring. This module is the typed, composable read
//! surface those consumers share:
//!
//! * [`Pred`] + [`WorkloadQuery`] — class-aware predicates
//!   ([`Pred::table`], [`Pred::column_eq`], [`Pred::joins`],
//!   `and`/`or`/`not`) evaluated against any summary:
//!   [`WorkloadQuery::frequency`], [`WorkloadQuery::conditional`],
//!   [`WorkloadQuery::cooccurrence`], [`WorkloadQuery::top_k`]. Unknown
//!   features are typed [`crate::Error::UnknownFeature`] errors, never
//!   silent zeros; negations estimate complements through the mixture.
//! * [`Advisor`] — the pluggable analytic family, consuming any
//!   [`WorkloadView`] (an [`crate::EngineSnapshot`], or a batch
//!   [`SummaryView`]). Shipped: [`IndexAdvisor`], [`ViewAdvisor`],
//!   [`QueryRecommender`], [`DriftAdvisor`] — all emitting DBA-facing
//!   report text via [`Advice::render`] / [`render_report`], through
//!   the same `logr_core::interpret` renderer as summary output.
//!
//! ## Quickstart
//!
//! ```
//! use logr::analytics::{Advisor, IndexAdvisor, Pred, ViewAdvisor};
//! use logr::Engine;
//!
//! let engine = Engine::builder().clusters(2).in_memory()?;
//! for _ in 0..900 {
//!     engine.ingest("SELECT id, body FROM messages WHERE status = ?")?;
//! }
//! for _ in 0..100 {
//!     engine.ingest("SELECT balance FROM accounts, ledger WHERE owner = ?")?;
//! }
//! engine.flush()?;
//! let snapshot = engine.snapshot()?;
//!
//! // Typed, composable statistics from the summary (never the raw log).
//! let query = snapshot.query()?.expect("non-empty workload");
//! let hot = query.frequency(&Pred::table("messages").and(Pred::column_eq("status")))?;
//! assert!((hot - 900.0).abs() < 1.0);
//! let either = query.share(&Pred::table("accounts").or(Pred::table("messages")))?;
//! assert!(either > 0.99);
//!
//! // The same snapshot serves every advisor in the family.
//! let indexes = IndexAdvisor::new(0.5).advise(&*snapshot)?;
//! assert!(indexes.iter().any(|a| a.subject == "status = ?"));
//! let views = ViewAdvisor::new(0.05).advise(&*snapshot)?;
//! assert!(views.iter().any(|a| a.subject == "accounts ⋈ ledger"));
//! # Ok::<(), logr::Error>(())
//! ```

mod advisor;
mod query;

pub use advisor::{
    render_report, Advice, AdviceKind, Advisor, DriftAdvisor, IndexAdvisor, QueryRecommender,
    ViewAdvisor,
};
pub use query::{CoOccurrence, Pred, RankedFeature, SummaryView, WorkloadQuery, WorkloadView};
