//! Typed workload predicates and the query evaluator they run through.
//!
//! The paper's estimation surface is "how many log queries contain this
//! feature set?" (§6.2). Raw `&[logr_feature::Feature]` slices answer it but
//! compose poorly: there is no OR, no conditional, and an unknown feature
//! silently estimates zero. This module replaces the slices with:
//!
//! * [`Pred`] — a feature-class-aware predicate tree ([`Pred::table`],
//!   [`Pred::column_eq`], [`Pred::joins`], …) with [`Pred::and`] /
//!   [`Pred::or`] / [`Pred::not`] composition, resolved against the
//!   workload codebook with typed [`Error::UnknownFeature`] errors
//!   instead of silent zeros (negations evaluate as mixture
//!   complements, parity-checked against `total − frequency`);
//! * [`WorkloadQuery`] — the evaluator offering [`WorkloadQuery::frequency`]
//!   (single-term predicates are **bit-identical** to the classic
//!   `estimate_count_features` path; ORs resolve by inclusion–exclusion
//!   over the predicate's conjunctive branches),
//!   [`WorkloadQuery::conditional`], [`WorkloadQuery::cooccurrence`] and
//!   [`WorkloadQuery::top_k`] ranking;
//! * [`WorkloadView`] — the object-safe read surface every
//!   [`Advisor`](crate::analytics::Advisor) consumes: implemented by
//!   [`crate::EngineSnapshot`] (concurrent reads off a live engine) and by
//!   the standalone [`SummaryView`] (batch summaries without an engine).

use crate::error::Error;
use logr_core::{DriftReport, LogRSummary};
use logr_feature::{Codebook, Feature, FeatureClass, FeatureId, QueryLog, QueryVector};
use std::sync::Arc;

/// Most conjunctive branches a predicate may resolve to. Frequency
/// evaluation is inclusion–exclusion over the branches (2^n − 1 terms),
/// so the cap keeps a pathological OR tree from freezing the reader.
const MAX_BRANCHES: usize = 12;

/// A typed workload predicate: a boolean combination of query features,
/// matched against the features a workload query *contains* (the §6.2
/// pattern semantics — `Pred::table("accounts")` holds for every query
/// whose FROM clause includes `accounts`, whatever else it touches).
///
/// Build leaves with the class-aware constructors and compose with
/// [`Pred::and`] / [`Pred::or`] / [`Pred::not`]:
///
/// ```
/// use logr::analytics::Pred;
/// let hot = Pred::table("messages").and(Pred::column_eq("status"));
/// let either = Pred::table("accounts").or(Pred::table("ledger"));
/// let cold = Pred::table("messages").not().and(Pred::table("accounts"));
/// # let _ = (hot, either, cold);
/// ```
///
/// Predicates are resolved against a codebook only at evaluation time, so
/// one `Pred` can be reused across snapshots and workloads; a feature the
/// codebook has never seen resolves to [`Error::UnknownFeature`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// The query contains this feature.
    Feature(Feature),
    /// Every branch holds.
    And(Vec<Pred>),
    /// At least one branch holds.
    Or(Vec<Pred>),
    /// The branch does not hold. Negation is pushed to the leaves at
    /// resolution time (De Morgan), and each negated feature evaluates
    /// as a complement *through the mixture*:
    /// `est(P ∧ ¬n) = est(P) − est(P ∪ {n})`, generalized to any number
    /// of negated features by signed (inclusion–exclusion) sums — never
    /// by consulting the raw log.
    Not(Box<Pred>),
}

impl Pred {
    /// Leaf predicate from an explicit [`Feature`].
    pub fn feature(feature: Feature) -> Pred {
        Pred::Feature(feature)
    }

    /// ⟨table, FROM⟩ leaf: the query reads from `table`.
    pub fn table(name: impl Into<String>) -> Pred {
        Pred::Feature(Feature::from_table(name))
    }

    /// ⟨column, SELECT⟩ leaf: the query projects `column`.
    pub fn column(name: impl Into<String>) -> Pred {
        Pred::Feature(Feature::select(name))
    }

    /// ⟨`column = ?`, WHERE⟩ leaf: the query filters on an (anonymized)
    /// equality over `column` — the spelling the canonical printer gives
    /// parameterized equality atoms.
    pub fn column_eq(column: impl AsRef<str>) -> Pred {
        Pred::Feature(Feature::where_atom(format!("{} = ?", column.as_ref())))
    }

    /// ⟨atom, WHERE⟩ leaf with the atom's canonical text verbatim (for
    /// non-equality predicates, e.g. `"posted_at >= ?"`).
    pub fn where_atom(text: impl Into<String>) -> Pred {
        Pred::Feature(Feature::where_atom(text))
    }

    /// ⟨template, TEMPLATE⟩ leaf: the record matched this mined template
    /// (the [`crate::SourceConfig::Template`] source's analogue of
    /// [`Pred::table`] — `text` is the template's creation-time text,
    /// e.g. `"user <*> logged in from <*>"`).
    pub fn template(text: impl Into<String>) -> Pred {
        Pred::Feature(Feature::template(text))
    }

    /// ⟨param-class, PARAM⟩ leaf: the record carried a parameter of this
    /// class (`"num"`, `"ip"`, `"uuid"`, `"hex"`, `"path"`, `"id"`, or
    /// `"str"`).
    pub fn param(text: impl Into<String>) -> Pred {
        Pred::Feature(Feature::param(text))
    }

    /// Join predicate: both tables appear in the FROM clause —
    /// shorthand for `table(a).and(table(b))`, the pattern
    /// materialized-view selection ranks (paper §2).
    pub fn joins(a: impl Into<String>, b: impl Into<String>) -> Pred {
        Pred::table(a).and(Pred::table(b))
    }

    /// Conjunction of every feature in the iterator (the classic
    /// `&[Feature]` slice, as a predicate).
    pub fn all_of(features: impl IntoIterator<Item = Feature>) -> Pred {
        let mut leaves: Vec<Pred> = features.into_iter().map(Pred::Feature).collect();
        match leaves.len() {
            1 => leaves.swap_remove(0),
            _ => Pred::And(leaves),
        }
    }

    /// `self AND other` (flattens nested ANDs).
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::And(mut a), Pred::And(b)) => {
                a.extend(b);
                Pred::And(a)
            }
            (Pred::And(mut a), o) => {
                a.push(o);
                Pred::And(a)
            }
            (s, Pred::And(mut b)) => {
                b.insert(0, s);
                Pred::And(b)
            }
            (s, o) => Pred::And(vec![s, o]),
        }
    }

    /// `NOT self` — the complement predicate. Double negation is
    /// collapsed immediately (`p.not().not() == p`), so chained calls
    /// cannot grow the tree.
    ///
    /// ```
    /// use logr::analytics::Pred;
    /// let cold = Pred::table("messages").not();
    /// assert_eq!(Pred::table("messages").not().not(), Pred::table("messages"));
    /// # let _ = cold;
    /// ```
    #[allow(clippy::should_implement_trait)] // prose-reading builder, like `and`/`or`
    pub fn not(self) -> Pred {
        match self {
            Pred::Not(inner) => *inner,
            p => Pred::Not(Box::new(p)),
        }
    }

    /// `self OR other` (flattens nested ORs).
    pub fn or(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::Or(mut a), Pred::Or(b)) => {
                a.extend(b);
                Pred::Or(a)
            }
            (Pred::Or(mut a), o) => {
                a.push(o);
                Pred::Or(a)
            }
            (s, Pred::Or(mut b)) => {
                b.insert(0, s);
                Pred::Or(b)
            }
            (s, o) => Pred::Or(vec![s, o]),
        }
    }

    /// Resolve to disjunctive normal form over codebook ids: a union of
    /// [`SignedBranch`]es, each a conjunction of required features plus
    /// forbidden (negated) features. Negations are pushed to the leaves
    /// by De Morgan on the way down, so the only negative literals are
    /// single features. A leaf feature absent from the codebook is
    /// [`Error::UnknownFeature`] (negated or not); a tree whose DNF
    /// exceeds [`MAX_BRANCHES`] branches — or that negates more than
    /// [`MAX_BRANCHES`] distinct features — is [`Error::Config`].
    fn resolve(&self, codebook: &Codebook) -> Result<Vec<SignedBranch>, Error> {
        let dnf = self.resolve_nnf(codebook, false)?;
        // Identical branches are redundant under union; drop them so
        // inclusion–exclusion does not cancel a term against itself.
        let mut deduped: Vec<SignedBranch> = Vec::with_capacity(dnf.len());
        for term in dnf {
            if !deduped.contains(&term) {
                deduped.push(term);
            }
        }
        // The signed evaluation of one branch is 2^|neg| mixture calls;
        // bound the *union* of negated features so no intersection of
        // branches can exceed it either.
        let mut negated: Vec<FeatureId> = Vec::new();
        for branch in &deduped {
            for &id in &branch.neg {
                if !negated.contains(&id) {
                    negated.push(id);
                }
            }
        }
        if negated.len() > MAX_BRANCHES {
            return Err(Error::Config {
                detail: "predicate negates too many distinct features (limit 12)",
            });
        }
        Ok(deduped)
    }

    /// [`Pred::resolve`]'s worker: negation-normal-form descent.
    /// `negated` flips at every `Not` (De Morgan swaps And/Or under it).
    fn resolve_nnf(&self, codebook: &Codebook, negated: bool) -> Result<Vec<SignedBranch>, Error> {
        match self {
            Pred::Feature(f) => {
                let id =
                    codebook.get(f).ok_or_else(|| Error::UnknownFeature { feature: f.clone() })?;
                Ok(vec![if negated {
                    SignedBranch { pos: QueryVector::empty(), neg: vec![id] }
                } else {
                    SignedBranch { pos: QueryVector::new(vec![id]), neg: Vec::new() }
                }])
            }
            Pred::Not(inner) => inner.resolve_nnf(codebook, !negated),
            // ¬(A ∧ B) = ¬A ∨ ¬B and ¬(A ∨ B) = ¬A ∧ ¬B: under
            // negation the two connectives trade places.
            Pred::And(branches) if !negated => Self::conjoin(branches, codebook, negated),
            Pred::Or(branches) if negated => Self::conjoin(branches, codebook, negated),
            Pred::And(branches) | Pred::Or(branches) => {
                let mut acc = Vec::new();
                for branch in branches {
                    acc.extend(branch.resolve_nnf(codebook, negated)?);
                    if acc.len() > MAX_BRANCHES {
                        return Err(too_many_branches());
                    }
                }
                Ok(acc)
            }
        }
    }

    /// Distribute a conjunction of sub-predicates over their DNFs.
    fn conjoin(
        branches: &[Pred],
        codebook: &Codebook,
        negated: bool,
    ) -> Result<Vec<SignedBranch>, Error> {
        let mut acc = vec![SignedBranch { pos: QueryVector::empty(), neg: Vec::new() }];
        for branch in branches {
            let terms = branch.resolve_nnf(codebook, negated)?;
            let mut next = Vec::with_capacity(acc.len() * terms.len());
            for left in &acc {
                for term in &terms {
                    next.push(left.intersect(term));
                }
            }
            if next.len() > MAX_BRANCHES {
                return Err(too_many_branches());
            }
            acc = next;
        }
        Ok(acc)
    }
}

/// One conjunctive branch of a resolved predicate: the query must
/// contain every feature in `pos` and none of the features in `neg`.
/// A branch with a feature in both is unsatisfiable — its signed
/// estimate cancels to exactly zero, so no special-casing is needed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SignedBranch {
    pos: QueryVector,
    neg: Vec<FeatureId>,
}

impl SignedBranch {
    /// The conjunction of two branches: required sets union, forbidden
    /// sets union (kept sorted and deduplicated).
    fn intersect(&self, other: &SignedBranch) -> SignedBranch {
        let mut neg = self.neg.clone();
        for &id in &other.neg {
            if !neg.contains(&id) {
                neg.push(id);
            }
        }
        neg.sort_unstable();
        SignedBranch { pos: self.pos.union(&other.pos), neg }
    }
}

fn too_many_branches() -> Error {
    Error::Config { detail: "predicate resolves to too many OR branches (limit 12)" }
}

/// An object-safe read surface over one summarized workload: the mixture
/// summary, the codebook its features resolve against, and the query
/// total the summary covers. This is the contract every
/// [`Advisor`](crate::analytics::Advisor) consumes — implemented by
/// [`crate::EngineSnapshot`] (so reader threads run advisors concurrently
/// with ingestion) and by [`SummaryView`] for batch summaries.
pub trait WorkloadView {
    /// The pattern mixture summary (`None` before any query was
    /// summarized).
    fn summary(&self) -> Result<Option<Arc<LogRSummary>>, Error>;

    /// The codebook the summarized workload's features are interned in.
    fn codebook(&self) -> &Codebook;

    /// Total queries (with multiplicities) the summary covers.
    fn summarized_queries(&self) -> u64;

    /// The latest baseline-vs-window drift report, for views that monitor
    /// a live stream. Defaults to `None` — batch views have no window
    /// sequence to drift across. Overridden by [`crate::EngineSnapshot`],
    /// which is what lets [`DriftAdvisor`](crate::analytics::DriftAdvisor)
    /// raise drift alarms through the same `advise()` surface as index
    /// and view advice.
    fn drift(&self) -> Option<&DriftReport> {
        None
    }

    /// The codebook the drift report's baseline feature ids resolve
    /// against (**not** [`WorkloadView::codebook`] — the baseline rotates
    /// independently of the history). `None` whenever [`WorkloadView::drift`]
    /// is `None`.
    fn baseline_codebook(&self) -> Option<&Codebook> {
        None
    }
}

/// [`WorkloadView`] over a standalone batch summary — run any advisor or
/// [`WorkloadQuery`] against a [`LogRSummary`] produced outside an
/// engine (e.g. `logr::core::LogR::compress`).
#[derive(Debug, Clone)]
pub struct SummaryView<'a> {
    summary: Arc<LogRSummary>,
    codebook: &'a Codebook,
    total: u64,
}

impl<'a> SummaryView<'a> {
    /// View a summary of `log` (codebook and total come from the log).
    pub fn new(summary: impl Into<Arc<LogRSummary>>, log: &'a QueryLog) -> SummaryView<'a> {
        SummaryView {
            summary: summary.into(),
            codebook: log.codebook(),
            total: log.total_queries(),
        }
    }

    /// View from explicit parts, for summaries whose log is gone.
    pub fn from_parts(
        summary: impl Into<Arc<LogRSummary>>,
        codebook: &'a Codebook,
        total: u64,
    ) -> SummaryView<'a> {
        SummaryView { summary: summary.into(), codebook, total }
    }
}

impl WorkloadView for SummaryView<'_> {
    fn summary(&self) -> Result<Option<Arc<LogRSummary>>, Error> {
        Ok(Some(self.summary.clone()))
    }

    fn codebook(&self) -> &Codebook {
        self.codebook
    }

    fn summarized_queries(&self) -> u64 {
        self.total
    }
}

/// One feature ranked by an estimated statistic (see
/// [`WorkloadQuery::top_k`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RankedFeature {
    /// The ranked feature.
    pub feature: Feature,
    /// Estimated queries containing it (from the mixture, not the log).
    pub estimated: f64,
}

/// Estimated joint frequency of two features of one class (see
/// [`WorkloadQuery::cooccurrence`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CoOccurrence {
    /// First feature (earlier codebook id).
    pub a: Feature,
    /// Second feature.
    pub b: Feature,
    /// Estimated queries containing both.
    pub estimated: f64,
}

/// The workload-statistics evaluator: typed predicates in, mixture
/// estimates out. Works over any [`LogRSummary`] — obtain one from a live
/// engine via [`crate::EngineSnapshot::query`], from any
/// [`WorkloadView`] via [`WorkloadQuery::over`], or from a batch summary
/// via [`WorkloadQuery::new`]. The raw log is never consulted.
#[derive(Debug, Clone)]
pub struct WorkloadQuery<'a> {
    summary: Arc<LogRSummary>,
    codebook: &'a Codebook,
    total: u64,
}

impl<'a> WorkloadQuery<'a> {
    /// Evaluator over a batch summary of `log`.
    pub fn new(summary: impl Into<Arc<LogRSummary>>, log: &'a QueryLog) -> WorkloadQuery<'a> {
        WorkloadQuery {
            summary: summary.into(),
            codebook: log.codebook(),
            total: log.total_queries(),
        }
    }

    /// Evaluator over any [`WorkloadView`]; `None` when the view holds no
    /// summary yet (nothing summarized).
    pub fn over(view: &'a dyn WorkloadView) -> Result<Option<WorkloadQuery<'a>>, Error> {
        Ok(view.summary()?.map(|summary| WorkloadQuery {
            summary,
            codebook: view.codebook(),
            total: view.summarized_queries(),
        }))
    }

    /// The underlying summary.
    pub fn summary(&self) -> &LogRSummary {
        &self.summary
    }

    /// The codebook predicates resolve against.
    pub fn codebook(&self) -> &Codebook {
        self.codebook
    }

    /// Total queries the summary covers.
    pub fn total_queries(&self) -> u64 {
        self.total
    }

    /// Estimated number of workload queries satisfying `pred` (the §6.2
    /// mixture estimator). Purely conjunctive predicates evaluate as one
    /// pattern — for a single feature this is **bit-identical** to the
    /// classic `estimate_count_features` path — ORs resolve by
    /// inclusion–exclusion over the predicate's conjunctive branches,
    /// and negations resolve as mixture complements
    /// (`est(¬p) = est(⊤) − est(p)`, where the empty pattern estimates
    /// the mixture's own total) via signed sums over each branch's
    /// forbidden features.
    pub fn frequency(&self, pred: &Pred) -> Result<f64, Error> {
        let dnf = pred.resolve(self.codebook)?;
        match dnf.as_slice() {
            [] => Ok(0.0),
            [branch] => Ok(self.signed_estimate(branch)),
            branches => {
                // est[⋃ branches] by inclusion–exclusion; a subset's
                // intersection is the union of its required and
                // forbidden feature sets.
                let mut est = 0.0;
                for mask in 1u32..(1 << branches.len()) {
                    let mut pattern: Option<SignedBranch> = None;
                    for (i, branch) in branches.iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            pattern = Some(match &pattern {
                                None => branch.clone(),
                                Some(p) => p.intersect(branch),
                            });
                        }
                    }
                    let sign = if mask.count_ones() % 2 == 1 { 1.0 } else { -1.0 };
                    if let Some(p) = pattern {
                        est += sign * self.signed_estimate(&p);
                    }
                }
                Ok(est)
            }
        }
    }

    /// Mixture estimate of one signed branch:
    /// `est(P ∧ ¬n₁ ∧ … ∧ ¬nₖ) = Σ_{S ⊆ N} (−1)^|S| · est(P ∪ S)` —
    /// the inclusion–exclusion complement, evaluated entirely through
    /// the mixture. The empty pattern estimates the mixture total (each
    /// component contributes its whole weight), which is exactly the
    /// `est(⊤)` the complement needs.
    fn signed_estimate(&self, branch: &SignedBranch) -> f64 {
        let mut est = 0.0;
        for mask in 0u32..(1 << branch.neg.len()) {
            let mut pattern = branch.pos.clone();
            for (i, &id) in branch.neg.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    pattern = pattern.union(&QueryVector::new(vec![id]));
                }
            }
            let sign = if mask.count_ones() % 2 == 1 { -1.0 } else { 1.0 };
            est += sign * self.summary.estimate_count(&pattern);
        }
        est
    }

    /// `frequency(pred) / total_queries` — the share of the workload
    /// satisfying the predicate (0 on an empty workload).
    pub fn share(&self, pred: &Pred) -> Result<f64, Error> {
        if self.total == 0 {
            return Ok(0.0);
        }
        Ok(self.frequency(pred)? / self.total as f64)
    }

    /// Estimated conditional `p(pred | given)`: the share of queries
    /// satisfying `given` that also satisfy `pred` (0 when `given` itself
    /// estimates zero). This is the QueRIE/SnipSuggest recommender score
    /// (paper §1/§9.1).
    pub fn conditional(&self, given: &Pred, pred: &Pred) -> Result<f64, Error> {
        let base = self.frequency(given)?;
        if base <= 0.0 {
            return Ok(0.0);
        }
        Ok(self.frequency(&given.clone().and(pred.clone()))? / base)
    }

    /// Estimated joint frequency of every pair of `class` features, in
    /// descending order (ties keep codebook order). Pairs estimating zero
    /// are dropped. For [`FeatureClass::From`] this is the
    /// materialized-view candidate table of paper §2.
    pub fn cooccurrence(&self, class: FeatureClass) -> Result<Vec<CoOccurrence>, Error> {
        let ids: Vec<FeatureId> =
            self.codebook.iter().filter(|(_, f)| f.class == class).map(|(id, _)| id).collect();
        let mut pairs: Vec<CoOccurrence> = self
            .summary
            .estimate_pair_counts(&ids)
            .into_iter()
            .filter(|&(_, _, est)| est > 0.0)
            .map(|(a, b, estimated)| CoOccurrence {
                a: self.codebook.feature(a).clone(),
                b: self.codebook.feature(b).clone(),
                estimated,
            })
            .collect();
        pairs.sort_by(|x, y| y.estimated.total_cmp(&x.estimated));
        Ok(pairs)
    }

    /// The `k` most frequent features of a class by mixture estimate,
    /// descending (ties keep codebook order).
    pub fn top_k(&self, class: FeatureClass, k: usize) -> Result<Vec<RankedFeature>, Error> {
        let mut ranked: Vec<RankedFeature> = self
            .codebook
            .iter()
            .filter(|(_, f)| f.class == class)
            .map(|(id, f)| RankedFeature {
                feature: f.clone(),
                estimated: self.summary.estimate_count(&QueryVector::new(vec![id])),
            })
            .collect();
        ranked.sort_by(|x, y| y.estimated.total_cmp(&x.estimated));
        ranked.truncate(k);
        Ok(ranked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_core::LogR;
    use logr_feature::LogIngest;

    fn demo_log() -> QueryLog {
        let mut ingest = LogIngest::new();
        for _ in 0..30 {
            ingest.ingest("SELECT id, body FROM messages WHERE status = ?");
        }
        for _ in 0..10 {
            ingest.ingest("SELECT balance FROM accounts WHERE owner = ?");
        }
        ingest.finish().0
    }

    #[test]
    fn single_feature_frequency_is_bit_identical_to_slice_path() {
        let log = demo_log();
        let summary = LogR::with_clusters(2).compress(&log);
        let q = WorkloadQuery::new(summary.clone(), &log);
        for (_, feature) in log.codebook().iter() {
            let old = summary.estimate_count_features(&log, std::slice::from_ref(feature));
            let new = q.frequency(&Pred::feature(feature.clone())).expect("known feature");
            assert_eq!(new.to_bits(), old.to_bits(), "feature {feature}");
        }
    }

    #[test]
    fn unknown_feature_is_typed_not_zero() {
        let log = demo_log();
        let summary = LogR::with_clusters(2).compress(&log);
        let q = WorkloadQuery::new(summary.clone(), &log);
        // Old surface: silent zero. New surface: a typed error.
        assert_eq!(summary.estimate_count_features(&log, &[Feature::from_table("nope")]), 0.0);
        match q.frequency(&Pred::table("nope")) {
            Err(Error::UnknownFeature { feature }) => {
                assert_eq!(feature, Feature::from_table("nope"));
            }
            other => panic!("expected UnknownFeature, got {other:?}"),
        }
    }

    #[test]
    fn or_frequency_uses_inclusion_exclusion() {
        let log = demo_log();
        let summary = LogR::with_clusters(2).compress(&log);
        let q = WorkloadQuery::new(summary.clone(), &log);
        let messages = Pred::table("messages");
        let accounts = Pred::table("accounts");
        let either = q.frequency(&messages.clone().or(accounts.clone())).unwrap();
        let a = q.frequency(&messages.clone()).unwrap();
        let b = q.frequency(&accounts.clone()).unwrap();
        let both = q.frequency(&messages.and(accounts)).unwrap();
        assert!((either - (a + b - both)).abs() < 1e-9);
        // The two tables partition this workload: the OR covers everything.
        assert!((either - 40.0).abs() < 1.0, "either = {either}");
        // OR of a predicate with itself collapses (dedup), not doubles.
        let same = q.frequency(&Pred::table("messages").or(Pred::table("messages"))).unwrap();
        assert_eq!(same.to_bits(), a.to_bits());
    }

    #[test]
    fn pathological_or_fanout_is_a_config_error() {
        let log = demo_log();
        let summary = LogR::with_clusters(1).compress(&log);
        let q = WorkloadQuery::new(summary, &log);
        // The branch cap is checked while the OR accumulates (before
        // dedup), so any 13-wide OR trips it.
        let features: Vec<Feature> = log.codebook().iter().map(|(_, f)| f.clone()).collect();
        let mut wide = Pred::table("messages");
        for f in features.iter().cycle().take(13) {
            wide = wide.or(Pred::feature(f.clone()).and(Pred::table("messages")));
        }
        match q.frequency(&wide) {
            Err(Error::Config { .. }) => {}
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn negation_matches_the_complement_estimate() {
        // The satellite parity contract: for every single feature f,
        // frequency(¬f) must equal total − frequency(f) — i.e. share(¬f)
        // = 1 − share(f) — with the complement computed entirely through
        // the mixture (est(∅) is the mixture total, never the raw log).
        let log = demo_log();
        let summary = LogR::with_clusters(2).compress(&log);
        let q = WorkloadQuery::new(summary.clone(), &log);
        let top = summary.estimate_count(&QueryVector::empty());
        assert!((top - 40.0).abs() < 1e-9, "empty pattern must estimate the total, got {top}");
        for (_, feature) in log.codebook().iter() {
            let p = Pred::feature(feature.clone());
            let f = q.frequency(&p).unwrap();
            let not_f = q.frequency(&p.clone().not()).unwrap();
            assert!(
                (not_f - (top - f)).abs() < 1e-9,
                "feature {feature}: ¬f = {not_f}, total − f = {}",
                top - f
            );
            let parity = q.share(&p).unwrap() + q.share(&p.not()).unwrap();
            assert!((parity - 1.0).abs() < 1e-9, "feature {feature}: shares sum to {parity}");
        }
    }

    #[test]
    fn negation_composes_through_and_or() {
        let log = demo_log();
        let summary = LogR::with_clusters(2).compress(&log);
        let q = WorkloadQuery::new(summary, &log);
        let messages = Pred::table("messages");
        let accounts = Pred::table("accounts");
        // The two tables partition the workload: accounts ∧ ¬messages is
        // all of accounts, and messages ∧ ¬messages is a contradiction
        // whose signed sum cancels to exactly zero.
        let acc_only = q.frequency(&accounts.clone().and(messages.clone().not())).unwrap();
        let acc = q.frequency(&accounts.clone()).unwrap();
        assert!((acc_only - acc).abs() < 1e-9, "acc_only = {acc_only}, acc = {acc}");
        let never = q.frequency(&messages.clone().and(messages.clone().not())).unwrap();
        assert_eq!(never, 0.0);
        // De Morgan: ¬(a ∨ b) = ¬a ∧ ¬b — both spellings resolve to the
        // same branches, so the estimates agree exactly.
        let neither = q.frequency(&messages.clone().or(accounts.clone()).not()).unwrap();
        let de_morgan = q.frequency(&messages.clone().not().and(accounts.clone().not())).unwrap();
        assert!((neither - de_morgan).abs() < 1e-12);
        // ...and the two tables cover everything, so "neither" is empty.
        assert!(neither.abs() < 1e-9, "neither = {neither}");
        // Double negation is the identity, bit for bit.
        let f = q.frequency(&messages.clone()).unwrap();
        let ff = q.frequency(&messages.clone().not().not()).unwrap();
        assert_eq!(f.to_bits(), ff.to_bits());
        // A negated unknown feature is still a typed error, not zero.
        assert!(matches!(
            q.frequency(&Pred::table("nope").not()),
            Err(Error::UnknownFeature { .. })
        ));
    }

    #[test]
    fn conditional_and_share_behave() {
        let log = demo_log();
        let summary = LogR::with_clusters(2).compress(&log);
        let q = WorkloadQuery::new(summary, &log);
        // p(status=? | messages) ≈ 1: every messages query filters status.
        let c = q.conditional(&Pred::table("messages"), &Pred::column_eq("status")).unwrap();
        assert!((c - 1.0).abs() < 1e-6, "conditional = {c}");
        // Share of messages ≈ 30/40.
        let s = q.share(&Pred::table("messages")).unwrap();
        assert!((s - 0.75).abs() < 0.01, "share = {s}");
        // Conditioning on an unseen-but-known pattern yields 0, not NaN.
        let z = q
            .conditional(&Pred::table("messages").and(Pred::table("accounts")), &Pred::column("id"))
            .unwrap();
        assert_eq!(z, 0.0);
    }

    #[test]
    fn top_k_and_cooccurrence_rank_descending() {
        let log = demo_log();
        let summary = LogR::with_clusters(2).compress(&log);
        let q = WorkloadQuery::new(summary, &log);
        let tables = q.top_k(FeatureClass::From, 10).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].feature.text, "messages");
        assert!(tables[0].estimated >= tables[1].estimated);
        // Only two tables and they never co-occur → no surviving pair.
        assert!(q.cooccurrence(FeatureClass::From).unwrap().is_empty());
        // SELECT columns id/body always co-occur (30 queries).
        let cols = q.cooccurrence(FeatureClass::Select).unwrap();
        assert!(!cols.is_empty());
        assert!((cols[0].estimated - 30.0).abs() < 1.0);
        for w in cols.windows(2) {
            assert!(w[0].estimated >= w[1].estimated);
        }
    }
}
