//! `logr::Engine` — the one durable, concurrent front door for batch and
//! streaming workload analytics.
//!
//! The paper's pitch is an *always-on* service: compress the access log
//! once, then answer index-advisor / view-advisor / monitoring questions
//! from the summary. The pieces exist as separate crates — `LogIngest` →
//! `LogR::compress` for batch, `StreamSummarizer` + the spill store for
//! bounded-memory streaming — but wiring them by hand leaves three gaps
//! this module closes:
//!
//! * **Recovery** — [`Engine::open`] on a directory rebuilds the whole
//!   session (history, codebook, drift baseline, half-filled window,
//!   sharded distance structure) from a versioned [`crate::manifest`]
//!   plus the spilled shard files, and continues **bit-identically**;
//!   torn or corrupt state surfaces as typed [`Error`]s, never a panic.
//! * **Concurrent reads** — [`Engine::snapshot`] hands out a cheap,
//!   `Arc`-backed immutable view; any number of reader threads answer
//!   statistics from it while one writer keeps ingesting. Writers
//!   publish a new snapshot at every window close; readers never block
//!   ingestion and never observe a torn state.
//! * **One error type** — every public method returns
//!   `Result<_, `[`Error`]`>`, with the per-crate errors wrapped via
//!   `From`.
//!
//! Batch is the degenerate stream: ingest everything, [`Engine::flush`],
//! read [`Engine::summary`]. See the crate root for a quickstart.

use crate::analytics::{Advisor, IndexAdvisor, WorkloadQuery, WorkloadView};
use crate::error::Error;
use crate::manifest::{self, DeltaLog, DeltaRecord, Manifest};
use logr_cluster::vfs::{self, retry_io, Vfs};
use logr_cluster::{Distance, ShardedPointSet, SpillConfig};
use logr_core::PortableSummary;
use logr_core::{
    CompressionObjective, DriftReport, LogR, LogRSummary, SourceConfig, StreamConfig,
    StreamSummarizer, TimeWindows, WindowSummary,
};
use logr_feature::{Codebook, Feature, QueryLog};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

/// Builder for [`Engine`] sessions. Defaults mirror
/// [`StreamConfig::default`] (256-query tumbling windows, 4 clusters,
/// Hamming distance) with an unbounded resident-shard budget.
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    stream: StreamConfig,
    resident_budget: Option<usize>,
    /// Storage layer override ([`logr_cluster::vfs::RealFs`] when unset)
    /// — the injection point every fault test builds on.
    vfs: Option<Arc<dyn Vfs>>,
    read_only: bool,
}

impl EngineBuilder {
    /// Start from the defaults.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Queries per tumbling window (see [`StreamConfig::window`]).
    pub fn window(mut self, queries: u64) -> Self {
        self.stream.window = queries;
        self
    }

    /// Slide the window by `queries` instead of tumbling
    /// (see [`StreamConfig::slide`]).
    pub fn slide(mut self, queries: u64) -> Self {
        self.stream.slide = Some(queries);
        self
    }

    /// Close windows on wall-clock boundaries instead of counts
    /// (see [`StreamConfig::time`]).
    pub fn time_windows(mut self, windows: TimeWindows) -> Self {
        self.stream.time = Some(windows);
        self
    }

    /// Closed windows forming the drift baseline
    /// (see [`StreamConfig::baseline_windows`]).
    pub fn baseline_windows(mut self, windows: usize) -> Self {
        self.stream.baseline_windows = windows;
        self
    }

    /// Clusters per summary (see [`StreamConfig::k`]).
    pub fn clusters(mut self, k: usize) -> Self {
        self.stream.k = k;
        self
    }

    /// Distance measure for clustering and novelty scoring.
    pub fn metric(mut self, metric: Distance) -> Self {
        self.stream.metric = metric;
        self
    }

    /// `stable` tolerance for window drift reports.
    pub fn drift_tolerance(mut self, tolerance: f64) -> Self {
        self.stream.drift_tolerance = tolerance;
        self
    }

    /// RNG seed threaded into clustering.
    pub fn seed(mut self, seed: u64) -> Self {
        self.stream.seed = seed;
        self
    }

    /// The record → feature source (see [`SourceConfig`]): SQL feature
    /// extraction by default, or the Drain-style template miner for
    /// free-form service logs. On [`EngineBuilder::resume`] the stored
    /// source always wins — the manifest's featurizer journal only
    /// replays through the configuration that wrote it.
    pub fn source(mut self, source: SourceConfig) -> Self {
        self.stream.source = source;
        self
    }

    /// Resident shard-payload budget in bytes for durable engines (see
    /// [`SpillConfig::resident_budget`]); unbounded when unset. On
    /// [`EngineBuilder::resume`], an explicitly set budget overrides the
    /// stored one.
    pub fn resident_budget(mut self, bytes: usize) -> Self {
        self.resident_budget = Some(bytes);
        self
    }

    /// The full [`StreamConfig`] escape hatch.
    pub fn stream_config(mut self, config: StreamConfig) -> Self {
        self.stream = config;
        self
    }

    /// Route every file operation (shard spill/reload, manifest
    /// write/read, lock acquisition, resume-time GC) through `vfs`
    /// instead of the real filesystem. This is how the fault-injection
    /// and power-cut-replay tests drive the engine against a
    /// [`logr_cluster::vfs::FaultFs`]; production code leaves it unset.
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = Some(vfs);
        self
    }

    /// Open the store **read-only**: no write lock is taken, no
    /// garbage collection runs, and no initial checkpoint is written —
    /// the engine serves the full snapshot/analytics read surface off
    /// the last durable manifest, even while another live process owns
    /// the store for writing (safe because shard files are write-once
    /// and the manifest is replaced atomically; writers never delete
    /// files — only an exclusive writer's resume-time GC does). Write
    /// entry points (ingest, flush, checkpoint, compact) return
    /// [`Error::ReadOnly`]. The degraded-open mode for inspecting a
    /// wedged or foreign-owned store.
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// Validate without panicking (the [`StreamSummarizer::new`] contract,
    /// as a typed error).
    fn validate(&self) -> Result<(), Error> {
        self.stream.validate().map_err(|detail| Error::Config { detail })
    }

    /// An ephemeral engine: everything stays in memory, nothing survives
    /// the process. [`Engine::checkpoint`] and recovery are unavailable;
    /// everything else behaves identically to a durable engine.
    pub fn in_memory(self) -> Result<Engine, Error> {
        self.validate()?;
        let vfs = self.vfs.unwrap_or_else(vfs::default_vfs);
        Ok(Engine::assemble(StreamSummarizer::new(self.stream), None, None, None, vfs, false))
    }

    /// Open-or-create a durable engine on `dir`: when the directory holds
    /// an engine manifest, this **resumes** the persisted session (see
    /// [`EngineBuilder::resume`] — the stored configuration wins, since
    /// continuing bit-identically under a different one is impossible);
    /// otherwise it initializes a fresh store there (creating the
    /// directory and writing an initial manifest, so an immediately
    /// dropped engine is already reopenable).
    pub fn open(self, dir: impl Into<PathBuf>) -> Result<Engine, Error> {
        let dir = dir.into();
        let vfs = self.vfs.clone().unwrap_or_else(vfs::default_vfs);
        if vfs.exists(&dir.join(manifest::FILE_NAME)) {
            return self.resume(dir);
        }
        if self.read_only {
            // A read-only open cannot initialize a store — there is
            // nothing durable to serve.
            return Err(Error::MissingManifest { dir });
        }
        self.validate()?;
        retry_io(|| vfs.create_dir_all(&dir))?;
        let lock = StoreLock::acquire(&dir, vfs.clone())?;
        let mut summarizer = StreamSummarizer::new(self.stream);
        let budget = self.resident_budget.unwrap_or(usize::MAX);
        summarizer.spill_to_with(vfs.clone(), &dir, budget)?;
        let engine = Engine::assemble(summarizer, Some(dir), None, Some(lock), vfs, false);
        engine.checkpoint()?;
        Ok(engine)
    }

    /// Resume a persisted engine from `dir`, which must hold a manifest
    /// ([`Error::MissingManifest`] otherwise — `open` is the
    /// open-or-create flavor). The recovered engine continues
    /// bit-identically from the last checkpoint: the stored stream
    /// configuration replaces this builder's, while an explicitly set
    /// [`EngineBuilder::resident_budget`] (an operational knob, not a
    /// semantic one) overrides the stored budget.
    ///
    /// Every corruption mode is a distinct typed error: a missing
    /// manifest is [`Error::MissingManifest`], a manifest from a newer
    /// build [`Error::ManifestVersion`], a damaged manifest
    /// [`Error::CorruptManifest`], a deleted shard file
    /// [`Error::MissingShard`], a truncated or rotted shard file
    /// [`Error::Spill`] with the decoder's verdict, and checkpoint-level
    /// inconsistency between them [`Error::StoreMismatch`]. A store
    /// owned by a live engine is [`Error::StoreLocked`] (resume
    /// garbage-collects files a live owner's snapshots may still read,
    /// so ownership must be exclusive; a dead owner's lock is stale and
    /// taken over). Never a panic.
    pub fn resume(self, dir: impl Into<PathBuf>) -> Result<Engine, Error> {
        let dir = dir.into();
        let vfs = self.vfs.clone().unwrap_or_else(vfs::default_vfs);
        let manifest_path = dir.join(manifest::FILE_NAME);
        if !vfs.exists(&manifest_path) {
            return Err(Error::MissingManifest { dir });
        }
        // Exclusive ownership before anything destructive: resume ends
        // with a garbage-collection pass over unreferenced shard files,
        // which must never run while another live engine (whose
        // snapshots may read exactly those files) owns the store. A
        // read-only open skips both the lock and the GC — it deletes
        // nothing and can safely coexist with a live writer.
        let lock = if self.read_only { None } else { Some(StoreLock::acquire(&dir, vfs.clone())?) };
        // Base manifest plus the delta log's acknowledged closes (a torn
        // log tail replays its valid prefix; a log bound to a replaced
        // base is ignored — see `crate::manifest`'s delta-log docs).
        let (m, replay) = manifest::read_store_with(&*vfs, &dir)?;
        // A checksum-valid manifest can still carry a configuration the
        // summarizer would refuse (hand-edited store, foreign writer) —
        // recovery must reject it as data, never reach a panic.
        if let Err(detail) = m.config.validate() {
            return Err(Error::CorruptManifest {
                detail: format!("stored stream configuration is invalid: {detail}"),
            });
        }
        let budget = self.resident_budget.unwrap_or(m.resident_budget);

        let mut files = Vec::with_capacity(m.shard_files.len());
        for name in &m.shard_files {
            let path = dir.join(name);
            if !vfs.exists(&path) {
                return Err(Error::MissingShard { path });
            }
            files.push(path);
        }
        let shards = ShardedPointSet::from_spilled_files_with(
            vfs.clone(),
            SpillConfig { dir: dir.clone(), resident_budget: budget },
            &files,
        )?;
        // The manifest and the shard files checksum independently; now
        // check they describe the same checkpoint before handing them to
        // the summarizer (whose constructor treats disagreement as a bug,
        // not an input).
        if shards.len() != m.total_points || shards.n_features() != m.n_features {
            return Err(Error::StoreMismatch {
                detail: format!(
                    "shard files hold {} points over {} features, manifest expects {} over {}",
                    shards.len(),
                    shards.n_features(),
                    m.total_points,
                    m.n_features
                ),
            });
        }
        if shards.len() != m.state.history.distinct_count()
            || shards.n_features() != m.state.history.num_features()
        {
            return Err(Error::StoreMismatch {
                detail: format!(
                    "shard files hold {} points over {} features, history log has {} over {}",
                    shards.len(),
                    shards.n_features(),
                    m.state.history.distinct_count(),
                    m.state.history.num_features()
                ),
            });
        }
        // A checksum-valid manifest can still carry a featurizer journal
        // the miner cannot replay (hand-edited store, foreign writer) —
        // recovery rejects it as data, never a panic.
        let summarizer =
            StreamSummarizer::try_from_state(m.config, m.state, shards).map_err(|e| {
                Error::CorruptManifest {
                    detail: format!("stored featurizer journal failed to replay: {e}"),
                }
            })?;
        // Garbage-collect shard files the manifest no longer references
        // (left behind by compactions — see `Engine::compact`). Recovery
        // is the one moment no live snapshot can be holding them: the
        // engine has not been assembled yet and any previous process's
        // snapshots died with it. Only files the engine itself owns are
        // touched — a store directory may hold unrelated user files the
        // engine must never delete. Swept alongside unreferenced shards:
        // shard `.tmp` siblings AND the manifest's own `engine.tmp`,
        // both left by a crash between an atomic-replace's write and
        // rename, plus a delta log whose binding no longer matches the
        // base (superseded by a later full persist). A *bound* delta log
        // is never touched here: the fold below has not committed its
        // new base yet, and deleting the log first would lose the
        // acknowledged closes it carries if power fails mid-fold.
        // Best-effort; a file that refuses to delete only costs disk.
        // Read-only opens hold no lock and therefore never delete
        // anything.
        if lock.is_some() {
            let manifest_tmp = Path::new(manifest::FILE_NAME).with_extension("tmp");
            if let Ok(paths) = vfs.list(&dir) {
                for path in paths {
                    let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
                    let orphaned_shard = name.starts_with("shard-")
                        && (name.ends_with(".bin") || name.ends_with(".tmp"))
                        && !m.shard_files.iter().any(|f| f == name);
                    let orphaned_tmp = manifest_tmp.as_os_str() == name;
                    let stale_delta = name == manifest::DELTA_FILE_NAME && !replay.log_bound;
                    if orphaned_shard || orphaned_tmp || stale_delta {
                        let _ = vfs.remove(&path);
                    }
                }
            }
        }
        let read_only = self.read_only;
        let engine =
            Engine::assemble(summarizer, Some(dir.clone()), None, lock, vfs.clone(), read_only);
        if !read_only && replay.records_applied > 0 {
            // Fold the replayed delta records into a fresh base before
            // serving writes, then retire the log: once the checkpoint's
            // rename+sync_dir commits, every acknowledged close lives in
            // the base. A crash in between leaves base' + a now-unbound
            // log — ignored by replay and swept by the next resume's GC.
            engine.checkpoint()?;
            let _ = vfs.remove(&dir.join(manifest::DELTA_FILE_NAME));
        }
        Ok(engine)
    }
}

/// File name of the ownership lock inside a store directory.
const LOCK_FILE: &str = "engine.lock";

/// Exclusive ownership of a store directory, held for an [`Engine`]'s
/// lifetime. Two layers, because the destructive operations (resume-time
/// garbage collection, compaction) assume no one else reads the store:
///
/// * an **in-process registry** — opening the same directory from two
///   `Engine`s in one process is refused outright;
/// * a **pid lock file**, acquired with `O_CREAT | O_EXCL` — the
///   creation either atomically succeeds or atomically loses, so two
///   racing acquisitions can never both hold the file (the
///   read-then-write protocol this replaced could interleave). A lock
///   left by a dead process (crash) is stale; takeover **renames** it to
///   a private name first, re-verifies the renamed file is still the
///   stale lock probed (not a fresh one a racer created in the gap),
///   deletes it, and retries the exclusive create — the rename is
///   atomic, so two racers cannot both reclaim one stale lock. Liveness
///   is probed via `/proc`; on systems without it a foreign lock is
///   treated as live (never stolen) until the operator removes it.
#[derive(Debug)]
struct StoreLock {
    /// Normalized registry key (see [`lock_key`]).
    key: PathBuf,
    /// The lock file, at the directory spelling the engine opened with —
    /// virtual stores (FaultFs) only know that spelling.
    lock_path: PathBuf,
    vfs: Arc<dyn Vfs>,
}

/// Registry key for a store directory: symlink-resolving canonicalization
/// when the path exists on the real filesystem, else a lexical
/// normalization — absolute-ized against the working directory with `.`
/// and `..` components folded — so two spellings of one directory
/// (`./store` vs `store`, `/a/../a/store` vs `/a/store`, a symlinked
/// root) can never both pass the in-process exclusivity check.
fn lock_key(dir: &Path) -> PathBuf {
    if let Ok(real) = dir.canonicalize() {
        return real;
    }
    let joined;
    let dir = if dir.is_absolute() {
        dir
    } else {
        joined = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("/")).join(dir);
        &joined
    };
    let mut out = PathBuf::new();
    for comp in dir.components() {
        match comp {
            std::path::Component::CurDir => {}
            std::path::Component::ParentDir => {
                out.pop();
            }
            other => out.push(other),
        }
    }
    out
}

/// Store directories locked by engines in this process.
static STORE_LOCKS: Mutex<Vec<PathBuf>> = Mutex::new(Vec::new());

/// Bound on stale-takeover rounds before reporting the store locked —
/// each round means a racer stole the stale lock first, and a handful of
/// consecutive losses means live contention, not staleness.
const LOCK_TAKEOVER_ROUNDS: usize = 8;

impl StoreLock {
    fn acquire(dir: &Path, vfs: Arc<dyn Vfs>) -> Result<StoreLock, Error> {
        let key = lock_key(dir);
        {
            let mut held = STORE_LOCKS.lock().map_err(|_| Error::Poisoned)?;
            if held.contains(&key) {
                return Err(Error::StoreLocked { dir: dir.to_path_buf(), pid: std::process::id() });
            }
            held.push(key.clone());
        }
        // In-process claim is ours; now contest the cross-process file.
        // Until create_exclusive succeeds the file is NOT ours, so error
        // paths must release only the registry entry, never the file.
        let release_claim = |key: &PathBuf| {
            if let Ok(mut held) = STORE_LOCKS.lock() {
                held.retain(|d| d != key);
            }
        };
        let path = dir.join(LOCK_FILE);
        let payload = format!("{}\n", std::process::id());
        let parse_pid = |bytes: Vec<u8>| -> Option<u32> {
            std::str::from_utf8(&bytes).ok().and_then(|s| s.trim().parse::<u32>().ok())
        };
        for round in 0..LOCK_TAKEOVER_ROUNDS {
            match retry_io(|| vfs.create_exclusive(&path, payload.as_bytes())) {
                Ok(()) => return Ok(StoreLock { key, lock_path: path, vfs }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Contested. Probe the owner recorded in the file; a
                    // vanished file means a racer's Drop just released it
                    // — loop straight back to the exclusive create.
                    let owner = match vfs.read(&path) {
                        Ok(bytes) => parse_pid(bytes),
                        Err(_) => continue,
                    };
                    if let Some(pid) = owner {
                        if pid != std::process::id() && process_alive(pid) {
                            release_claim(&key);
                            return Err(Error::StoreLocked { dir: dir.to_path_buf(), pid });
                        }
                    }
                    // Stale (dead pid, our own crash leftover, or
                    // unparseable). Steal it atomically: rename to a name
                    // only this acquisition knows, re-verify the stolen
                    // file is the same stale lock (a racer may have
                    // replaced it with a fresh one between read and
                    // rename), then delete and retry. Losing the rename
                    // means a racer reclaimed it first — just retry.
                    let steal =
                        dir.join(format!("{LOCK_FILE}.{}-{round:02}.stale", std::process::id()));
                    // lint:allow(sync-protocol): advisory lock file — atomicity matters, durability does not; a lock lost to power-off is correctly stale
                    if vfs.rename(&path, &steal).is_ok() {
                        let stolen = vfs.read(&steal).ok().and_then(parse_pid);
                        if stolen == owner {
                            let _ = vfs.remove(&steal);
                        } else {
                            // We stole a fresh lock — put it back and
                            // report its owner.
                            // lint:allow(sync-protocol): restoring an advisory lock we stole by mistake; same non-durable contract as the steal above
                            let _ = vfs.rename(&steal, &path);
                            release_claim(&key);
                            return Err(Error::StoreLocked {
                                dir: dir.to_path_buf(),
                                pid: stolen.unwrap_or(0),
                            });
                        }
                    }
                }
                Err(e) => {
                    release_claim(&key);
                    return Err(e.into());
                }
            }
        }
        release_claim(&key);
        Err(Error::StoreLocked { dir: dir.to_path_buf(), pid: 0 })
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        if let Ok(mut held) = STORE_LOCKS.lock() {
            held.retain(|d| d != &self.key);
        }
        let _ = self.vfs.remove(&self.lock_path);
    }
}

/// Best-effort liveness probe for a pid (Linux `/proc`; `false` — i.e.
/// stale — where that does not exist).
fn process_alive(pid: u32) -> bool {
    Path::new("/proc").exists() && Path::new(&format!("/proc/{pid}")).exists()
}

/// One index-advisor pick: a WHERE predicate and how much of the
/// workload the summary estimates it covers. The legacy shape of
/// [`crate::analytics::Advice`] — [`EngineSnapshot::advise`] keeps
/// returning it, while the full advisor family
/// ([`crate::analytics::IndexAdvisor`], [`crate::analytics::ViewAdvisor`],
/// [`crate::analytics::QueryRecommender`]) reports `Advice` directly.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexAdvice {
    /// The predicate's canonical text (e.g. `status = ?`).
    pub predicate: String,
    /// Estimated queries containing it (from the mixture, not the log).
    pub estimated: f64,
    /// `estimated / summarized_queries` — the advisor's ranking signal.
    /// The denominator is the absorbed-history total the summary covers
    /// ([`crate::analytics::WorkloadView::summarized_queries`]), not
    /// [`EngineSnapshot::total_queries`], which also counts the open
    /// window's still-unsummarized buffer.
    pub share: f64,
}

/// An immutable, internally consistent view of the engine at one window
/// boundary, shared by `Arc`: history and baseline logs, the sharded
/// distance structure (cheap `Arc`-per-slot clone; spilled shards reload
/// read-only through the snapshot's own cache), and the last closed
/// window. Reader threads hold snapshots across any number of queries;
/// the writer never blocks on them and never mutates what they see.
#[derive(Debug)]
pub struct EngineSnapshot {
    config: StreamConfig,
    windows_closed: usize,
    buffered: u64,
    history: Arc<QueryLog>,
    baseline: Arc<QueryLog>,
    shards: Arc<ShardedPointSet>,
    last_window: Option<Arc<WindowSummary>>,
    /// Memoized history summary: computed by the first reader that asks
    /// (clustering over the merged condensed matrix — no distance is
    /// recomputed), shared by every later one. Errors are not memoized —
    /// a reload failure may be transient.
    summary: Mutex<Option<Arc<LogRSummary>>>,
}

impl EngineSnapshot {
    fn capture(s: &StreamSummarizer, last_window: Option<Arc<WindowSummary>>) -> Self {
        EngineSnapshot {
            config: *s.config(),
            windows_closed: s.windows_closed(),
            buffered: s.buffered_queries(),
            // O(1) publication: the logs are shared, not cloned — the
            // summarizer's next close copies them out from under the
            // snapshot (`Arc::make_mut`), so capture cost no longer
            // grows with the distinct-query count.
            history: s.history_arc(),
            baseline: s.baseline_arc(),
            shards: Arc::new(s.shard_store().clone()),
            last_window,
            summary: Mutex::new(None),
        }
    }

    /// Windows closed when the snapshot was taken.
    pub fn windows_closed(&self) -> usize {
        self.windows_closed
    }

    /// The source (featurizer) configuration the engine runs.
    pub fn source(&self) -> SourceConfig {
        self.config.source
    }

    /// Total queries seen (absorbed history plus the open window's
    /// buffered queries).
    pub fn total_queries(&self) -> u64 {
        self.history.total_queries() + self.buffered
    }

    /// Queries buffered toward the next window close.
    pub fn buffered_queries(&self) -> u64 {
        self.buffered
    }

    /// The absorbed history log (every closed window).
    pub fn history(&self) -> &QueryLog {
        &self.history
    }

    /// The rolling drift baseline.
    pub fn baseline(&self) -> &QueryLog {
        &self.baseline
    }

    /// The last closed window's full artifacts, if any window has closed.
    pub fn last_window(&self) -> Option<&WindowSummary> {
        self.last_window.as_deref()
    }

    /// The last closed window's drift report.
    pub fn drift(&self) -> Option<&DriftReport> {
        self.last_window.as_deref().and_then(|w| w.drift.as_ref())
    }

    /// The last closed window's per-query novelty scores.
    pub fn novelty(&self) -> &[f64] {
        self.last_window.as_deref().map_or(&[], |w| &w.novelty)
    }

    /// Pattern mixture summary of everything seen so far, clustered over
    /// the sharded history's merged condensed matrix — bit-identical to
    /// [`StreamSummarizer::history_summary`] at the same boundary.
    /// Computed once per snapshot (first caller pays; concurrent callers
    /// wait and share), `None` before any distinct query was absorbed.
    pub fn summary(&self) -> Result<Option<Arc<LogRSummary>>, Error> {
        if self.history.distinct_count() == 0 {
            return Ok(None);
        }
        let mut slot = self.summary.lock().map_err(|_| Error::Poisoned)?;
        if let Some(s) = &*slot {
            return Ok(Some(s.clone()));
        }
        let dist = self.shards.try_condensed(self.config.metric)?;
        // The identical compressor StreamSummarizer::history_summary
        // builds — one shared definition, so the documented bit-identity
        // cannot silently drift.
        let compressor = LogR::new(self.config.compressor_config());
        let s = Arc::new(compressor.compress_condensed(&self.history, dist));
        *slot = Some(s.clone());
        Ok(Some(s))
    }

    /// A summary recompressed under a different [`CompressionObjective`]
    /// at read time — the trade-off knob without touching the stream
    /// configuration. Possible because the sharded history's condensed
    /// matrix serves every K through one dendrogram (no distance is
    /// recomputed); unlike [`EngineSnapshot::summary`] the result is
    /// **not** memoized, so each call pays one clustering.
    pub fn summary_with(
        &self,
        objective: CompressionObjective,
    ) -> Result<Option<Arc<LogRSummary>>, Error> {
        if self.history.distinct_count() == 0 {
            return Ok(None);
        }
        let dist = self.shards.try_condensed(self.config.metric)?;
        let mut config = self.config.compressor_config();
        config.objective = objective;
        Ok(Some(Arc::new(LogR::new(config).compress_condensed(&self.history, dist))))
    }

    /// The whole Error/Verbosity trade-off curve in one clustering:
    /// nested summaries at every requested K, cut from one dendrogram
    /// over the merged condensed matrix (see
    /// [`LogR::compress_condensed_multiresolution`]). Empty before any
    /// distinct query was absorbed.
    pub fn multiresolution(&self, ks: &[usize]) -> Result<Vec<LogRSummary>, Error> {
        if self.history.distinct_count() == 0 {
            return Ok(Vec::new());
        }
        let dist = self.shards.try_condensed(self.config.metric)?;
        let compressor = LogR::new(self.config.compressor_config());
        Ok(compressor.compress_condensed_multiresolution(&self.history, dist, ks))
    }

    /// The typed estimation surface over this snapshot's summary: build
    /// [`crate::analytics::Pred`] predicates and evaluate
    /// frequency/conditional/co-occurrence/top-k through the returned
    /// [`WorkloadQuery`]. `None` before the first distinct query.
    pub fn query(&self) -> Result<Option<WorkloadQuery<'_>>, Error> {
        WorkloadQuery::over(self)
    }

    /// Estimate how many history queries contain all the given features
    /// (the §6.2 mixture estimator; 0.0 for unknown features or before
    /// the first close).
    #[deprecated(
        since = "0.1.0",
        note = "use `EngineSnapshot::query()` with a typed `analytics::Pred` — unknown \
                features become typed errors instead of silent zeros"
    )]
    pub fn estimate_count_features(&self, features: &[Feature]) -> Result<f64, Error> {
        match self.summary()? {
            Some(s) => Ok(s.estimate_count_features(&self.history, features)),
            None => Ok(0.0),
        }
    }

    /// The §2 index-advisor question, answered from the summary: every
    /// WHERE predicate whose estimated share of the workload is at least
    /// `min_share`, descending. The raw log is never consulted.
    ///
    /// Thin wrapper over [`crate::analytics::IndexAdvisor`] — the one
    /// implementation this and [`Engine::advise`] share; run the advisor
    /// directly (or [`crate::analytics::ViewAdvisor`] /
    /// [`crate::analytics::QueryRecommender`]) for the full family.
    /// `min_share` outside `[0, 1]` (NaN included) is [`Error::Config`].
    pub fn advise(&self, min_share: f64) -> Result<Vec<IndexAdvice>, Error> {
        let picks = IndexAdvisor::new(min_share).advise(self)?;
        Ok(picks
            .into_iter()
            .map(|a| IndexAdvice { predicate: a.subject, estimated: a.estimated, share: a.share })
            .collect())
    }

    /// A self-contained portable artifact of the current summary (ship
    /// it, drop the log) — `None` before the first close.
    pub fn portable(&self) -> Result<Option<PortableSummary>, Error> {
        Ok(self.summary()?.map(|s| PortableSummary::from_summary(&s, &self.history)))
    }
}

/// Every snapshot is a [`WorkloadView`], so any
/// [`crate::analytics::Advisor`] (and [`WorkloadQuery`]) runs off reader
/// threads concurrently with ingestion.
impl WorkloadView for EngineSnapshot {
    fn summary(&self) -> Result<Option<Arc<LogRSummary>>, Error> {
        EngineSnapshot::summary(self)
    }

    fn codebook(&self) -> &Codebook {
        self.history.codebook()
    }

    fn summarized_queries(&self) -> u64 {
        // The summary covers absorbed history only — buffered queries of
        // the open window are not in it (unlike `total_queries`).
        self.history.total_queries()
    }

    fn drift(&self) -> Option<&DriftReport> {
        EngineSnapshot::drift(self)
    }

    fn baseline_codebook(&self) -> Option<&Codebook> {
        Some(self.baseline.codebook())
    }
}

/// Writer-side state, serialized behind one lock.
#[derive(Debug)]
struct WriterState {
    summarizer: StreamSummarizer,
    /// The newest closed window, carried across snapshots taken between
    /// closes.
    last_window: Option<Arc<WindowSummary>>,
    /// The live delta-log session: the append log bound to the current
    /// base manifest, plus the shard-file names the base and its records
    /// have acknowledged so far. `None` until a full persist establishes
    /// a base (and again after any append failure — the next persist
    /// then rewrites the base instead of extending a log whose tail may
    /// be torn).
    delta: Option<DeltaSession>,
}

/// One base manifest's append-log session (see [`WriterState::delta`]).
#[derive(Debug)]
struct DeltaSession {
    log: DeltaLog,
    /// Shard-file names acknowledged by the base plus every appended
    /// record, in manifest order — the prefix the next record's file
    /// list must extend.
    shard_files: Vec<String>,
}

/// Delta records accumulate until the log outgrows
/// `max(DELTA_FOLD_MIN_BYTES, base manifest size)`, then the next close
/// folds everything into a fresh base. Replay work at resume therefore
/// stays proportional to one base rewrite, while small stores don't
/// rewrite a tiny base every few closes.
const DELTA_FOLD_MIN_BYTES: u64 = 64 * 1024;

/// One durable, concurrent session over a query workload — see the
/// module docs. Share it as `Arc<Engine>`: ingestion entry points take
/// `&self` (one writer at a time proceeds; they serialize on an internal
/// lock), and [`Engine::snapshot`] hands any number of reader threads a
/// consistent view without blocking the writer.
#[derive(Debug)]
pub struct Engine {
    dir: Option<PathBuf>,
    state: Mutex<WriterState>,
    published: RwLock<Arc<EngineSnapshot>>,
    /// Storage layer every manifest write/read goes through (shard I/O
    /// carries its own handle inside the summarizer's shard store).
    vfs: Arc<dyn Vfs>,
    /// Opened via [`EngineBuilder::read_only`]: no lock is held and every
    /// write entry point returns [`Error::ReadOnly`].
    read_only: bool,
    /// Exclusive store ownership, released (registry entry + lock file)
    /// when the engine drops. `None` for in-memory and read-only engines.
    _lock: Option<StoreLock>,
}

impl Engine {
    /// Start configuring a session.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Shorthand: [`EngineBuilder::in_memory`] with defaults.
    pub fn in_memory() -> Result<Engine, Error> {
        EngineBuilder::new().in_memory()
    }

    /// Shorthand: [`EngineBuilder::open`] with defaults.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Engine, Error> {
        EngineBuilder::new().open(dir)
    }

    fn assemble(
        summarizer: StreamSummarizer,
        dir: Option<PathBuf>,
        last_window: Option<Arc<WindowSummary>>,
        lock: Option<StoreLock>,
        vfs: Arc<dyn Vfs>,
        read_only: bool,
    ) -> Engine {
        let snapshot = Arc::new(EngineSnapshot::capture(&summarizer, last_window.clone()));
        Engine {
            dir,
            state: Mutex::new(WriterState { summarizer, last_window, delta: None }),
            published: RwLock::new(snapshot),
            vfs,
            read_only,
            _lock: lock,
        }
    }

    /// The store directory (`None` for in-memory engines).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// True when the engine was opened via [`EngineBuilder::read_only`].
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Refuse writes on a read-only engine.
    fn check_writable(&self) -> Result<(), Error> {
        if self.read_only {
            return Err(Error::ReadOnly);
        }
        Ok(())
    }

    /// Ingest one statement (multiplicity 1). Returns the closed window's
    /// artifacts when this statement completes a window — at which point
    /// a new snapshot is published and, on durable engines, the store is
    /// checkpointed.
    ///
    /// # Error semantics
    ///
    /// An [`Error::Spill`] means the window close itself failed and the
    /// stream is wedged (reopen from the store). Any *other* error from
    /// an ingest entry point arrives **after** the close took effect in
    /// memory: the statement was ingested and the window closed — do not
    /// re-ingest it (that would count it twice). Two failure stages
    /// share that shape: a snapshot-publication failure
    /// ([`Error::Poisoned`] — persistence is still attempted before the
    /// error surfaces, so durability may well have advanced), and a
    /// persistence failure (the new snapshot is already published with
    /// the closed window's artifacts on it
    /// ([`EngineSnapshot::last_window`]) — only durability did not
    /// advance). Either way a later close or [`Engine::checkpoint`]
    /// retries persistence, and recovery meanwhile resumes from the last
    /// durable state.
    pub fn ingest(&self, sql: &str) -> Result<Option<Arc<WindowSummary>>, Error> {
        self.ingest_with_count(sql, 1)
    }

    /// Ingest one statement occurring `count` times.
    pub fn ingest_with_count(
        &self,
        sql: &str,
        count: u64,
    ) -> Result<Option<Arc<WindowSummary>>, Error> {
        self.check_writable()?;
        let mut st = self.state.lock().map_err(|_| Error::Poisoned)?;
        let closed = st.summarizer.try_ingest_with_count(sql, count)?;
        self.after_ingest(&mut st, closed)
    }

    /// Ingest one raw record through the engine's configured source
    /// (multiplicity 1) — [`Engine::ingest`]'s source-agnostic twin. On
    /// a template-source engine the record is a free-form service-log
    /// line; on an SQL-source engine the two entry points are
    /// interchangeable. Error semantics are those of [`Engine::ingest`].
    pub fn ingest_record(&self, text: &str) -> Result<Option<Arc<WindowSummary>>, Error> {
        self.ingest_record_with_count(text, 1)
    }

    /// Ingest one raw record occurring `count` times through the
    /// engine's configured source.
    pub fn ingest_record_with_count(
        &self,
        text: &str,
        count: u64,
    ) -> Result<Option<Arc<WindowSummary>>, Error> {
        self.check_writable()?;
        let mut st = self.state.lock().map_err(|_| Error::Poisoned)?;
        let closed = st.summarizer.try_ingest_record_with_count(text, count)?;
        self.after_ingest(&mut st, closed)
    }

    /// Ingest one statement occurring `count` times at timestamp `ts_ms`
    /// (for time-based windows; see [`StreamSummarizer::ingest_at_ms`]).
    pub fn ingest_at_ms(
        &self,
        sql: &str,
        count: u64,
        ts_ms: u64,
    ) -> Result<Option<Arc<WindowSummary>>, Error> {
        self.check_writable()?;
        let mut st = self.state.lock().map_err(|_| Error::Poisoned)?;
        let closed = st.summarizer.try_ingest_at_ms(sql, count, ts_ms)?;
        self.after_ingest(&mut st, closed)
    }

    /// Close a partial window (end of batch / forced boundary). `None`
    /// when nothing arrived since the last close.
    pub fn flush(&self) -> Result<Option<Arc<WindowSummary>>, Error> {
        self.check_writable()?;
        let mut st = self.state.lock().map_err(|_| Error::Poisoned)?;
        let closed = st.summarizer.try_flush()?;
        self.after_ingest(&mut st, closed)
    }

    fn after_ingest(
        &self,
        st: &mut WriterState,
        closed: Option<WindowSummary>,
    ) -> Result<Option<Arc<WindowSummary>>, Error> {
        let Some(w) = closed else { return Ok(None) };
        let w = Arc::new(w);
        st.last_window = Some(w.clone());
        // Publish before persisting: the close already happened in
        // memory, so readers must see it (and its artifacts must not be
        // lost) even when the checkpoint write below fails. Persistence
        // is attempted even when publication fails (a poisoned reader
        // lock must not cost durability — the ingest error contract
        // promises the checkpoint was tried); the publish error wins the
        // return because it reflects the earlier stage.
        let published = self.publish(st);
        let persisted = self.persist_close(st);
        published?;
        persisted?;
        Ok(Some(w))
    }

    /// Every shard's store-file name, in shard order — the manifest's
    /// `shard_files` list (and the prefix a delta record extends).
    fn shard_file_names(summarizer: &StreamSummarizer) -> Result<Vec<String>, Error> {
        let shards = summarizer.shard_store();
        let mut shard_files = Vec::with_capacity(shards.n_shards());
        for s in 0..shards.n_shards() {
            let path = shards.shard_file(s).ok_or_else(|| Error::StoreMismatch {
                detail: format!("persist_shards left shard {s} without a store file"),
            })?;
            let name =
                path.file_name().and_then(|n| n.to_str()).ok_or_else(|| Error::StoreMismatch {
                    detail: format!("spill file for shard {s} has a non-UTF-8 name: {path:?}"),
                })?;
            shard_files.push(name.to_string());
        }
        Ok(shard_files)
    }

    /// Persist the **full** state (durable engines; no-op in memory):
    /// every history shard gets a store file, then the base manifest is
    /// atomically replaced and a fresh delta-log session starts. A crash
    /// between the two leaves the previous manifest pointing at its own
    /// (still present, write-once) files. A delta log extending the
    /// replaced base is *not* deleted here — its binding checksum no
    /// longer matches, so replay ignores it, and the next writable
    /// resume's GC sweeps it (removal now would be an extra namespace op
    /// on the hot path for a file that is already inert).
    fn persist_full(&self, st: &mut WriterState) -> Result<(), Error> {
        let Some(dir) = &self.dir else { return Ok(()) };
        // Until the new base commits there is no log to extend: an error
        // below must leave the next persist rewriting the base again.
        st.delta = None;
        st.summarizer.persist_shards()?;
        let shard_files = Self::shard_file_names(&st.summarizer)?;
        let shards = st.summarizer.shard_store();
        let budget = shards.spill_config().map(|c| c.resident_budget).unwrap_or(usize::MAX);
        let m = Manifest {
            config: *st.summarizer.config(),
            resident_budget: budget,
            state: st.summarizer.export_state(),
            n_features: shards.n_features(),
            total_points: shards.len(),
            shard_files: shard_files.clone(),
        };
        let log = manifest::write_base_with(&*self.vfs, &dir.join(manifest::FILE_NAME), &m)?;
        st.delta = Some(DeltaSession { log, shard_files });
        Ok(())
    }

    /// Persist one window close (durable engines; no-op in memory): the
    /// `O(window)` path. When a delta-log session is live and the close
    /// recorded its [`logr_core::CloseDelta`], one checksummed record is
    /// appended and fsynced — the base manifest is untouched. Falls back
    /// to [`Engine::persist_full`] when there is no session (first
    /// persist, or a previous failure), no recorded close (forced
    /// checkpoints take this route too), the log has outgrown its fold
    /// threshold, or the shard-file list no longer extends the
    /// acknowledged prefix (compaction renames the whole set).
    fn persist_close(&self, st: &mut WriterState) -> Result<(), Error> {
        let Some(dir) = self.dir.clone() else { return Ok(()) };
        let close = st.summarizer.take_close_delta();
        let fold_due = match (&st.delta, &close) {
            (Some(session), Some(_)) => {
                session.log.appended_bytes() >= DELTA_FOLD_MIN_BYTES.max(session.log.base_len())
            }
            _ => true,
        };
        if fold_due {
            // The taken close (if any) is folded into the fresh base —
            // persist_full re-exports the whole state, close included.
            return self.persist_full(st);
        }
        st.summarizer.persist_shards()?;
        let shard_files = Self::shard_file_names(&st.summarizer)?;
        // `fold_due` covered both `None`s; these fallbacks exist so the
        // write path can never panic.
        let (Some(mut session), Some(close)) = (st.delta.take(), close) else {
            return self.persist_full(st);
        };
        if shard_files.len() < session.shard_files.len()
            || shard_files[..session.shard_files.len()] != session.shard_files[..]
        {
            // The store's file set was rewritten under the session
            // (compaction without a close, store surgery): a record can
            // only *extend* the acknowledged list, so rewrite the base.
            return self.persist_full(st);
        }
        let shards = st.summarizer.shard_store();
        let record = DeltaRecord {
            seq: 0, // assigned by the log at append time
            windows_closed: close.windows_closed,
            since_close: close.since_close,
            last_ts_ms: close.last_ts_ms,
            next_close_ms: close.next_close_ms,
            statements_parsed: close.statements_parsed,
            buffer: close.buffer,
            pending: close.pending,
            stride_log: close.stride_log,
            window_queries: close.window_queries,
            overlap_span: close.overlap_span,
            new_shard_files: shard_files[session.shard_files.len()..].to_vec(),
            n_features: shards.n_features(),
            total_points: shards.len(),
            source_events: close.source_events,
        };
        match session.log.append_with(&*self.vfs, &dir, &record) {
            Ok(()) => {
                session.shard_files = shard_files;
                st.delta = Some(session);
                Ok(())
            }
            // The log's tail may be torn mid-frame; replay tolerates
            // that (the acknowledged prefix survives), but a second
            // append would land misaligned bytes after it — the session
            // stays abandoned (taken above), so the next persist
            // rewrites the base.
            Err(e) => Err(e),
        }
    }

    /// Publish a fresh snapshot for readers.
    fn publish(&self, st: &WriterState) -> Result<(), Error> {
        let snapshot = Arc::new(EngineSnapshot::capture(&st.summarizer, st.last_window.clone()));
        *self.published.write().map_err(|_| Error::Poisoned)? = snapshot;
        Ok(())
    }

    /// The current published snapshot — a cheap `Arc` clone that never
    /// blocks on the writer beyond the publish pointer swap. Snapshots
    /// advance at window closes (and checkpoints/compactions), so a
    /// reader sees the state as of the latest boundary, never a torn
    /// mid-close intermediate.
    pub fn snapshot(&self) -> Result<Arc<EngineSnapshot>, Error> {
        Ok(self.published.read().map_err(|_| Error::Poisoned)?.clone())
    }

    /// Pattern mixture summary of everything seen so far (see
    /// [`EngineSnapshot::summary`]).
    pub fn summary(&self) -> Result<Option<Arc<LogRSummary>>, Error> {
        self.snapshot()?.summary()
    }

    /// The last closed window's drift report (cloned; `None` before the
    /// second window).
    pub fn drift(&self) -> Result<Option<DriftReport>, Error> {
        Ok(self.snapshot()?.drift().cloned())
    }

    /// Index advice from the current summary (see
    /// [`EngineSnapshot::advise`]).
    pub fn advise(&self, min_share: f64) -> Result<Vec<IndexAdvice>, Error> {
        self.snapshot()?.advise(min_share)
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> Result<usize, Error> {
        Ok(self.snapshot()?.windows_closed())
    }

    /// The source (featurizer) configuration the engine runs — the
    /// builder's [`EngineBuilder::source`] on fresh stores, the
    /// manifest's stored source after [`EngineBuilder::resume`].
    pub fn source(&self) -> Result<SourceConfig, Error> {
        let st = self.state.lock().map_err(|_| Error::Poisoned)?;
        Ok(st.summarizer.config().source)
    }

    /// Total queries seen (absorbed plus buffered).
    pub fn total_queries(&self) -> Result<u64, Error> {
        Ok(self.snapshot()?.total_queries())
    }

    /// Persist everything **including the half-filled window buffer** to
    /// the store, so [`Engine::open`] resumes bit-identically from this
    /// exact point (ingestion between closes otherwise persists at window
    /// granularity). This is also the **fold** point of the delta log:
    /// the accumulated per-close records collapse into a fresh base
    /// manifest and a new, empty append session starts.
    /// [`Error::NotDurable`] on in-memory engines.
    pub fn checkpoint(&self) -> Result<(), Error> {
        self.check_writable()?;
        if self.dir.is_none() {
            return Err(Error::NotDurable);
        }
        let mut st = self.state.lock().map_err(|_| Error::Poisoned)?;
        self.persist_full(&mut st)?;
        self.publish(&st)
    }

    /// Merge the history's many per-window shards (and store files) into
    /// one — bit-identical reads at a fraction of the per-shard reload
    /// and bookkeeping overhead. On durable engines the manifest is
    /// rewritten to reference only the merged file; the replaced files
    /// are left on disk, because snapshots handed out **before** the
    /// compaction still read from them — [`EngineBuilder::resume`]
    /// garbage-collects unreferenced shard files on the next open, when
    /// no snapshot can exist. Returns how many shards were merged
    /// (0 = nothing to do).
    pub fn compact(&self) -> Result<usize, Error> {
        self.check_writable()?;
        let mut st = self.state.lock().map_err(|_| Error::Poisoned)?;
        let stats = st.summarizer.compact_shards()?;
        if stats.shards_merged == 0 {
            return Ok(0);
        }
        // Compaction rewrites the shard-file set wholesale, which no
        // delta record can express — fold into a fresh base.
        self.persist_full(&mut st)?;
        self.publish(&st)?;
        Ok(stats.shards_merged)
    }

    /// History shards currently on disk only (0 for in-memory engines).
    pub fn spilled_shards(&self) -> Result<usize, Error> {
        let st = self.state.lock().map_err(|_| Error::Poisoned)?;
        Ok(st.summarizer.spilled_shards())
    }

    /// Resident history-shard payload bytes.
    pub fn resident_shard_bytes(&self) -> Result<usize, Error> {
        let st = self.state.lock().map_err(|_| Error::Poisoned)?;
        Ok(st.summarizer.resident_shard_bytes())
    }

    /// Re-bound the resident-byte budget of this engine's spill store,
    /// enforcing the new bound immediately (shrinking evicts resident
    /// shards oldest-first). No-op for in-memory engines, which have no
    /// spill store. Summaries and on-disk contents are unaffected — the
    /// budget governs only which shard payloads stay resident, which is
    /// what lets a multi-tenant host re-apportion one global budget
    /// across engines as tenants come and go.
    pub fn set_resident_budget(&self, bytes: usize) -> Result<(), Error> {
        let mut st = self.state.lock().map_err(|_| Error::Poisoned)?;
        st.summarizer.set_resident_budget(bytes)?;
        Ok(())
    }
}
