//! # LogR — query log compression for workload analytics
//!
//! A Rust implementation of *"Query Log Compression for Workload
//! Analytics"* (Xie, Chandola, Kennedy — VLDB 2018): lossy compression of
//! SQL query logs into **pattern mixture encodings** that support fast,
//! provably-bounded estimation of aggregate workload statistics — the
//! counts that index selection, materialized-view selection, and online
//! workload monitoring all reduce to.
//!
//! ## Quickstart: the [`Engine`]
//!
//! One session object covers both batch and streaming ingestion, with
//! durability and concurrent reads built in. Batch is just the degenerate
//! stream — ingest everything, flush, read the summary:
//!
//! ```
//! use logr::analytics::{Advisor, IndexAdvisor, Pred, QueryRecommender};
//! use logr::Engine;
//!
//! let engine = Engine::builder().clusters(2).in_memory()?;
//! for _ in 0..900 {
//!     engine.ingest("SELECT id, body FROM messages WHERE status = ?")?;
//! }
//! for _ in 0..100 {
//!     engine.ingest("SELECT balance FROM accounts WHERE owner = ? AND open = ?")?;
//! }
//! engine.flush()?;
//!
//! // Statistics come from the summary, never the raw log: typed
//! // predicates, composable with `and`/`or`.
//! let snapshot = engine.snapshot()?;
//! let query = snapshot.query()?.expect("non-empty workload");
//! let est = query.frequency(&Pred::table("messages").and(Pred::column_eq("status")))?;
//! assert!((est - 900.0).abs() < 1.0);
//!
//! // The §2 index-advisor question — one of a family of advisors
//! // ([`analytics::ViewAdvisor`], [`analytics::QueryRecommender`], …)
//! // that all read the same snapshot, concurrently with ingestion.
//! let advice = IndexAdvisor::new(0.5).advise(&*snapshot)?;
//! assert!(advice.iter().any(|a| a.subject == "status = ?"));
//! let next = QueryRecommender::new("SELECT id FROM messages", 0.5).advise(&*snapshot)?;
//! assert!(next.iter().any(|a| a.subject == "status = ?"));
//! # Ok::<(), logr::Error>(())
//! ```
//!
//! Durable, always-on sessions open on a directory instead:
//! `Engine::builder().open(dir)?` resumes bit-identically from the last
//! checkpoint (window summaries, drift, novelty, history summaries — see
//! [`Engine::open`]), while readers on other threads answer statistics
//! from [`Engine::snapshot`] views that one writer keeps advancing.
//!
//! The layers underneath remain public for direct use — `LogIngest` →
//! `LogR::compress` for one-shot batch compression
//! ([`core::LogR`]), `StreamSummarizer` for hand-driven streaming
//! ([`core::StreamSummarizer`]) — and the engine is a thin, durable,
//! lock-disciplined shell over exactly those pieces.
//!
//! ## Pluggable sources: beyond SQL
//!
//! The paper's pipeline — anonymize each record into feature sets,
//! cluster, encode per-cluster naive mixtures — never actually requires
//! SQL; SQL is just the featurizer the paper evaluates. The
//! [`source`] crate (`logr-source`) makes that seam explicit: a
//! [`source::Featurizer`] turns one raw record into anonymized feature
//! branches, and everything downstream (windows, drift, spill,
//! recovery, analytics) is source-agnostic. Two featurizers ship:
//!
//! * [`SourceConfig::Sql`] (default) — the paper's path: parse,
//!   regularize, emit `⟨class, text⟩` features per conjunctive branch.
//!   Byte-compatible with every pre-source store.
//! * [`SourceConfig::Template`] — a Drain-style **template miner** for
//!   free-form service logs: a fixed-depth parse tree buckets each line
//!   by token count and leading tokens, matches it against leaf
//!   templates by similarity, and promotes disagreeing positions to
//!   `<*>` wildcards. Each line becomes one `⟨template⟩` feature plus a
//!   `⟨class, param⟩` feature per wildcard (classes: `num`, `ip`,
//!   `uuid`, `hex`, `path`, `id`, `str`), so "which message shapes
//!   dominate, and what drifted" is answered by the same estimators
//!   that answer "which predicates dominate".
//!
//! Select the source at build time and feed raw records through
//! [`Engine::ingest_record`]:
//!
//! ```
//! use logr::core::SourceConfig;
//! use logr::Engine;
//!
//! let engine = Engine::builder()
//!     .source(SourceConfig::template())
//!     .window(4)
//!     .clusters(2)
//!     .in_memory()?;
//! engine.ingest_record("request 9001 served in 35 ms")?;
//! engine.ingest_record("request 9002 served in 41 ms")?;
//! engine.ingest_record("connection from 10.0.0.7 port 6033 established")?;
//! engine.ingest_record("request 9003 served in 9 ms")?;
//! engine.flush()?;
//! assert!(engine.snapshot()?.total_queries() >= 4);
//! # Ok::<(), logr::Error>(())
//! ```
//!
//! The miner's learned state (its journal of distinct first-seen lines)
//! is part of the engine's durable state: full manifests carry the
//! whole journal, delta records carry each close's increment, and
//! recovery replays the journal through the same mining code — so a
//! resumed engine assigns every future line the exact template and
//! parameter features the original would have. SQL-source stores are
//! unaffected: their journal is empty and version-2 manifests still
//! open.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | crate root | `logr` | [`Engine`] session façade, [`Error`] (the one error type), store [`manifest`] |
//! | [`analytics`] | `logr` | typed predicates ([`analytics::Pred`]), the [`analytics::WorkloadQuery`] evaluator, and the pluggable [`analytics::Advisor`] family ([`analytics::IndexAdvisor`], [`analytics::ViewAdvisor`], [`analytics::QueryRecommender`], [`analytics::DriftAdvisor`]) |
//! | [`sql`] | `logr-sql` | lexer, parser, printer, conjunctive regularizer |
//! | [`source`] | `logr-source` | pluggable record → feature sources: the [`source::Featurizer`] trait, the SQL featurizer, and the Drain-style [`source::TemplateMiner`] for free-form service logs (see *Pluggable sources*) |
//! | [`feature`] | `logr-feature` | Aligon features, codebook, vectors, [`feature::QueryLog`] |
//! | [`cluster`] | `logr-cluster` | k-means, spectral, hierarchical clustering; sharded condensed matrices ([`cluster::ShardedPointSet`]), the versioned spill store ([`cluster::spill`]), and the injectable storage layer ([`cluster::vfs`]: [`cluster::vfs::RealFs`], the fault-injecting [`cluster::vfs::FaultFs`], and the power-cut simulator) |
//! | [`core`] | `logr-core` | encodings, Reproduction Error, max-ent, mixtures, the [`core::LogR`] batch compressor, the [`core::StreamSummarizer`] streaming subsystem (windows, drift, novelty), portable summaries |
//! | [`baselines`] | `logr-baselines` | Laserlight & MTV reimplementations + mixture generalizations |
//! | [`workload`] | `logr-workload` | synthetic PocketData / US-bank / Mushroom / Income generators |
//! | [`math`] | `logr-math` | matrices, eigensolvers, projections, entropies |
//! | — | `logr-server` | multi-tenant ingestion daemon: line-delimited JSON protocol over TCP, per-tenant engines under one root, group-committed (fsync-coalesced) window closes, a global resident budget apportioned across tenants, and the whole analytics read surface as wire ops — see the `logr-server` crate docs for the protocol reference |
//! | — | `logr-lint` | workspace invariant checker (`cargo run -p logr-lint -- --deny`): machine-enforces the contracts below — see *Workspace invariants* |
//!
//! ## Durability & crash-consistency guarantees
//!
//! Durable engines promise exactly this: **after a crash — including a
//! power cut that loses every unsynced page — [`EngineBuilder::resume`]
//! recovers the store bit-identically to the last durable checkpoint, or
//! fails with one typed [`Error`]. Never a panic, never silently
//! different data.** The guarantee is enforced mechanically: the test
//! suite replays every prefix of the engine's real IO trace (plus torn-
//! and unsynced-final-write variants) through a simulated power cut and
//! asserts the property at each one (`tests/power_cut_replay.rs`).
//!
//! What is durable when:
//!
//! * **Window close** — persists automatically: shard files first, then
//!   an `O(window)` delta record appended (and fsynced) to the manifest's
//!   checksummed append log (`engine.delta`), so per-close write cost
//!   tracks the window, not the whole history. Recovery replays the
//!   valid prefix of the log over the base manifest; a crash mid-append
//!   costs at most the record being appended, and a torn tail is
//!   detected per record and ignored.
//! * **[`Engine::checkpoint`]** — additionally captures the half-filled
//!   window buffer and **folds** the delta log back into a full base
//!   manifest; after it returns, a crash loses nothing at all. The
//!   engine folds automatically once the log outgrows its base (and on
//!   every writable resume that replayed records).
//! * **[`Engine::compact`]** — rewrites the manifest to the merged
//!   shard; the replaced files persist until the next writable resume
//!   garbage-collects them, so a crash at any point leaves one complete
//!   referenced set.
//! * **Between persists** — ingested-but-unflushed statements in the
//!   window buffer since the last window close/checkpoint are lost, by
//!   design (window granularity).
//!
//! Every whole file in the store is written by one protocol — write a
//! `.tmp` sibling, `fsync` it, rename over the final name, `fsync` the
//! directory — so a durable file name never holds partial content. The
//! one sequential-growth file, the delta log, commits by append→fsync
//! instead, and every record carries its own checksum so a torn tail is
//! detected rather than replayed.
//! Transient IO errors (`EINTR`/`EAGAIN`) are retried with bounded
//! backoff; `ENOSPC` fails fast as [`Error::StorageExhausted`] and
//! leaves the store openable at its previous checkpoint. One writable
//! engine owns a store at a time ([`Error::StoreLocked`], `O_EXCL` lock
//! files with verified-stale takeover); read-only opens
//! ([`EngineBuilder::read_only`]) take no lock, delete nothing, and
//! serve the full read surface beside a live writer — see
//! `examples/degraded_read_only.rs`. All of it runs over an injectable
//! [`cluster::vfs::Vfs`], which is how the fault-injection and
//! power-cut suites drive the real engine through simulated disasters.
//!
//! ## Workspace invariants (machine-enforced)
//!
//! The guarantees above rest on coding contracts that `rustc` cannot
//! check, so the workspace ships its own checker: `logr-lint`
//! (`crates/lint`), run locally and in CI as
//! `cargo run -p logr-lint -- --deny`. It lexes every source file
//! (comments and string/char literals never count), skips test code
//! (`#[cfg(test)]` regions, `tests/`, `benches/`, `examples/`), and
//! enforces five rules:
//!
//! * **`vfs-bypass`** — no `std::fs` / `File::` / `OpenOptions` in
//!   library code outside `cluster::vfs` itself. Every file operation
//!   must flow through the injectable [`cluster::vfs::Vfs`], because
//!   that is the seam the fault-injection and power-cut-replay suites
//!   drive; a raw `std::fs` call is a write the crash tests can never
//!   see.
//! * **`no-panic-paths`** — no `.unwrap()` / `.expect(` / `panic!`-family
//!   macros in library code of the durability-critical crates (this
//!   facade, `logr-cluster`, `logr-core`, `logr-server`). The recovery
//!   contract is "a typed [`Error`], never a panic"; a panic
//!   mid-persist is how stores tear — and in the daemon, how one
//!   tenant's bad frame would take down every other tenant.
//! * **`sync-protocol`** — every `rename` call in library code must sit
//!   in a function that also calls `fsync` and `sync_dir`: the
//!   write→fsync→rename→sync_dir protocol documented above. Rename-only
//!   replacement is atomic but *not durable* — after power loss the new
//!   name can point at unwritten pages. Likewise every `append` call
//!   must pair with an `fsync` in the same function (the delta-log
//!   commit protocol; appends never change the namespace, so no
//!   `sync_dir` is required).
//! * **`typed-errors`** — public functions of this facade (and of
//!   `logr-server`, whose `ServerError` wraps it) must not expose
//!   `Box<dyn Error>` or a bare `io::Error`; callers match the one
//!   `#[non_exhaustive]` [`Error`] enum and lower-level failures
//!   arrive through `From` conversions.
//! * **`no-debug-output`** — no `println!` / `eprintln!` / `dbg!` in
//!   library code; binaries are exempt (their stdout is the interface),
//!   and library code whose output *is* the contract writes through an
//!   explicit `io::Write` handle.
//!
//! Exemptions are inline, per line, and must be justified:
//! `code(); // lint:allow(<rule>): <why this exemption is sound>` — a
//! bare allow with no justification, a typo'd rule name, or malformed
//! syntax is itself a finding. The linter's conformance suite
//! (`crates/lint/tests/`) gives every rule positive and negative
//! fixtures, and `cargo test` also re-scans the workspace, so the
//! invariants hold on every green build, not just in CI.
//!
//! Reproduction of every table and figure in the paper: see `DESIGN.md`
//! (experiment index) and run `cargo run --release -p logr-bench --bin
//! repro -- all`.

#![warn(missing_docs)]

pub use logr_baselines as baselines;
pub use logr_cluster as cluster;
pub use logr_core as core;
pub use logr_feature as feature;
pub use logr_math as math;
pub use logr_source as source;
pub use logr_sql as sql;
pub use logr_workload as workload;

pub mod analytics;
mod engine;
mod error;
pub mod manifest;

pub use engine::{Engine, EngineBuilder, EngineSnapshot, IndexAdvice};
pub use error::Error;
// The source selector rides at the root so `.source(...)` call sites
// need not name the backing crate.
pub use logr_source::{SourceConfig, TemplateConfig};
