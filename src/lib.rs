//! # LogR — query log compression for workload analytics
//!
//! A Rust implementation of *"Query Log Compression for Workload
//! Analytics"* (Xie, Chandola, Kennedy — VLDB 2018): lossy compression of
//! SQL query logs into **pattern mixture encodings** that support fast,
//! provably-bounded estimation of aggregate workload statistics — the
//! counts that index selection, materialized-view selection, and online
//! workload monitoring all reduce to.
//!
//! ## Quickstart: the [`Engine`]
//!
//! One session object covers both batch and streaming ingestion, with
//! durability and concurrent reads built in. Batch is just the degenerate
//! stream — ingest everything, flush, read the summary:
//!
//! ```
//! use logr::analytics::{Advisor, IndexAdvisor, Pred, QueryRecommender};
//! use logr::Engine;
//!
//! let engine = Engine::builder().clusters(2).in_memory()?;
//! for _ in 0..900 {
//!     engine.ingest("SELECT id, body FROM messages WHERE status = ?")?;
//! }
//! for _ in 0..100 {
//!     engine.ingest("SELECT balance FROM accounts WHERE owner = ? AND open = ?")?;
//! }
//! engine.flush()?;
//!
//! // Statistics come from the summary, never the raw log: typed
//! // predicates, composable with `and`/`or`.
//! let snapshot = engine.snapshot()?;
//! let query = snapshot.query()?.expect("non-empty workload");
//! let est = query.frequency(&Pred::table("messages").and(Pred::column_eq("status")))?;
//! assert!((est - 900.0).abs() < 1.0);
//!
//! // The §2 index-advisor question — one of a family of advisors
//! // ([`analytics::ViewAdvisor`], [`analytics::QueryRecommender`], …)
//! // that all read the same snapshot, concurrently with ingestion.
//! let advice = IndexAdvisor::new(0.5).advise(&*snapshot)?;
//! assert!(advice.iter().any(|a| a.subject == "status = ?"));
//! let next = QueryRecommender::new("SELECT id FROM messages", 0.5).advise(&*snapshot)?;
//! assert!(next.iter().any(|a| a.subject == "status = ?"));
//! # Ok::<(), logr::Error>(())
//! ```
//!
//! Durable, always-on sessions open on a directory instead:
//! `Engine::builder().open(dir)?` resumes bit-identically from the last
//! checkpoint (window summaries, drift, novelty, history summaries — see
//! [`Engine::open`]), while readers on other threads answer statistics
//! from [`Engine::snapshot`] views that one writer keeps advancing.
//!
//! The layers underneath remain public for direct use — `LogIngest` →
//! `LogR::compress` for one-shot batch compression
//! ([`core::LogR`]), `StreamSummarizer` for hand-driven streaming
//! ([`core::StreamSummarizer`]) — and the engine is a thin, durable,
//! lock-disciplined shell over exactly those pieces.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | crate root | `logr` | [`Engine`] session façade, [`Error`] (the one error type), store [`manifest`] |
//! | [`analytics`] | `logr` | typed predicates ([`analytics::Pred`]), the [`analytics::WorkloadQuery`] evaluator, and the pluggable [`analytics::Advisor`] family ([`analytics::IndexAdvisor`], [`analytics::ViewAdvisor`], [`analytics::QueryRecommender`]) |
//! | [`sql`] | `logr-sql` | lexer, parser, printer, conjunctive regularizer |
//! | [`feature`] | `logr-feature` | Aligon features, codebook, vectors, [`feature::QueryLog`] |
//! | [`cluster`] | `logr-cluster` | k-means, spectral, hierarchical clustering; sharded condensed matrices ([`cluster::ShardedPointSet`]) and the versioned spill store ([`cluster::spill`]) |
//! | [`core`] | `logr-core` | encodings, Reproduction Error, max-ent, mixtures, the [`core::LogR`] batch compressor, the [`core::StreamSummarizer`] streaming subsystem (windows, drift, novelty), portable summaries |
//! | [`baselines`] | `logr-baselines` | Laserlight & MTV reimplementations + mixture generalizations |
//! | [`workload`] | `logr-workload` | synthetic PocketData / US-bank / Mushroom / Income generators |
//! | [`math`] | `logr-math` | matrices, eigensolvers, projections, entropies |
//!
//! Reproduction of every table and figure in the paper: see `DESIGN.md`
//! (experiment index) and run `cargo run --release -p logr-bench --bin
//! repro -- all`.

pub use logr_baselines as baselines;
pub use logr_cluster as cluster;
pub use logr_core as core;
pub use logr_feature as feature;
pub use logr_math as math;
pub use logr_sql as sql;
pub use logr_workload as workload;

pub mod analytics;
mod engine;
mod error;
pub mod manifest;

pub use engine::{Engine, EngineBuilder, EngineSnapshot, IndexAdvice};
pub use error::Error;
