//! # LogR — query log compression for workload analytics
//!
//! A Rust implementation of *"Query Log Compression for Workload
//! Analytics"* (Xie, Chandola, Kennedy — VLDB 2018): lossy compression of
//! SQL query logs into **pattern mixture encodings** that support fast,
//! provably-bounded estimation of aggregate workload statistics — the
//! counts that index selection, materialized-view selection, and online
//! workload monitoring all reduce to.
//!
//! ## Quickstart
//!
//! ```
//! use logr::feature::LogIngest;
//! use logr::core::{LogR, LogRConfig, CompressionObjective};
//! use logr::feature::Feature;
//!
//! // 1. Ingest raw SQL (parse → anonymize → regularize → featurize).
//! let mut ingest = LogIngest::new();
//! for _ in 0..900 {
//!     ingest.ingest("SELECT id, body FROM messages WHERE status = ?");
//! }
//! for _ in 0..100 {
//!     ingest.ingest("SELECT balance FROM accounts WHERE owner = ? AND open = ?");
//! }
//! let (log, stats) = ingest.finish();
//! assert_eq!(stats.parse_errors, 0);
//!
//! // 2. Compress: cluster + naive mixture encoding.
//! let summary = LogR::new(LogRConfig {
//!     objective: CompressionObjective::FixedK(2),
//!     ..Default::default()
//! }).compress(&log);
//!
//! // 3. Query statistics from the summary instead of the log.
//! let est = summary.estimate_count_features(&log, &[
//!     Feature::from_table("messages"),
//!     Feature::where_atom("status = ?"),
//! ]);
//! assert!((est - 900.0).abs() < 1.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`sql`] | `logr-sql` | lexer, parser, printer, conjunctive regularizer |
//! | [`feature`] | `logr-feature` | Aligon features, codebook, vectors, [`feature::QueryLog`] |
//! | [`cluster`] | `logr-cluster` | k-means, spectral, hierarchical clustering |
//! | [`core`] | `logr-core` | encodings, Reproduction Error, max-ent, mixtures, the [`core::LogR`] compressor |
//! | [`baselines`] | `logr-baselines` | Laserlight & MTV reimplementations + mixture generalizations |
//! | [`workload`] | `logr-workload` | synthetic PocketData / US-bank / Mushroom / Income generators |
//! | [`math`] | `logr-math` | matrices, eigensolvers, projections, entropies |
//!
//! Reproduction of every table and figure in the paper: see `DESIGN.md`
//! (experiment index) and run `cargo run --release -p logr-bench --bin
//! repro -- all`.

pub use logr_baselines as baselines;
pub use logr_cluster as cluster;
pub use logr_core as core;
pub use logr_feature as feature;
pub use logr_math as math;
pub use logr_sql as sql;
pub use logr_workload as workload;
