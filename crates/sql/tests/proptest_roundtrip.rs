//! Property tests for the SQL substrate: printing and re-parsing arbitrary
//! generated ASTs is a fixpoint, and the regularizer is idempotent and
//! produces genuinely conjunctive branches.

use logr_sql::{
    anonymize_statement, parse_select, regularize, BinaryOp, Expr, Literal, ObjectName, Select,
    SelectItem, SelectStatement, SetExpr, TableRef, UnaryOp,
};
use proptest::prelude::*;

/// Identifier-safe names.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("avoid keywords", |s| {
        ![
            "select", "from", "where", "and", "or", "not", "in", "between", "like", "is", "null",
            "group", "by", "order", "limit", "union", "join", "on", "as", "having", "exists",
            "all", "distinct", "asc", "desc", "true", "false", "left", "inner", "cross", "offset",
            "case", "when", "then", "else", "end", "outer",
        ]
        .contains(&s.as_str())
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (0u32..10_000).prop_map(|n| Literal::Number(n.to_string())),
        "[a-zA-Z0-9 ]{0,10}".prop_map(Literal::String),
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Boolean),
    ]
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        ident().prop_map(|c| Expr::col(&c)),
        literal().prop_map(Expr::Literal),
        Just(Expr::Param),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(l, BinaryOp::Eq, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(l, BinaryOp::Lt, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::and(l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::or(l, r)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(e, lo, hi)| Expr::Between {
                expr: Box::new(e),
                low: Box::new(lo),
                high: Box::new(hi),
                negated: false,
            }),
            (inner.clone(), prop::collection::vec(inner.clone(), 1..3), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList { expr: Box::new(e), list, negated }),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, negated)| Expr::IsNull { expr: Box::new(e), negated }),
            inner.clone().prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
        ]
    })
}

fn arb_statement() -> impl Strategy<Value = SelectStatement> {
    (
        prop::collection::vec(ident(), 1..4),
        prop::collection::vec(ident(), 1..3),
        prop::option::of(arb_expr()),
        any::<bool>(),
    )
        .prop_map(|(cols, tables, selection, distinct)| {
            let select = Select {
                distinct,
                items: cols
                    .into_iter()
                    .map(|c| SelectItem::Expr { expr: Expr::col(&c), alias: None })
                    .collect(),
                from: tables
                    .into_iter()
                    .map(|t| TableRef::Table { name: ObjectName::simple(&t), alias: None })
                    .collect(),
                selection,
                group_by: vec![],
                having: None,
            };
            SelectStatement {
                body: SetExpr::Select(Box::new(select)),
                order_by: vec![],
                limit: None,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → print is a fixpoint for generated statements.
    #[test]
    fn print_parse_print_fixpoint(stmt in arb_statement()) {
        let printed = stmt.to_string();
        let reparsed = parse_select(&printed)
            .unwrap_or_else(|e| panic!("printer emitted unparseable SQL: {printed}\n{e}"));
        prop_assert_eq!(printed, reparsed.to_string());
    }

    /// Anonymization is idempotent and removes all literals except NULL.
    #[test]
    fn anonymization_idempotent(stmt in arb_statement()) {
        let mut once = stmt.clone();
        anonymize_statement(&mut once);
        let mut twice = once.clone();
        anonymize_statement(&mut twice);
        prop_assert_eq!(&once, &twice);
        let text = once.to_string();
        prop_assert!(!text.contains('\''), "string literal survived: {}", text);
    }

    /// Every branch the regularizer emits is itself conjunctive, and
    /// re-regularizing a branch is the identity.
    #[test]
    fn regularizer_branches_conjunctive(stmt in arb_statement()) {
        let mut anon = stmt;
        anonymize_statement(&mut anon);
        if let Ok(reg) = regularize(&anon) {
            for branch in &reg.branches {
                let printed = branch.to_string();
                let reparsed = parse_select(&printed)
                    .unwrap_or_else(|e| panic!("branch unparseable: {printed}\n{e}"));
                let again = regularize(&reparsed).expect("branch must regularize");
                prop_assert!(again.was_conjunctive, "branch not conjunctive: {}", printed);
                prop_assert_eq!(again.branches.len(), 1);
            }
        }
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(input in "\\PC{0,200}") {
        let _ = logr_sql::Lexer::tokenize(&input);
    }

    /// The parser never panics on arbitrary input (errors are fine).
    #[test]
    fn parser_total(input in "\\PC{0,200}") {
        let _ = parse_select(&input);
    }
}
