//! Query AST and its canonical SQL rendering.
//!
//! The `Display` implementations are the *printer*: they emit canonical SQL
//! (uppercase keywords, minimal parentheses driven by operator precedence).
//! Canonical text matters because the feature extractor uses printed atoms
//! (e.g. `status = ?`) as feature identities, so two syntactically different
//! spellings of the same atom must print identically.

use std::fmt;

/// Dotted, possibly-qualified name: `schema.table` or `table.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectName(pub Vec<String>);

impl ObjectName {
    /// Single-part name.
    pub fn simple(name: &str) -> Self {
        ObjectName(vec![name.to_string()])
    }

    /// The final (unqualified) part.
    pub fn last(&self) -> &str {
        self.0.last().map(String::as_str).unwrap_or("")
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

/// Literal constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// Numeric literal kept as source text (no float rounding surprises).
    Number(String),
    /// String literal (unescaped contents).
    String(String),
    /// `NULL`.
    Null,
    /// `TRUE` / `FALSE`.
    Boolean(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => write!(f, "{n}"),
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
            Literal::Boolean(true) => write!(f, "TRUE"),
            Literal::Boolean(false) => write!(f, "FALSE"),
        }
    }
}

/// Binary operators, ordered loosely by family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `OR`
    Or,
    /// `AND`
    And,
    /// `=`
    Eq,
    /// `!=` (also prints `<>` input this way)
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||` string concatenation
    Concat,
}

impl BinaryOp {
    /// Printing/parsing precedence; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            // NOT sits at 3 (handled by UnaryOp)
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Concat => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }

    /// The negated comparison, if this is a comparison: `= ↔ !=`, `< ↔ >=` …
    pub fn negated(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::NotEq,
            BinaryOp::NotEq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::GtEq,
            BinaryOp::GtEq => BinaryOp::Lt,
            BinaryOp::Gt => BinaryOp::LtEq,
            BinaryOp::LtEq => BinaryOp::Gt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical `NOT`
    Not,
    /// Arithmetic negation `-`
    Neg,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnaryOp::Not => write!(f, "NOT"),
            UnaryOp::Neg => write!(f, "-"),
        }
    }
}

/// Scalar / boolean expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Column reference, possibly qualified.
    Column(ObjectName),
    /// Literal constant.
    Literal(Literal),
    /// Bind parameter (`?`, `$n`, `:name` — all normalize to `?`).
    Param,
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (list…)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List members.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery.
        query: Box<SelectStatement>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern.
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// Function call, e.g. `upper(name)` or `count(*)`.
    Function {
        /// Function name (lowercased).
        name: String,
        /// Arguments; a lone `*` argument is represented as `Expr::Wildcard`.
        args: Vec<Expr>,
        /// `DISTINCT` inside an aggregate.
        distinct: bool,
    },
    /// `*` as a function argument (`count(*)`).
    Wildcard,
    /// `[NOT] EXISTS (SELECT …)`.
    Exists {
        /// The subquery.
        query: Box<SelectStatement>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
    /// Scalar subquery `(SELECT …)`.
    Subquery(Box<SelectStatement>),
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Simple-case operand (`CASE x WHEN 1 …`), if any.
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs, in order.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` result, if any.
        else_result: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience: column expression from a bare name.
    pub fn col(name: &str) -> Expr {
        Expr::Column(ObjectName::simple(name))
    }

    /// Convenience: `left op right`.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// Convenience: `AND` of two expressions.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    /// Convenience: `OR` of two expressions.
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Or, right)
    }

    /// Printing precedence of this node; higher binds tighter.
    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => op.precedence(),
            Expr::Unary { op: UnaryOp::Not, .. } => 3,
            Expr::Unary { op: UnaryOp::Neg, .. } => 7,
            // Postfix predicates sit between NOT and comparisons.
            Expr::IsNull { .. }
            | Expr::InList { .. }
            | Expr::InSubquery { .. }
            | Expr::Between { .. }
            | Expr::Like { .. } => 4,
            _ => u8::MAX,
        }
    }

    fn fmt_child(&self, child: &Expr, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        if child.precedence() < parent_prec {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Literal(lit) => write!(f, "{lit}"),
            Expr::Param => write!(f, "?"),
            Expr::Unary { op, expr } => {
                match op {
                    UnaryOp::Not => write!(f, "NOT ")?,
                    UnaryOp::Neg => write!(f, "-")?,
                }
                self.fmt_child(expr, f, self.precedence() + 1)
            }
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                self.fmt_child(left, f, prec)?;
                write!(f, " {op} ")?;
                // Right child needs parens at equal precedence to preserve
                // left associativity (e.g. a - (b - c)).
                self.fmt_child(right, f, prec + 1)
            }
            Expr::IsNull { expr, negated } => {
                self.fmt_child(expr, f, self.precedence() + 1)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                self.fmt_child(expr, f, self.precedence() + 1)?;
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery { expr, query, negated } => {
                self.fmt_child(expr, f, self.precedence() + 1)?;
                write!(f, " {}IN ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::Between { expr, low, high, negated } => {
                self.fmt_child(expr, f, self.precedence() + 1)?;
                write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
                self.fmt_child(low, f, self.precedence() + 1)?;
                write!(f, " AND ")?;
                self.fmt_child(high, f, self.precedence() + 1)
            }
            Expr::Like { expr, pattern, negated } => {
                self.fmt_child(expr, f, self.precedence() + 1)?;
                write!(f, " {}LIKE ", if *negated { "NOT " } else { "" })?;
                self.fmt_child(pattern, f, self.precedence() + 1)
            }
            Expr::Function { name, args, distinct } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
            Expr::Wildcard => write!(f, "*"),
            Expr::Exists { query, negated } => {
                write!(f, "{}EXISTS ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::Subquery(query) => write!(f, "({query})"),
            Expr::Case { operand, branches, else_result } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (when, then) in branches {
                    write!(f, " WHEN {when} THEN {then}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(ObjectName),
    /// Expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if present.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(name) => write!(f, "{name}.*"),
            SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

/// Join flavor. Only the kinds observed in the target logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    Left,
    /// `CROSS JOIN` (also comma-joins after parsing)
    Cross,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinKind::Inner => write!(f, "JOIN"),
            JoinKind::Left => write!(f, "LEFT JOIN"),
            JoinKind::Cross => write!(f, "CROSS JOIN"),
        }
    }
}

/// An entry in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TableRef {
    /// Plain table with optional alias.
    Table {
        /// Table name.
        name: ObjectName,
        /// Alias, if any.
        alias: Option<String>,
    },
    /// Derived table `(SELECT …) alias`.
    Subquery {
        /// The subquery.
        query: Box<SelectStatement>,
        /// Alias, if any.
        alias: Option<String>,
    },
    /// Explicit join.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// `ON` condition (`None` for CROSS JOIN).
        on: Option<Expr>,
    },
}

impl TableRef {
    /// Convenience: unaliased table.
    pub fn table(name: &str) -> TableRef {
        TableRef::Table { name: ObjectName::simple(name), alias: None }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => {
                write!(f, "({query})")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Join { left, right, kind, on } => {
                write!(f, "{left} {kind} {right}")?;
                if let Some(cond) = on {
                    write!(f, " ON {cond}")?;
                }
                Ok(())
            }
        }
    }
}

/// A single SELECT block (no set operators, ordering or limit).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM clause entries (comma list; joins nest inside [`TableRef`]).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub selection: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

/// Body of a select statement: a SELECT block or a UNION tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SetExpr {
    /// Plain SELECT block.
    Select(Box<Select>),
    /// `left UNION [ALL] right`.
    Union {
        /// Left branch.
        left: Box<SetExpr>,
        /// Right branch.
        right: Box<SetExpr>,
        /// `UNION ALL` (bag) vs `UNION` (set).
        all: bool,
    },
}

impl SetExpr {
    /// Iterate the SELECT blocks of this (possibly compound) body,
    /// left-to-right.
    pub fn selects(&self) -> Vec<&Select> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a SetExpr, out: &mut Vec<&'a Select>) {
            match e {
                SetExpr::Select(s) => out.push(s),
                SetExpr::Union { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::Union { left, right, all } => {
                write!(f, "{left} UNION {}{right}", if *all { "ALL " } else { "" })
            }
        }
    }
}

/// `LIMIT n [OFFSET m]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Limit {
    /// Row limit.
    pub limit: u64,
    /// Optional offset.
    pub offset: Option<u64>,
}

impl fmt::Display for Limit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LIMIT {}", self.limit)?;
        if let Some(off) = self.offset {
            write!(f, " OFFSET {off}")?;
        }
        Ok(())
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderByItem {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (`true`) or descending.
    pub asc: bool,
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.expr, if self.asc { "" } else { " DESC" })
    }
}

/// A complete (possibly compound) SELECT statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SelectStatement {
    /// The body (single block or UNION tree).
    pub body: SetExpr,
    /// ORDER BY keys.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT/OFFSET.
    pub limit: Option<Limit>,
}

impl SelectStatement {
    /// Wrap a single SELECT block into a statement.
    pub fn simple(select: Select) -> Self {
        SelectStatement {
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// The single SELECT block, if this statement is not compound.
    pub fn as_single(&self) -> Option<&Select> {
        match &self.body {
            SetExpr::Select(s) => Some(s),
            SetExpr::Union { .. } => None,
        }
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        if let Some(l) = &self.limit {
            write!(f, " {l}")?;
        }
        Ok(())
    }
}

/// A query in conjunctive form: the output of the regularizer, and the input
/// shape the Aligon feature scheme (paper §2.2) consumes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// Projected items (feature class ⟨column, SELECT⟩).
    pub select: Vec<SelectItem>,
    /// Tables / subquery sources (feature class ⟨table, FROM⟩).
    pub tables: Vec<String>,
    /// Conjunctive WHERE atoms (feature class ⟨atom, WHERE⟩), each printed
    /// in canonical form.
    pub conjuncts: Vec<Expr>,
    /// GROUP BY expressions (Makiyama-extension feature class).
    pub group_by: Vec<Expr>,
    /// ORDER BY items (Makiyama-extension feature class).
    pub order_by: Vec<OrderByItem>,
    /// LIMIT, if any (kept for rendering; not a feature).
    pub limit: Option<Limit>,
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.tables.is_empty() {
            write!(f, " FROM {}", self.tables.join(", "))?;
        }
        if !self.conjuncts.is_empty() {
            write!(f, " WHERE ")?;
            for (i, c) in self.conjuncts.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                // Parenthesize atoms containing OR so the printed form
                // re-parses as the same conjunction.
                if matches!(c, Expr::Binary { op: BinaryOp::Or, .. }) {
                    write!(f, "({c})")?;
                } else {
                    write!(f, "{c}")?;
                }
            }
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(l) = &self.limit {
            write!(f, " {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_name_display() {
        assert_eq!(ObjectName::simple("t").to_string(), "t");
        assert_eq!(ObjectName(vec!["s".into(), "t".into()]).to_string(), "s.t");
        assert_eq!(ObjectName(vec!["s".into(), "t".into()]).last(), "t");
    }

    #[test]
    fn literal_display_escapes_strings() {
        assert_eq!(Literal::String("it's".into()).to_string(), "'it''s'");
        assert_eq!(Literal::Number("3.5".into()).to_string(), "3.5");
        assert_eq!(Literal::Null.to_string(), "NULL");
        assert_eq!(Literal::Boolean(true).to_string(), "TRUE");
    }

    #[test]
    fn binary_precedence_parens() {
        // a OR b AND c — AND binds tighter, no parens needed.
        let e = Expr::or(Expr::col("a"), Expr::and(Expr::col("b"), Expr::col("c")));
        assert_eq!(e.to_string(), "a OR b AND c");
        // (a OR b) AND c — parens required.
        let e = Expr::and(Expr::or(Expr::col("a"), Expr::col("b")), Expr::col("c"));
        assert_eq!(e.to_string(), "(a OR b) AND c");
    }

    #[test]
    fn left_associativity_preserved() {
        // (a - b) - c prints without parens; a - (b - c) needs them.
        let l = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Minus, Expr::col("b")),
            BinaryOp::Minus,
            Expr::col("c"),
        );
        assert_eq!(l.to_string(), "a - b - c");
        let r = Expr::binary(
            Expr::col("a"),
            BinaryOp::Minus,
            Expr::binary(Expr::col("b"), BinaryOp::Minus, Expr::col("c")),
        );
        assert_eq!(r.to_string(), "a - (b - c)");
    }

    #[test]
    fn not_and_comparisons() {
        let e = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::binary(Expr::col("a"), BinaryOp::Eq, Expr::Param)),
        };
        assert_eq!(e.to_string(), "NOT a = ?");
        assert_eq!(BinaryOp::Eq.negated(), Some(BinaryOp::NotEq));
        assert_eq!(BinaryOp::Lt.negated(), Some(BinaryOp::GtEq));
        assert_eq!(BinaryOp::Plus.negated(), None);
    }

    #[test]
    fn predicates_display() {
        let isnull = Expr::IsNull { expr: Box::new(Expr::col("a")), negated: true };
        assert_eq!(isnull.to_string(), "a IS NOT NULL");
        let inlist = Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Expr::Param, Expr::Param],
            negated: false,
        };
        assert_eq!(inlist.to_string(), "a IN (?, ?)");
        let between = Expr::Between {
            expr: Box::new(Expr::col("a")),
            low: Box::new(Expr::Param),
            high: Box::new(Expr::Param),
            negated: false,
        };
        assert_eq!(between.to_string(), "a BETWEEN ? AND ?");
        let like = Expr::Like {
            expr: Box::new(Expr::col("name")),
            pattern: Box::new(Expr::Literal(Literal::String("%x%".into()))),
            negated: true,
        };
        assert_eq!(like.to_string(), "name NOT LIKE '%x%'");
    }

    #[test]
    fn function_display() {
        let f =
            Expr::Function { name: "upper".into(), args: vec![Expr::col("name")], distinct: false };
        assert_eq!(f.to_string(), "upper(name)");
        let c =
            Expr::Function { name: "count".into(), args: vec![Expr::Wildcard], distinct: false };
        assert_eq!(c.to_string(), "count(*)");
        let d = Expr::Function { name: "count".into(), args: vec![Expr::col("x")], distinct: true };
        assert_eq!(d.to_string(), "count(DISTINCT x)");
    }

    #[test]
    fn select_display_full_clause_order() {
        let stmt = SelectStatement {
            body: SetExpr::Select(Box::new(Select {
                distinct: false,
                items: vec![
                    SelectItem::Expr { expr: Expr::col("a"), alias: None },
                    SelectItem::Expr { expr: Expr::col("b"), alias: Some("bb".into()) },
                ],
                from: vec![TableRef::table("t")],
                selection: Some(Expr::binary(Expr::col("a"), BinaryOp::Eq, Expr::Param)),
                group_by: vec![Expr::col("a")],
                having: None,
            })),
            order_by: vec![OrderByItem { expr: Expr::col("b"), asc: false }],
            limit: Some(Limit { limit: 10, offset: Some(5) }),
        };
        assert_eq!(
            stmt.to_string(),
            "SELECT a, b AS bb FROM t WHERE a = ? GROUP BY a ORDER BY b DESC LIMIT 10 OFFSET 5"
        );
    }

    #[test]
    fn union_display_and_selects_iter() {
        let s1 = Select {
            distinct: false,
            items: vec![SelectItem::Expr { expr: Expr::col("a"), alias: None }],
            from: vec![TableRef::table("t")],
            selection: None,
            group_by: vec![],
            having: None,
        };
        let mut s2 = s1.clone();
        s2.items = vec![SelectItem::Expr { expr: Expr::col("b"), alias: None }];
        let stmt = SelectStatement {
            body: SetExpr::Union {
                left: Box::new(SetExpr::Select(Box::new(s1))),
                right: Box::new(SetExpr::Select(Box::new(s2))),
                all: true,
            },
            order_by: vec![],
            limit: None,
        };
        assert_eq!(stmt.to_string(), "SELECT a FROM t UNION ALL SELECT b FROM t");
        assert_eq!(stmt.body.selects().len(), 2);
        assert!(stmt.as_single().is_none());
    }

    #[test]
    fn join_display() {
        let j = TableRef::Join {
            left: Box::new(TableRef::table("a")),
            right: Box::new(TableRef::table("b")),
            kind: JoinKind::Left,
            on: Some(Expr::binary(
                Expr::Column(ObjectName(vec!["a".into(), "id".into()])),
                BinaryOp::Eq,
                Expr::Column(ObjectName(vec!["b".into(), "id".into()])),
            )),
        };
        assert_eq!(j.to_string(), "a LEFT JOIN b ON a.id = b.id");
    }

    #[test]
    fn conjunctive_query_display() {
        let cq = ConjunctiveQuery {
            select: vec![SelectItem::Expr { expr: Expr::col("id"), alias: None }],
            tables: vec!["Messages".into()],
            conjuncts: vec![
                Expr::binary(Expr::col("status"), BinaryOp::Eq, Expr::Param),
                Expr::binary(Expr::col("sms_type"), BinaryOp::Eq, Expr::Param),
            ],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        };
        assert_eq!(cq.to_string(), "SELECT id FROM Messages WHERE status = ? AND sms_type = ?");
    }
}
