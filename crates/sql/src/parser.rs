//! Recursive-descent parser for the LogR SELECT dialect.
//!
//! The grammar intentionally covers the query shapes observed in the paper's
//! logs (conjunctive SELECTs, joins, IN/BETWEEN/LIKE/IS NULL predicates,
//! subqueries, GROUP BY / ORDER BY / LIMIT, UNION). Anything outside the
//! dialect produces a [`ParseError`]; log ingestion counts these, mirroring
//! the unparseable-statement row in the paper's Table 1.

use crate::ast::*;
use crate::lexer::{LexError, Lexer, Token, TokenKind};
use std::fmt;

/// Parse failure, with a byte offset into the source where known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// The token stream did not match the grammar.
    Unexpected {
        /// What the parser was looking for.
        expected: String,
        /// What it found instead.
        found: String,
        /// Byte offset of the offending token.
        offset: usize,
    },
    /// Recognized but unsupported construct (e.g. CASE expressions,
    /// non-SELECT statements).
    Unsupported {
        /// The construct name.
        construct: String,
        /// Byte offset.
        offset: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { expected, found, offset } => {
                write!(f, "parse error at byte {offset}: expected {expected}, found {found}")
            }
            ParseError::Unsupported { construct, offset } => {
                write!(f, "unsupported construct at byte {offset}: {construct}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Keywords that terminate expressions / cannot be bare aliases.
const RESERVED: &[&str] = &[
    "select", "distinct", "from", "where", "group", "by", "having", "order", "limit", "offset",
    "union", "all", "and", "or", "not", "in", "between", "like", "is", "null", "exists", "as",
    "join", "inner", "left", "right", "outer", "cross", "on", "asc", "desc", "case", "when",
    "then", "else", "end", "insert", "update", "delete", "set", "values",
];

/// Parse a single (possibly compound) SELECT statement from SQL text.
///
/// A trailing semicolon is tolerated; trailing garbage is an error.
pub fn parse_select(sql: &str) -> Result<SelectStatement, ParseError> {
    let mut parser = Parser::new(sql)?;
    let stmt = parser.parse_statement()?;
    parser.expect_eof()?;
    Ok(stmt)
}

/// Maximum expression/subquery nesting depth before the parser refuses —
/// guards the recursive descent against stack exhaustion on adversarial
/// inputs (logs are untrusted).
pub const MAX_NESTING_DEPTH: usize = 40;

/// Token-stream parser. Use [`parse_select`] unless you need incremental
/// control.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    /// Tokenize `sql` and position at the first token.
    pub fn new(sql: &str) -> Result<Self, ParseError> {
        Ok(Parser { tokens: Lexer::tokenize(sql)?, pos: 0, depth: 0 })
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(ParseError::Unsupported {
                construct: format!("nesting deeper than {MAX_NESTING_DEPTH}"),
                offset: self.peek().offset,
            });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek().is_sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {}", kw.to_uppercase())))
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{s}'")))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        let tok = self.peek();
        ParseError::Unexpected {
            expected: expected.to_string(),
            found: if tok.kind == TokenKind::Eof {
                "<eof>".to_string()
            } else {
                format!("'{}'", tok.text)
            },
            offset: tok.offset,
        }
    }

    /// Error unless the remaining input is only an optional `;` then EOF.
    pub fn expect_eof(&mut self) -> Result<(), ParseError> {
        self.eat_sym(";");
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.unexpected("end of statement"))
        }
    }

    /// Parse a complete SELECT statement (body + ORDER BY + LIMIT).
    pub fn parse_statement(&mut self) -> Result<SelectStatement, ParseError> {
        for kw in ["insert", "update", "delete", "create", "drop", "exec", "call", "pragma"] {
            if self.peek().is_kw(kw) {
                return Err(ParseError::Unsupported {
                    construct: format!("{} statement", kw.to_uppercase()),
                    offset: self.peek().offset,
                });
            }
        }
        let body = self.parse_set_expr()?;
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            self.parse_order_by_list()?
        } else {
            Vec::new()
        };
        let limit = self.parse_limit()?;
        Ok(SelectStatement { body, order_by, limit })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr, ParseError> {
        let mut left = SetExpr::Select(Box::new(self.parse_select_block()?));
        while self.eat_kw("union") {
            let all = self.eat_kw("all");
            let right = SetExpr::Select(Box::new(self.parse_select_block()?));
            left = SetExpr::Union { left: Box::new(left), right: Box::new(right), all };
        }
        Ok(left)
    }

    fn parse_select_block(&mut self) -> Result<Select, ParseError> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        if self.eat_kw("all") {
            // SELECT ALL is a no-op.
        }
        let mut items = vec![self.parse_select_item()?];
        while self.eat_sym(",") {
            items.push(self.parse_select_item()?);
        }
        let from = if self.eat_kw("from") {
            let mut refs = vec![self.parse_table_ref()?];
            while self.eat_sym(",") {
                refs.push(self.parse_table_ref()?);
            }
            refs
        } else {
            Vec::new()
        };
        let selection = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            let mut gs = vec![self.parse_expr()?];
            while self.eat_sym(",") {
                gs.push(self.parse_expr()?);
            }
            gs
        } else {
            Vec::new()
        };
        let having = if self.eat_kw("having") { Some(self.parse_expr()?) } else { None };
        Ok(Select { distinct, items, from, selection, group_by, having })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Wildcard);
        }
        // table.* — look ahead for word(.word)*.*
        if self.peek().kind == TokenKind::Word || self.peek().kind == TokenKind::QuotedIdent {
            let save = self.pos;
            if let Ok(name) = self.parse_object_name() {
                if self.eat_sym(".") {
                    if self.eat_sym("*") {
                        return Ok(SelectItem::QualifiedWildcard(name));
                    }
                    self.pos = save;
                } else {
                    self.pos = save;
                }
            } else {
                self.pos = save;
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw("as") {
            let t = self.bump();
            if t.kind == TokenKind::Word || t.kind == TokenKind::QuotedIdent {
                return Ok(Some(t.text));
            }
            return Err(self.unexpected("alias name"));
        }
        // Bare alias: a non-reserved word.
        if self.peek().kind == TokenKind::Word
            && !RESERVED.contains(&self.peek().normalized.as_str())
        {
            return Ok(Some(self.bump().text));
        }
        Ok(None)
    }

    fn parse_object_name(&mut self) -> Result<ObjectName, ParseError> {
        let mut parts = Vec::new();
        loop {
            let t = self.peek().clone();
            match t.kind {
                TokenKind::Word | TokenKind::QuotedIdent => {
                    self.bump();
                    parts.push(t.text);
                }
                _ => return Err(self.unexpected("identifier")),
            }
            // Continue on '.' followed by another identifier (not `.*`).
            if self.peek().is_sym(".")
                && matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::Word) | Some(TokenKind::QuotedIdent)
                )
            {
                self.bump();
                continue;
            }
            return Ok(ObjectName(parts));
        }
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.eat_kw("cross") {
                self.expect_kw("join")?;
                JoinKind::Cross
            } else if self.eat_kw("left") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.eat_kw("inner") {
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.eat_kw("join") {
                JoinKind::Inner
            } else {
                return Ok(left);
            };
            let right = self.parse_table_primary()?;
            let on = if self.eat_kw("on") { Some(self.parse_expr()?) } else { None };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
    }

    fn parse_table_primary(&mut self) -> Result<TableRef, ParseError> {
        if self.eat_sym("(") {
            if self.peek().is_kw("select") {
                let query = self.parse_statement()?;
                self.expect_sym(")")?;
                let alias = self.parse_alias()?;
                return Ok(TableRef::Subquery { query: Box::new(query), alias });
            }
            // Parenthesized table reference.
            let inner = self.parse_table_ref()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        let name = self.parse_object_name()?;
        let alias = self.parse_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    fn parse_order_by_list(&mut self) -> Result<Vec<OrderByItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let asc = if self.eat_kw("desc") {
                false
            } else {
                self.eat_kw("asc");
                true
            };
            items.push(OrderByItem { expr, asc });
            if !self.eat_sym(",") {
                return Ok(items);
            }
        }
    }

    fn parse_limit(&mut self) -> Result<Option<Limit>, ParseError> {
        if !self.eat_kw("limit") {
            return Ok(None);
        }
        let n = self.parse_u64()?;
        // MySQL `LIMIT offset, count` or standard `LIMIT count OFFSET n`.
        if self.eat_sym(",") {
            let count = self.parse_u64()?;
            return Ok(Some(Limit { limit: count, offset: Some(n) }));
        }
        let offset = if self.eat_kw("offset") { Some(self.parse_u64()?) } else { None };
        Ok(Some(Limit { limit: n, offset }))
    }

    fn parse_u64(&mut self) -> Result<u64, ParseError> {
        let t = self.peek().clone();
        if t.kind == TokenKind::Number {
            if let Ok(v) = t.text.parse::<u64>() {
                self.bump();
                return Ok(v);
            }
        }
        Err(self.unexpected("integer"))
    }

    /// Parse an expression (entry point: lowest precedence).
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.parse_or();
        self.leave();
        result
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_additive()?;
        loop {
            let op = if self.eat_sym("=") {
                Some(BinaryOp::Eq)
            } else if self.eat_sym("!=") || self.eat_sym("<>") {
                Some(BinaryOp::NotEq)
            } else if self.eat_sym("<=") {
                Some(BinaryOp::LtEq)
            } else if self.eat_sym(">=") {
                Some(BinaryOp::GtEq)
            } else if self.eat_sym("<") {
                Some(BinaryOp::Lt)
            } else if self.eat_sym(">") {
                Some(BinaryOp::Gt)
            } else {
                None
            };
            if let Some(op) = op {
                let right = self.parse_additive()?;
                left = Expr::binary(left, op, right);
                continue;
            }
            // Postfix predicates: IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE.
            if self.eat_kw("is") {
                let negated = self.eat_kw("not");
                self.expect_kw("null")?;
                left = Expr::IsNull { expr: Box::new(left), negated };
                continue;
            }
            let negated = if self.peek().is_kw("not")
                && matches!(
                    self.tokens.get(self.pos + 1),
                    Some(t) if t.is_kw("in") || t.is_kw("between") || t.is_kw("like")
                ) {
                self.bump();
                true
            } else {
                false
            };
            if self.eat_kw("in") {
                self.expect_sym("(")?;
                if self.peek().is_kw("select") {
                    let query = self.parse_statement()?;
                    self.expect_sym(")")?;
                    left =
                        Expr::InSubquery { expr: Box::new(left), query: Box::new(query), negated };
                } else {
                    let mut list = vec![self.parse_expr()?];
                    while self.eat_sym(",") {
                        list.push(self.parse_expr()?);
                    }
                    self.expect_sym(")")?;
                    left = Expr::InList { expr: Box::new(left), list, negated };
                }
                continue;
            }
            if self.eat_kw("between") {
                let low = self.parse_additive()?;
                self.expect_kw("and")?;
                let high = self.parse_additive()?;
                left = Expr::Between {
                    expr: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                };
                continue;
            }
            if self.eat_kw("like") {
                let pattern = self.parse_additive()?;
                left = Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated };
                continue;
            }
            if negated {
                return Err(self.unexpected("IN, BETWEEN or LIKE after NOT"));
            }
            return Ok(left);
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_sym("+") {
                BinaryOp::Plus
            } else if self.eat_sym("-") {
                BinaryOp::Minus
            } else if self.eat_sym("||") {
                BinaryOp::Concat
            } else {
                return Ok(left);
            };
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.eat_sym("*") {
                BinaryOp::Mul
            } else if self.eat_sym("/") {
                BinaryOp::Div
            } else if self.eat_sym("%") {
                BinaryOp::Mod
            } else {
                return Ok(left);
            };
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("-") {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        if self.eat_sym("+") {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Number => {
                self.bump();
                Ok(Expr::Literal(Literal::Number(tok.text)))
            }
            TokenKind::String => {
                self.bump();
                Ok(Expr::Literal(Literal::String(tok.text)))
            }
            TokenKind::Param => {
                self.bump();
                Ok(Expr::Param)
            }
            TokenKind::Symbol if tok.text == "(" => {
                self.bump();
                if self.peek().is_kw("select") {
                    let query = self.parse_statement()?;
                    self.expect_sym(")")?;
                    return Ok(Expr::Subquery(Box::new(query)));
                }
                let inner = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(inner)
            }
            TokenKind::Word | TokenKind::QuotedIdent => {
                match tok.normalized.as_str() {
                    "null" => {
                        self.bump();
                        return Ok(Expr::Literal(Literal::Null));
                    }
                    "true" => {
                        self.bump();
                        return Ok(Expr::Literal(Literal::Boolean(true)));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::Literal(Literal::Boolean(false)));
                    }
                    "case" => {
                        self.bump();
                        let operand = if self.peek().is_kw("when") {
                            None
                        } else {
                            Some(Box::new(self.parse_expr()?))
                        };
                        let mut branches = Vec::new();
                        while self.eat_kw("when") {
                            let when = self.parse_expr()?;
                            self.expect_kw("then")?;
                            let then = self.parse_expr()?;
                            branches.push((when, then));
                        }
                        if branches.is_empty() {
                            return Err(self.unexpected("WHEN branch in CASE"));
                        }
                        let else_result = if self.eat_kw("else") {
                            Some(Box::new(self.parse_expr()?))
                        } else {
                            None
                        };
                        self.expect_kw("end")?;
                        return Ok(Expr::Case { operand, branches, else_result });
                    }
                    "exists" => {
                        self.bump();
                        self.expect_sym("(")?;
                        let query = self.parse_statement()?;
                        self.expect_sym(")")?;
                        return Ok(Expr::Exists { query: Box::new(query), negated: false });
                    }
                    "not" if self.tokens.get(self.pos + 1).is_some_and(|t| t.is_kw("exists")) => {
                        self.bump();
                        self.bump();
                        self.expect_sym("(")?;
                        let query = self.parse_statement()?;
                        self.expect_sym(")")?;
                        return Ok(Expr::Exists { query: Box::new(query), negated: true });
                    }
                    _ => {}
                }
                // Function call?
                if tok.kind == TokenKind::Word
                    && self.tokens.get(self.pos + 1).is_some_and(|t| t.is_sym("("))
                    && !RESERVED.contains(&tok.normalized.as_str())
                {
                    self.bump(); // name
                    self.bump(); // '('
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            if self.eat_sym("*") {
                                args.push(Expr::Wildcard);
                            } else {
                                args.push(self.parse_expr()?);
                            }
                            if self.eat_sym(")") {
                                break;
                            }
                            self.expect_sym(",")?;
                        }
                    }
                    return Ok(Expr::Function { name: tok.normalized, args, distinct });
                }
                let name = self.parse_object_name()?;
                Ok(Expr::Column(name))
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(sql: &str) -> String {
        parse_select(sql).unwrap().to_string()
    }

    #[test]
    fn simple_select() {
        assert_eq!(rt("select a from t"), "SELECT a FROM t");
    }

    #[test]
    fn paper_example_query() {
        let sql =
            "SELECT _id , sms_type , _time FROM Messages WHERE status =? AND transport_type =?";
        assert_eq!(
            rt(sql),
            "SELECT _id, sms_type, _time FROM Messages WHERE status = ? AND transport_type = ?"
        );
    }

    #[test]
    fn distinct_and_aliases() {
        assert_eq!(
            rt("select distinct a as x, b y from t"),
            "SELECT DISTINCT a AS x, b AS y FROM t"
        );
    }

    #[test]
    fn wildcards() {
        assert_eq!(rt("select * from t"), "SELECT * FROM t");
        assert_eq!(rt("select t.* from t"), "SELECT t.* FROM t");
    }

    #[test]
    fn qualified_columns() {
        assert_eq!(rt("select a.b, c.d.e from s.t"), "SELECT a.b, c.d.e FROM s.t");
    }

    #[test]
    fn where_precedence() {
        assert_eq!(
            rt("select a from t where x = 1 or y = 2 and z = 3"),
            "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3"
        );
        assert_eq!(
            rt("select a from t where (x = 1 or y = 2) and z = 3"),
            "SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3"
        );
    }

    #[test]
    fn not_handling() {
        assert_eq!(rt("select a from t where not x = ?"), "SELECT a FROM t WHERE NOT x = ?");
        assert_eq!(
            rt("select a from t where not (x = ? and y = ?)"),
            "SELECT a FROM t WHERE NOT (x = ? AND y = ?)"
        );
    }

    #[test]
    fn predicates() {
        assert_eq!(rt("select a from t where b is null"), "SELECT a FROM t WHERE b IS NULL");
        assert_eq!(
            rt("select a from t where b is not null"),
            "SELECT a FROM t WHERE b IS NOT NULL"
        );
        assert_eq!(rt("select a from t where b in (1, 2)"), "SELECT a FROM t WHERE b IN (1, 2)");
        assert_eq!(
            rt("select a from t where b not in (?, ?)"),
            "SELECT a FROM t WHERE b NOT IN (?, ?)"
        );
        assert_eq!(
            rt("select a from t where b between 1 and 5"),
            "SELECT a FROM t WHERE b BETWEEN 1 AND 5"
        );
        assert_eq!(
            rt("select a from t where b not between ? and ?"),
            "SELECT a FROM t WHERE b NOT BETWEEN ? AND ?"
        );
        assert_eq!(rt("select a from t where b like '%x%'"), "SELECT a FROM t WHERE b LIKE '%x%'");
    }

    #[test]
    fn between_and_does_not_swallow_conjunction() {
        assert_eq!(
            rt("select a from t where b between 1 and 5 and c = ?"),
            "SELECT a FROM t WHERE b BETWEEN 1 AND 5 AND c = ?"
        );
    }

    #[test]
    fn arithmetic_and_concat() {
        assert_eq!(rt("select a + b * c - d from t"), "SELECT a + b * c - d FROM t");
        assert_eq!(rt("select a || b from t"), "SELECT a || b FROM t");
        assert_eq!(rt("select -a from t"), "SELECT -a FROM t");
        assert_eq!(rt("select (a + b) * c from t"), "SELECT (a + b) * c FROM t");
    }

    #[test]
    fn functions() {
        assert_eq!(rt("select count(*) from t"), "SELECT count(*) FROM t");
        assert_eq!(rt("select UPPER(name) from t"), "SELECT upper(name) FROM t");
        assert_eq!(rt("select count(distinct a) from t"), "SELECT count(DISTINCT a) FROM t");
        assert_eq!(rt("select max(a, b) from t"), "SELECT max(a, b) FROM t");
    }

    #[test]
    fn group_by_having() {
        assert_eq!(
            rt("select a, count(*) from t group by a having count(*) > 5"),
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 5"
        );
    }

    #[test]
    fn order_by_limit_offset() {
        assert_eq!(
            rt("select a from t order by a desc, b asc limit 10 offset 5"),
            "SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5"
        );
        // MySQL comma form.
        assert_eq!(rt("select a from t limit 5, 10"), "SELECT a FROM t LIMIT 10 OFFSET 5");
        assert_eq!(
            rt("select a from t order by upper(name) limit 10"),
            "SELECT a FROM t ORDER BY upper(name) LIMIT 10"
        );
    }

    #[test]
    fn joins() {
        assert_eq!(
            rt("select a from t join u on t.id = u.id"),
            "SELECT a FROM t JOIN u ON t.id = u.id"
        );
        assert_eq!(
            rt("select a from t left outer join u on t.id = u.id"),
            "SELECT a FROM t LEFT JOIN u ON t.id = u.id"
        );
        assert_eq!(rt("select a from t cross join u"), "SELECT a FROM t CROSS JOIN u");
        assert_eq!(
            rt("select a from t, u where t.id = u.id"),
            "SELECT a FROM t, u WHERE t.id = u.id"
        );
    }

    #[test]
    fn subqueries() {
        assert_eq!(rt("select a from (select b from u) v"), "SELECT a FROM (SELECT b FROM u) AS v");
        assert_eq!(
            rt("select a from t where b in (select c from u)"),
            "SELECT a FROM t WHERE b IN (SELECT c FROM u)"
        );
        assert_eq!(
            rt("select a from t where exists (select 1 from u)"),
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)"
        );
        assert_eq!(
            rt("select a from t where not exists (select 1 from u)"),
            "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)"
        );
        assert_eq!(
            rt("select (select max(b) from u) from t"),
            "SELECT (SELECT max(b) FROM u) FROM t"
        );
    }

    #[test]
    fn union_statements() {
        assert_eq!(
            rt("select a from t union select b from u"),
            "SELECT a FROM t UNION SELECT b FROM u"
        );
        assert_eq!(
            rt("select a from t union all select b from u order by 1"),
            "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1"
        );
    }

    #[test]
    fn trailing_semicolon_ok_garbage_not() {
        assert!(parse_select("select a from t;").is_ok());
        assert!(parse_select("select a from t garbage garbage").is_err());
    }

    #[test]
    fn non_select_statements_are_unsupported() {
        for sql in [
            "INSERT INTO t VALUES (1)",
            "UPDATE t SET a = 1",
            "DELETE FROM t",
            "EXEC some_procedure",
        ] {
            match parse_select(sql) {
                Err(ParseError::Unsupported { .. }) => {}
                other => panic!("expected Unsupported for {sql}, got {other:?}"),
            }
        }
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            rt("select case when a then 1 else 2 end from t"),
            "SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t"
        );
        // Simple (operand) form, multiple branches, no ELSE.
        assert_eq!(
            rt("select case x when 1 then 'a' when 2 then 'b' end from t"),
            "SELECT CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END FROM t"
        );
        // CASE inside WHERE and nested in comparisons.
        assert_eq!(
            rt("select a from t where case when b then 1 else 0 end = ?"),
            "SELECT a FROM t WHERE CASE WHEN b THEN 1 ELSE 0 END = ?"
        );
        // Missing WHEN is an error.
        assert!(parse_select("select case else 1 end from t").is_err());
        // Missing END is an error.
        assert!(parse_select("select case when a then 1 from t").is_err());
    }

    #[test]
    fn pathological_nesting_rejected_not_crashed() {
        // 10k nested parens must produce an error, not a stack overflow.
        let sql =
            format!("select a from t where {}x = 1{}", "(".repeat(10_000), ")".repeat(10_000));
        assert!(matches!(parse_select(&sql), Err(ParseError::Unsupported { .. })));
        // Moderate nesting still parses.
        let ok = format!("select a from t where {}x = 1{}", "(".repeat(24), ")".repeat(24));
        assert!(parse_select(&ok).is_ok());
    }

    #[test]
    fn error_reports_offset() {
        match parse_select("select a from") {
            Err(ParseError::Unexpected { offset, .. }) => assert_eq!(offset, 13),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reparse_printed_output_is_fixpoint() {
        let samples = [
            "SELECT a, b AS x FROM t JOIN u ON t.id = u.id WHERE a = ? AND b IN (?, ?) OR c IS NULL GROUP BY a ORDER BY b DESC LIMIT 5",
            "SELECT count(*) FROM t WHERE x BETWEEN ? AND ? AND y NOT LIKE '%z%'",
            "SELECT * FROM (SELECT a FROM u) AS v WHERE EXISTS (SELECT 1 FROM w)",
            "SELECT a FROM t UNION ALL SELECT b FROM u",
        ];
        for sql in samples {
            let once = rt(sql);
            let twice = rt(&once);
            assert_eq!(once, twice, "printer/parse not a fixpoint for {sql}");
        }
    }

    #[test]
    fn params_normalize_to_question_mark() {
        assert_eq!(
            rt("select a from t where b = $1 and c = :name"),
            "SELECT a FROM t WHERE b = ? AND c = ?"
        );
    }
}
