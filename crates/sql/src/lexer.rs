//! Tokenizer for the LogR SQL dialect.
//!
//! Handles the lexical shapes that show up in the paper's two logs:
//! unquoted/quoted identifiers, string and numeric literals, JDBC-style `?`
//! parameters (PocketData uses these exclusively), named `:param` and
//! positional `$n` parameters, line (`--`) and block (`/* */`) comments.

use std::fmt;

/// Lexical category of a [`Token`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Keyword or bare identifier; keywords are recognized by the parser so
    /// identifiers that happen to match keywords in non-keyword positions
    /// still lex uniformly. Stored lowercased in `normalized`.
    Word,
    /// Quoted identifier: `"name"`, `` `name` `` or `[name]`.
    QuotedIdent,
    /// Numeric literal (integer or decimal, optional exponent).
    Number,
    /// String literal (single quotes, `''` escape).
    String,
    /// Positional or named parameter: `?`, `$1`, `:name`.
    Param,
    /// Operator or punctuation: `=`, `<>`, `<=`, `(`, `,`, `.`, …
    Symbol,
    /// End of input sentinel.
    Eof,
}

/// A lexed token with its original and normalized spellings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical category.
    pub kind: TokenKind,
    /// Exact source text (without enclosing quotes for strings/idents).
    pub text: String,
    /// Lowercased form for case-insensitive keyword matching.
    pub normalized: String,
    /// Byte offset of the token start in the source, for error reporting.
    pub offset: usize,
}

impl Token {
    fn new(kind: TokenKind, text: &str, offset: usize) -> Self {
        Token { kind, normalized: text.to_ascii_lowercase(), text: text.to_string(), offset }
    }

    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        self.kind == TokenKind::Word && self.normalized == kw
    }

    /// True if this token is the given symbol.
    pub fn is_sym(&self, s: &str) -> bool {
        self.kind == TokenKind::Symbol && self.text == s
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TokenKind::Eof => write!(f, "<eof>"),
            _ => write!(f, "{}", self.text),
        }
    }
}

/// Error produced when the input contains an unlexable construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming tokenizer over a SQL string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    /// Lex the whole input into a token vector terminated by an `Eof` token.
    pub fn tokenize(src: &'a str) -> Result<Vec<Token>, LexError> {
        let mut lexer = Lexer::new(src);
        let mut out = Vec::with_capacity(src.len() / 4 + 4);
        loop {
            let tok = lexer.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    offset: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(c) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, "", start));
        };

        match c {
            b'\'' => self.lex_string(start),
            b'"' => self.lex_quoted_ident(start, b'"'),
            b'`' => self.lex_quoted_ident(start, b'`'),
            b'[' if looks_like_bracket_ident(&self.src[self.pos..]) => {
                self.lex_quoted_ident(start, b']')
            }
            b'?' => {
                self.pos += 1;
                Ok(Token::new(TokenKind::Param, "?", start))
            }
            b'$' => {
                self.pos += 1;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
                Ok(Token::new(TokenKind::Param, self.slice(start), start))
            }
            b':' if self.peek2().is_some_and(|c| c.is_ascii_alphabetic() || c == b'_') => {
                self.pos += 1;
                while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                    self.pos += 1;
                }
                Ok(Token::new(TokenKind::Param, self.slice(start), start))
            }
            c if c.is_ascii_digit() => self.lex_number(start),
            b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => self.lex_number(start),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                    self.pos += 1;
                }
                Ok(Token::new(TokenKind::Word, self.slice(start), start))
            }
            _ => self.lex_symbol(start),
        }
    }

    fn slice(&self, start: usize) -> &str {
        std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("")
    }

    fn lex_string(&mut self, start: usize) -> Result<Token, LexError> {
        self.pos += 1; // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        text.push('\'');
                        self.pos += 1;
                    } else {
                        return Ok(Token::new(TokenKind::String, &text, start));
                    }
                }
                Some(c) => text.push(c as char),
                None => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset: start,
                    })
                }
            }
        }
    }

    fn lex_quoted_ident(&mut self, start: usize, close: u8) -> Result<Token, LexError> {
        self.pos += 1; // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(c) if c == close => {
                    let mut tok = Token::new(TokenKind::QuotedIdent, &text, start);
                    // Quoted identifiers are case-sensitive; keep `normalized`
                    // equal to the literal spelling.
                    tok.normalized = tok.text.clone();
                    return Ok(tok);
                }
                Some(c) => text.push(c as char),
                None => {
                    return Err(LexError {
                        message: "unterminated quoted identifier".into(),
                        offset: start,
                    })
                }
            }
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<Token, LexError> {
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if self.peek().is_some_and(|c| c == b'e' || c == b'E') {
            let save = self.pos;
            self.pos += 1;
            if self.peek().is_some_and(|c| c == b'+' || c == b'-') {
                self.pos += 1;
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = save; // not an exponent after all
            }
        }
        Ok(Token::new(TokenKind::Number, self.slice(start), start))
    }

    fn lex_symbol(&mut self, start: usize) -> Result<Token, LexError> {
        // Two-character operators first.
        let two: Option<&str> = match (self.peek(), self.peek2()) {
            (Some(b'<'), Some(b'=')) => Some("<="),
            (Some(b'>'), Some(b'=')) => Some(">="),
            (Some(b'<'), Some(b'>')) => Some("<>"),
            (Some(b'!'), Some(b'=')) => Some("!="),
            (Some(b'|'), Some(b'|')) => Some("||"),
            _ => None,
        };
        if let Some(op) = two {
            self.pos += 2;
            return Ok(Token::new(TokenKind::Symbol, op, start));
        }
        let c = self.bump().expect("symbol start");
        let s = match c {
            b'(' | b')' | b',' | b'.' | b';' | b'=' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/'
            | b'%' | b'[' | b']' => (c as char).to_string(),
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{}'", other as char),
                    offset: start,
                })
            }
        };
        Ok(Token::new(TokenKind::Symbol, &s, start))
    }
}

/// Heuristic: `[` starts a bracketed identifier only if a matching `]`
/// appears before any character that could not be part of an identifier.
fn looks_like_bracket_ident(rest: &[u8]) -> bool {
    for &c in rest.iter().skip(1).take(128) {
        if c == b']' {
            return true;
        }
        if !(c.is_ascii_alphanumeric() || c == b'_' || c == b' ') {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    fn texts(sql: &str) -> Vec<String> {
        Lexer::tokenize(sql)
            .unwrap()
            .into_iter()
            .filter(|t| t.kind != TokenKind::Eof)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_select_tokens() {
        let toks = texts("SELECT _id FROM Messages WHERE status = ?");
        assert_eq!(toks, vec!["SELECT", "_id", "FROM", "Messages", "WHERE", "status", "=", "?"]);
    }

    #[test]
    fn keywords_are_case_insensitive_via_normalized() {
        let toks = Lexer::tokenize("select SeLeCt").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks[1].is_kw("select"));
    }

    #[test]
    fn numbers_ints_decimals_exponents() {
        assert_eq!(kinds("42"), vec![TokenKind::Number, TokenKind::Eof]);
        assert_eq!(texts("3.14 1e5 2.5E-3 .5"), vec!["3.14", "1e5", "2.5E-3", ".5"]);
        // 'e' not followed by digits is not an exponent.
        assert_eq!(texts("1efoo"), vec!["1", "efoo"]);
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = Lexer::tokenize("'it''s'").unwrap();
        assert_eq!(toks[0].kind, TokenKind::String);
        assert_eq!(toks[0].text, "it's");
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::tokenize("'oops").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let toks = Lexer::tokenize("\"My Table\" `col` [weird name]").unwrap();
        assert_eq!(toks[0].kind, TokenKind::QuotedIdent);
        assert_eq!(toks[0].text, "My Table");
        assert_eq!(toks[1].text, "col");
        assert_eq!(toks[2].text, "weird name");
    }

    #[test]
    fn quoted_ident_preserves_case() {
        let toks = Lexer::tokenize("\"CamelCase\"").unwrap();
        assert_eq!(toks[0].normalized, "CamelCase");
    }

    #[test]
    fn parameters_all_styles() {
        let toks = Lexer::tokenize("? $1 :name").unwrap();
        assert!(toks[..3].iter().all(|t| t.kind == TokenKind::Param));
        assert_eq!(toks[1].text, "$1");
        assert_eq!(toks[2].text, ":name");
    }

    #[test]
    fn comments_are_skipped() {
        let toks = texts("SELECT -- inline\n a /* block\n comment */ FROM t");
        assert_eq!(toks, vec!["SELECT", "a", "FROM", "t"]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(Lexer::tokenize("SELECT /* oops").is_err());
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            texts("a <= b >= c <> d != e || f"),
            vec!["a", "<=", "b", ">=", "c", "<>", "d", "!=", "e", "||", "f"]
        );
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = Lexer::tokenize("SELECT a").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }

    #[test]
    fn unexpected_character_errors() {
        let err = Lexer::tokenize("SELECT ^").unwrap_err();
        assert!(err.message.contains('^'));
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn eof_token_terminates() {
        let toks = Lexer::tokenize("").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Eof);
    }
}
