//! SQL substrate for LogR.
//!
//! Production query logs arrive as SQL text; everything downstream
//! (feature extraction, encoding, clustering) operates on structured
//! queries. This crate provides the pipeline front end:
//!
//! * [`lexer`] — tokenizer for the SELECT dialect that the paper's logs
//!   contain (PocketData's SQLite queries, the US bank's mixed workload);
//! * [`ast`] — the query AST and its canonical [`std::fmt::Display`]
//!   rendering (the printer);
//! * [`parser`] — recursive-descent parser with precedence climbing;
//! * [`normalize`] — the paper's *query regularization* step (§7, "Query
//!   Regularization"): constant anonymization, `BETWEEN`/`IN`/`NOT`
//!   rewrites, and conversion to a **UNION of conjunctive queries** — the
//!   form the Aligon feature scheme requires.
//!
//! The parser is intentionally a dialect subset: conjunctive SELECTs with
//! joins, subqueries, grouping, ordering and limits. Statements outside the
//! subset surface as [`ParseError`]s, which the log-ingestion layer counts
//! (that's the "not able to be parsed" row of the paper's Table 1).

pub mod ast;
pub mod lexer;
pub mod normalize;
pub mod parser;

pub use ast::{
    BinaryOp, ConjunctiveQuery, Expr, JoinKind, Limit, Literal, ObjectName, OrderByItem, Select,
    SelectItem, SelectStatement, SetExpr, TableRef, UnaryOp,
};
pub use lexer::{Lexer, Token, TokenKind};
pub use normalize::{anonymize_statement, regularize, Regularized};
pub use parser::{parse_select, ParseError, Parser};
