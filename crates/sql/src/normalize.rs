//! Query regularization (paper §7, "Query Regularization" and §2.2).
//!
//! The Aligon feature scheme consumes *conjunctive* queries: a projection
//! list, a set of source tables, and a conjunction of WHERE atoms. Real logs
//! contain `OR`, `NOT`, `IN`, `BETWEEN`, joins with `ON` clauses, and
//! constants. This module performs the paper's two regularization steps:
//!
//! 1. **Constant removal** ([`anonymize_statement`]) — literals are replaced
//!    by `?` parameters, so queries differing only in hard-coded constants
//!    collapse together (Table 1's "# Distinct queries (w/o const)" row).
//! 2. **Conjunctive rewriting** ([`regularize`]) — predicates are negation-
//!    normalized (De Morgan), `BETWEEN`/`IN` are desugared, and the result is
//!    converted to disjunctive normal form: a **UNION of conjunctive
//!    queries** (Table 1's "# Distinct re-writable queries" row). `ON`
//!    conditions fold into the WHERE conjunction so comma-joins and explicit
//!    joins featurize identically.

use crate::ast::*;
use std::collections::BTreeSet;
use std::fmt;

/// Default cap on DNF disjuncts before declaring a query non-rewritable.
pub const DEFAULT_MAX_DISJUNCTS: usize = 64;

/// Why a statement could not be regularized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegularizeError {
    /// DNF conversion exceeded the disjunct budget.
    TooManyDisjuncts {
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for RegularizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegularizeError::TooManyDisjuncts { limit } => {
                write!(f, "DNF conversion exceeded {limit} disjuncts")
            }
        }
    }
}

impl std::error::Error for RegularizeError {}

/// Result of regularizing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regularized {
    /// The UNION branches, each in conjunctive form. Deduplicated: after
    /// anonymization `x IN (?, ?)` yields a single `x = ?` branch.
    pub branches: Vec<ConjunctiveQuery>,
    /// True if the original statement was *already* conjunctive (single
    /// SELECT block whose WHERE is a pure conjunction of atoms) — the
    /// "# Distinct conjunctive queries" row of Table 1.
    pub was_conjunctive: bool,
}

/// Replace every literal in the statement with a `?` parameter.
///
/// `NULL` is kept: `IS NULL` carries schema semantics, not a data constant.
/// `LIMIT`/`OFFSET` counts are not expressions and are also kept (the paper's
/// Fig. 10 visualizations show `LIMIT 500` surviving regularization).
pub fn anonymize_statement(stmt: &mut SelectStatement) {
    anonymize_set_expr(&mut stmt.body);
    for item in &mut stmt.order_by {
        anonymize_expr(&mut item.expr);
    }
}

fn anonymize_set_expr(body: &mut SetExpr) {
    match body {
        SetExpr::Select(s) => anonymize_select(s),
        SetExpr::Union { left, right, .. } => {
            anonymize_set_expr(left);
            anonymize_set_expr(right);
        }
    }
}

fn anonymize_select(select: &mut Select) {
    for item in &mut select.items {
        if let SelectItem::Expr { expr, .. } = item {
            anonymize_expr(expr);
        }
    }
    for t in &mut select.from {
        anonymize_table_ref(t);
    }
    if let Some(sel) = &mut select.selection {
        anonymize_expr(sel);
    }
    for g in &mut select.group_by {
        anonymize_expr(g);
    }
    if let Some(h) = &mut select.having {
        anonymize_expr(h);
    }
}

fn anonymize_table_ref(t: &mut TableRef) {
    match t {
        TableRef::Table { .. } => {}
        TableRef::Subquery { query, .. } => anonymize_statement(query),
        TableRef::Join { left, right, on, .. } => {
            anonymize_table_ref(left);
            anonymize_table_ref(right);
            if let Some(cond) = on {
                anonymize_expr(cond);
            }
        }
    }
}

/// Replace literals in an expression tree with `?` (keeps `NULL`).
pub fn anonymize_expr(expr: &mut Expr) {
    match expr {
        Expr::Literal(Literal::Null) => {}
        Expr::Literal(_) => *expr = Expr::Param,
        Expr::Column(_) | Expr::Param | Expr::Wildcard => {}
        Expr::Unary { expr: inner, .. } => anonymize_expr(inner),
        Expr::Binary { left, right, .. } => {
            anonymize_expr(left);
            anonymize_expr(right);
        }
        Expr::IsNull { expr: inner, .. } => anonymize_expr(inner),
        Expr::InList { expr: inner, list, .. } => {
            anonymize_expr(inner);
            for item in list {
                anonymize_expr(item);
            }
        }
        Expr::InSubquery { expr: inner, query, .. } => {
            anonymize_expr(inner);
            anonymize_statement(query);
        }
        Expr::Between { expr: inner, low, high, .. } => {
            anonymize_expr(inner);
            anonymize_expr(low);
            anonymize_expr(high);
        }
        Expr::Like { expr: inner, pattern, .. } => {
            anonymize_expr(inner);
            anonymize_expr(pattern);
        }
        Expr::Function { args, .. } => {
            for a in args {
                anonymize_expr(a);
            }
        }
        Expr::Exists { query, .. } => anonymize_statement(query),
        Expr::Subquery(query) => anonymize_statement(query),
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                anonymize_expr(op);
            }
            for (when, then) in branches {
                anonymize_expr(when);
                anonymize_expr(then);
            }
            if let Some(e) = else_result {
                anonymize_expr(e);
            }
        }
    }
}

/// Regularize with the default disjunct budget. See [`regularize_with_limit`].
pub fn regularize(stmt: &SelectStatement) -> Result<Regularized, RegularizeError> {
    regularize_with_limit(stmt, DEFAULT_MAX_DISJUNCTS)
}

/// Rewrite a statement into a UNION of conjunctive queries.
///
/// Each SELECT block contributes its own DNF branches; a compound statement's
/// branches are concatenated. ORDER BY and LIMIT (statement level) attach to
/// every branch. Returns an error if DNF conversion would exceed
/// `max_disjuncts` branches for any block.
pub fn regularize_with_limit(
    stmt: &SelectStatement,
    max_disjuncts: usize,
) -> Result<Regularized, RegularizeError> {
    let selects = stmt.body.selects();
    let was_conjunctive = selects.len() == 1 && select_is_conjunctive(selects[0]);

    let mut branches = Vec::new();
    for select in selects {
        let (tables, join_conjuncts) = collect_sources(&select.from);
        // Fold WHERE, JOIN ON and HAVING into a single predicate.
        let mut predicate: Option<Expr> = select.selection.clone();
        for jc in join_conjuncts {
            predicate = Some(match predicate {
                Some(p) => Expr::and(p, jc),
                None => jc,
            });
        }
        if let Some(h) = &select.having {
            predicate = Some(match predicate {
                Some(p) => Expr::and(p, h.clone()),
                None => h.clone(),
            });
        }

        let disjuncts: Vec<Vec<Expr>> = match predicate {
            None => vec![Vec::new()],
            Some(p) => {
                let nnf = to_nnf(p);
                let desugared = desugar(nnf);
                dnf(&desugared, max_disjuncts)?
            }
        };

        for conjuncts in disjuncts {
            // Canonical ordering + dedup makes conjunct order irrelevant
            // ("isomorphic modulo commutativity", paper §2.2).
            let set: BTreeSet<String> = conjuncts.iter().map(Expr::to_string).collect();
            let mut ordered: Vec<Expr> = Vec::with_capacity(set.len());
            let mut seen = BTreeSet::new();
            let mut sorted_conjuncts = conjuncts;
            sorted_conjuncts.sort_by_key(|e| e.to_string());
            for c in sorted_conjuncts {
                let key = c.to_string();
                if seen.insert(key) {
                    ordered.push(c);
                }
            }
            debug_assert_eq!(ordered.len(), set.len());

            branches.push(ConjunctiveQuery {
                select: select.items.clone(),
                tables: tables.clone(),
                conjuncts: ordered,
                group_by: select.group_by.clone(),
                order_by: stmt.order_by.clone(),
                limit: stmt.limit.clone(),
            });
        }
    }

    // Deduplicate identical branches (IN-desugaring after anonymization
    // produces duplicates).
    let mut seen = BTreeSet::new();
    branches.retain(|b| seen.insert(b.to_string()));

    Ok(Regularized { branches, was_conjunctive })
}

/// Collect source-table names and `ON` conjuncts from a FROM clause.
fn collect_sources(from: &[TableRef]) -> (Vec<String>, Vec<Expr>) {
    let mut tables = Vec::new();
    let mut conjuncts = Vec::new();
    fn walk(t: &TableRef, tables: &mut Vec<String>, conjuncts: &mut Vec<Expr>) {
        match t {
            TableRef::Table { name, .. } => tables.push(name.to_string()),
            TableRef::Subquery { query, .. } => tables.push(format!("({query})")),
            TableRef::Join { left, right, on, .. } => {
                walk(left, tables, conjuncts);
                walk(right, tables, conjuncts);
                if let Some(cond) = on {
                    conjuncts.push(cond.clone());
                }
            }
        }
    }
    for t in from {
        walk(t, &mut tables, &mut conjuncts);
    }
    tables.sort();
    tables.dedup();
    (tables, conjuncts)
}

/// True when the block's predicate is already a pure conjunction of atoms.
pub fn select_is_conjunctive(select: &Select) -> bool {
    fn conjunctive(e: &Expr) -> bool {
        match e {
            Expr::Binary { op: BinaryOp::And, left, right } => {
                conjunctive(left) && conjunctive(right)
            }
            Expr::Binary { op: BinaryOp::Or, .. } => false,
            // NOT over anything rewritable (comparisons flip, polarities
            // toggle, De Morgan applies) is non-conjunctive; NOT over an
            // irreducible atom (bare column, function call) *is* an atom.
            Expr::Unary { op: UnaryOp::Not, expr: inner } => !matches!(
                inner.as_ref(),
                Expr::Binary { .. }
                    | Expr::Unary { op: UnaryOp::Not, .. }
                    | Expr::InList { .. }
                    | Expr::InSubquery { .. }
                    | Expr::Between { .. }
                    | Expr::IsNull { .. }
                    | Expr::Like { .. }
                    | Expr::Exists { .. }
            ),
            // These need desugaring, so the original is not conjunctive.
            Expr::InList { .. } | Expr::Between { .. } => false,
            _ => true,
        }
    }
    let mut ok = true;
    if let Some(p) = &select.selection {
        ok &= conjunctive(p);
    }
    if let Some(h) = &select.having {
        ok &= conjunctive(h);
    }
    ok
}

/// Negation normal form: push `NOT` down to atoms, flipping comparisons and
/// predicate polarities on the way.
fn to_nnf(expr: Expr) -> Expr {
    match expr {
        Expr::Unary { op: UnaryOp::Not, expr: inner } => negate(to_nnf(*inner)),
        Expr::Binary { left, op: op @ (BinaryOp::And | BinaryOp::Or), right } => {
            Expr::Binary { left: Box::new(to_nnf(*left)), op, right: Box::new(to_nnf(*right)) }
        }
        other => other,
    }
}

/// Logical negation of an NNF expression.
fn negate(expr: Expr) -> Expr {
    match expr {
        Expr::Binary { left, op: BinaryOp::And, right } => Expr::or(negate(*left), negate(*right)),
        Expr::Binary { left, op: BinaryOp::Or, right } => Expr::and(negate(*left), negate(*right)),
        Expr::Binary { left, op, right } => match op.negated() {
            Some(flip) => Expr::Binary { left, op: flip, right },
            None => {
                Expr::Unary { op: UnaryOp::Not, expr: Box::new(Expr::Binary { left, op, right }) }
            }
        },
        Expr::Unary { op: UnaryOp::Not, expr } => *expr,
        Expr::IsNull { expr, negated } => Expr::IsNull { expr, negated: !negated },
        Expr::InList { expr, list, negated } => Expr::InList { expr, list, negated: !negated },
        Expr::InSubquery { expr, query, negated } => {
            Expr::InSubquery { expr, query, negated: !negated }
        }
        Expr::Between { expr, low, high, negated } => {
            Expr::Between { expr, low, high, negated: !negated }
        }
        Expr::Like { expr, pattern, negated } => Expr::Like { expr, pattern, negated: !negated },
        Expr::Exists { query, negated } => Expr::Exists { query, negated: !negated },
        other => Expr::Unary { op: UnaryOp::Not, expr: Box::new(other) },
    }
}

/// Desugar `BETWEEN` and `IN` lists into comparisons joined by AND/OR.
fn desugar(expr: Expr) -> Expr {
    match expr {
        Expr::Binary { left, op, right } => {
            Expr::Binary { left: Box::new(desugar(*left)), op, right: Box::new(desugar(*right)) }
        }
        Expr::Between { expr, low, high, negated } => {
            let lo = Expr::Binary {
                left: expr.clone(),
                op: if negated { BinaryOp::Lt } else { BinaryOp::GtEq },
                right: low,
            };
            let hi = Expr::Binary {
                left: expr,
                op: if negated { BinaryOp::Gt } else { BinaryOp::LtEq },
                right: high,
            };
            if negated {
                Expr::or(lo, hi)
            } else {
                Expr::and(lo, hi)
            }
        }
        Expr::InList { expr, list, negated } => {
            let mut terms = list.into_iter().map(|item| Expr::Binary {
                left: expr.clone(),
                op: if negated { BinaryOp::NotEq } else { BinaryOp::Eq },
                right: Box::new(item),
            });
            let first = terms.next().unwrap_or(Expr::Literal(Literal::Boolean(!negated)));
            terms.fold(first, |acc, t| if negated { Expr::and(acc, t) } else { Expr::or(acc, t) })
        }
        other => other,
    }
}

/// Convert an NNF/desugared predicate into DNF: a list of conjunct lists.
fn dnf(expr: &Expr, max: usize) -> Result<Vec<Vec<Expr>>, RegularizeError> {
    match expr {
        Expr::Binary { left, op: BinaryOp::Or, right } => {
            let mut l = dnf(left, max)?;
            let r = dnf(right, max)?;
            l.extend(r);
            if l.len() > max {
                return Err(RegularizeError::TooManyDisjuncts { limit: max });
            }
            Ok(l)
        }
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let l = dnf(left, max)?;
            let r = dnf(right, max)?;
            if l.len().saturating_mul(r.len()) > max {
                return Err(RegularizeError::TooManyDisjuncts { limit: max });
            }
            let mut out = Vec::with_capacity(l.len() * r.len());
            for lc in &l {
                for rc in &r {
                    let mut combined = lc.clone();
                    combined.extend(rc.iter().cloned());
                    out.push(combined);
                }
            }
            Ok(out)
        }
        atom => Ok(vec![vec![atom.clone()]]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn reg(sql: &str) -> Regularized {
        let mut stmt = parse_select(sql).unwrap();
        anonymize_statement(&mut stmt);
        regularize(&stmt).unwrap()
    }

    fn branch_strings(sql: &str) -> Vec<String> {
        reg(sql).branches.iter().map(|b| b.to_string()).collect()
    }

    #[test]
    fn anonymize_replaces_literals() {
        let mut stmt = parse_select("select a from t where b = 5 and c = 'x'").unwrap();
        anonymize_statement(&mut stmt);
        assert_eq!(stmt.to_string(), "SELECT a FROM t WHERE b = ? AND c = ?");
    }

    #[test]
    fn anonymize_keeps_null_and_limit() {
        let mut stmt = parse_select("select a from t where b is null and c = 3 limit 500").unwrap();
        anonymize_statement(&mut stmt);
        assert_eq!(stmt.to_string(), "SELECT a FROM t WHERE b IS NULL AND c = ? LIMIT 500");
    }

    #[test]
    fn anonymize_reaches_subqueries() {
        let mut stmt =
            parse_select("select a from t where b in (select c from u where d = 7)").unwrap();
        anonymize_statement(&mut stmt);
        assert_eq!(stmt.to_string(), "SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = ?)");
    }

    #[test]
    fn conjunctive_query_passes_through() {
        let r = reg("select a from t where x = ? and y = ?");
        assert!(r.was_conjunctive);
        assert_eq!(r.branches.len(), 1);
        assert_eq!(r.branches[0].to_string(), "SELECT a FROM t WHERE x = ? AND y = ?");
    }

    #[test]
    fn or_splits_into_union_branches() {
        let r = reg("select a from t where x = ? or y = ?");
        assert!(!r.was_conjunctive);
        assert_eq!(r.branches.len(), 2);
        assert_eq!(r.branches[0].to_string(), "SELECT a FROM t WHERE x = ?");
        assert_eq!(r.branches[1].to_string(), "SELECT a FROM t WHERE y = ?");
    }

    #[test]
    fn and_distributes_over_or() {
        let r = reg("select a from t where (x = ? or y = ?) and z = ?");
        assert_eq!(r.branches.len(), 2);
        for b in &r.branches {
            assert!(b.conjuncts.iter().any(|c| c.to_string() == "z = ?"));
        }
    }

    #[test]
    fn between_desugars_to_range_conjuncts() {
        let r = reg("select a from t where b between ? and ?");
        assert!(!r.was_conjunctive);
        assert_eq!(r.branches.len(), 1);
        let strs: Vec<String> = r.branches[0].conjuncts.iter().map(Expr::to_string).collect();
        assert_eq!(strs, vec!["b <= ?", "b >= ?"]);
    }

    #[test]
    fn not_between_becomes_two_branches() {
        let r = reg("select a from t where b not between ? and ?");
        assert_eq!(r.branches.len(), 2);
        assert_eq!(r.branches[0].conjuncts[0].to_string(), "b < ?");
        assert_eq!(r.branches[1].conjuncts[0].to_string(), "b > ?");
    }

    #[test]
    fn in_list_dedupes_after_anonymization() {
        // x IN (1, 2, 3) → x = ? OR x = ? OR x = ? → one distinct branch.
        let r = reg("select a from t where x in (1, 2, 3)");
        assert_eq!(r.branches.len(), 1);
        assert_eq!(r.branches[0].conjuncts[0].to_string(), "x = ?");
    }

    #[test]
    fn not_in_becomes_conjunction() {
        let r = reg("select a from t where x not in (1, 2)");
        assert_eq!(r.branches.len(), 1);
        assert_eq!(r.branches[0].conjuncts[0].to_string(), "x != ?");
    }

    #[test]
    fn demorgan_not_over_and() {
        let r = reg("select a from t where not (x = ? and y = ?)");
        assert_eq!(r.branches.len(), 2);
        assert_eq!(r.branches[0].conjuncts[0].to_string(), "x != ?");
        assert_eq!(r.branches[1].conjuncts[0].to_string(), "y != ?");
    }

    #[test]
    fn demorgan_not_over_or() {
        let r = reg("select a from t where not (x = ? or y < ?)");
        assert_eq!(r.branches.len(), 1);
        let strs: Vec<String> = r.branches[0].conjuncts.iter().map(Expr::to_string).collect();
        assert_eq!(strs, vec!["x != ?", "y >= ?"]);
    }

    #[test]
    fn double_negation_eliminated() {
        let r = reg("select a from t where not not x = ?");
        assert_eq!(r.branches.len(), 1);
        assert_eq!(r.branches[0].conjuncts[0].to_string(), "x = ?");
    }

    #[test]
    fn not_is_null_flips_polarity() {
        let r = reg("select a from t where not (b is null)");
        assert_eq!(r.branches[0].conjuncts[0].to_string(), "b IS NOT NULL");
    }

    #[test]
    fn join_on_folds_into_conjuncts() {
        let explicit = branch_strings("select a from t join u on t.id = u.id where t.x = ?");
        let comma = branch_strings("select a from t, u where t.id = u.id and t.x = ?");
        assert_eq!(explicit, comma);
    }

    #[test]
    fn tables_are_sorted_and_deduped() {
        let r = reg("select a from u, t where t.id = u.id");
        assert_eq!(r.branches[0].tables, vec!["t", "u"]);
    }

    #[test]
    fn conjuncts_sorted_canonically() {
        let a = branch_strings("select a from t where y = ? and x = ?");
        let b = branch_strings("select a from t where x = ? and y = ?");
        assert_eq!(a, b);
    }

    #[test]
    fn union_statement_concatenates_branches() {
        let r = reg("select a from t where x = ? union select b from u where y = ?");
        assert_eq!(r.branches.len(), 2);
        assert!(!r.was_conjunctive);
    }

    #[test]
    fn subquery_source_becomes_table_feature() {
        let r = reg("select a from (select b from u) v");
        assert_eq!(r.branches[0].tables, vec!["(SELECT b FROM u)"]);
    }

    #[test]
    fn having_folds_into_conjuncts() {
        let r = reg("select a, count(*) from t group by a having count(*) > ?");
        assert_eq!(r.branches[0].conjuncts[0].to_string(), "count(*) > ?");
        assert_eq!(r.branches[0].group_by.len(), 1);
    }

    #[test]
    fn order_and_limit_attach_to_branches() {
        let r = reg("select a from t where x = ? or y = ? order by a desc limit 10");
        assert_eq!(r.branches.len(), 2);
        for b in &r.branches {
            assert_eq!(b.order_by.len(), 1);
            assert_eq!(b.limit.as_ref().unwrap().limit, 10);
        }
    }

    #[test]
    fn disjunct_explosion_detected() {
        // 2^8 = 256 disjuncts > 64 default cap.
        let mut clauses = Vec::new();
        for i in 0..8 {
            clauses.push(format!("(a{i} = ? or b{i} = ?)"));
        }
        let sql = format!("select x from t where {}", clauses.join(" and "));
        let stmt = parse_select(&sql).unwrap();
        assert!(matches!(regularize(&stmt), Err(RegularizeError::TooManyDisjuncts { .. })));
    }

    #[test]
    fn empty_where_gives_single_branch() {
        let r = reg("select a from t");
        assert!(r.was_conjunctive);
        assert_eq!(r.branches.len(), 1);
        assert!(r.branches[0].conjuncts.is_empty());
    }

    #[test]
    fn case_expressions_anonymize_and_stay_atomic() {
        let r = reg("select a from t where case when b = 1 then 1 else 0 end = 2 and c = 3");
        assert_eq!(r.branches.len(), 1);
        let strs: Vec<String> = r.branches[0].conjuncts.iter().map(Expr::to_string).collect();
        // The whole CASE comparison survives as one (anonymized) atom.
        assert_eq!(strs, vec!["CASE WHEN b = ? THEN ? ELSE ? END = ?", "c = ?"]);
    }

    #[test]
    fn branches_reparse_as_conjunctive() {
        // Every branch the regularizer emits must itself be conjunctive.
        for sql in [
            "select a from t where x = ? or (y = ? and not (z = ? or w = ?))",
            "select a from t where b between ? and ? and (c = ? or d != ?)",
        ] {
            for b in reg(sql).branches {
                let printed = b.to_string();
                let reparsed = parse_select(&printed).unwrap();
                let re = regularize(&reparsed).unwrap();
                assert!(re.was_conjunctive, "branch not conjunctive: {printed}");
                assert_eq!(re.branches.len(), 1);
            }
        }
    }
}
