//! Robustness properties of the portable summary format: round trips are
//! exact, and corrupted input must produce errors — never panics, never a
//! silently wrong summary that still claims the original totals.

use logr_cluster::Clustering;
use logr_core::mixture::NaiveMixtureEncoding;
use logr_core::portable::PortableSummary;
use logr_feature::{Feature, FeatureId, QueryLog, QueryVector};
use proptest::prelude::*;

fn arb_log() -> impl Strategy<Value = QueryLog> {
    prop::collection::vec((prop::collection::vec(0..12u32, 1..5), 1u64..50), 1..10).prop_map(
        |rows| {
            let mut log = QueryLog::new();
            // Intern real features so the codebook round-trips.
            for i in 0..12 {
                log.codebook_mut().intern(Feature::where_atom(format!("col{i} = ?")));
            }
            for (ids, count) in rows {
                log.add_vector(QueryVector::new(ids.into_iter().map(FeatureId).collect()), count);
            }
            log
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_preserves_everything(log in arb_log(), split in any::<u64>()) {
        let n = log.distinct_count();
        let assignments: Vec<usize> =
            (0..n).map(|i| ((split >> (i % 60)) & 1) as usize).collect();
        let mixture = NaiveMixtureEncoding::build(&log, &Clustering::new(2, assignments));
        let portable = PortableSummary::from_mixture(&mixture, &log);

        let mut buf = Vec::new();
        portable.write_to(&mut buf).unwrap();
        let loaded = PortableSummary::read_from(buf.as_slice()).unwrap();

        prop_assert_eq!(loaded.total_queries, portable.total_queries);
        prop_assert_eq!(loaded.components.len(), portable.components.len());
        prop_assert_eq!(loaded.total_verbosity(), portable.total_verbosity());
        // Estimates agree on every single-feature pattern.
        for i in 0..12 {
            let features = [Feature::where_atom(format!("col{i} = ?"))];
            let a = portable.estimate_count(&features);
            let b = loaded.estimate_count(&features);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn truncation_never_panics(log in arb_log(), cut in 0.0f64..1.0) {
        let mixture = NaiveMixtureEncoding::single(&log);
        let portable = PortableSummary::from_mixture(&mixture, &log);
        let mut buf = Vec::new();
        portable.write_to(&mut buf).unwrap();
        let cut_at = ((buf.len() as f64) * cut) as usize;
        // Either a clean parse of a prefix-complete file or an error —
        // never a panic.
        let _ = PortableSummary::read_from(&buf[..cut_at]);
    }

    #[test]
    fn byte_corruption_never_panics(log in arb_log(), pos in any::<usize>(), byte in any::<u8>()) {
        let mixture = NaiveMixtureEncoding::single(&log);
        let portable = PortableSummary::from_mixture(&mixture, &log);
        let mut buf = Vec::new();
        portable.write_to(&mut buf).unwrap();
        if buf.is_empty() {
            return Ok(());
        }
        let idx = pos % buf.len();
        buf[idx] = byte;
        match String::from_utf8(buf) {
            Ok(text) => {
                // Must not panic; errors are fine, and a successful parse
                // must still carry internally consistent structure.
                if let Ok(loaded) = PortableSummary::read_from(text.as_bytes()) {
                    prop_assert!(loaded.components.len() <= 64);
                    for (_, pairs) in &loaded.components {
                        for &(_, p) in pairs {
                            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
                        }
                    }
                }
            }
            Err(_) => { /* invalid UTF-8 cannot even reach the parser */ }
        }
    }
}
