//! Property tests for LogR's core invariants on randomly generated logs:
//!
//! * Reproduction Error is non-negative (independence is max-ent);
//! * generalized mixture error equals the weighted component sum;
//! * single-feature marginal estimates are exact;
//! * Lemma 1: adding patterns to an encoding never increases max-ent error;
//! * class systems exactly tile the projected space.

use logr_cluster::Clustering;
use logr_core::lossless::exact_point_probabilities;
use logr_core::maxent::{ClassSystem, GeneralEncoding};
use logr_core::{empirical_entropy, naive_error, NaiveEncoding, NaiveMixtureEncoding};
use logr_feature::{FeatureId, QueryLog, QueryVector};
use proptest::prelude::*;

const UNIVERSE: u32 = 10;

fn arb_log() -> impl Strategy<Value = QueryLog> {
    prop::collection::vec((prop::collection::vec(0..UNIVERSE, 0..6), 1u64..20), 1..12).prop_map(
        |entries| {
            let mut log = QueryLog::new();
            for (ids, count) in entries {
                log.add_vector(QueryVector::new(ids.into_iter().map(FeatureId).collect()), count);
            }
            log.reserve_universe(UNIVERSE as usize);
            log
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn reproduction_error_nonnegative(log in arb_log()) {
        prop_assert!(naive_error(&log) >= -1e-9);
    }

    #[test]
    fn empirical_entropy_bounded_by_distinct(log in arb_log()) {
        let h = empirical_entropy(&log);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (log.distinct_count() as f64).ln() + 1e-9);
    }

    #[test]
    fn mixture_error_is_weighted_sum(log in arb_log(), split in any::<u64>()) {
        let n = log.distinct_count();
        let assignments: Vec<usize> = (0..n).map(|i| ((split >> (i % 60)) & 1) as usize).collect();
        let mixture = NaiveMixtureEncoding::build(&log, &Clustering::new(2, assignments));
        let recombined: f64 = mixture
            .components()
            .iter()
            .map(|c| c.weight * c.error)
            .sum();
        prop_assert!((mixture.error() - recombined).abs() < 1e-9);
        let weights: f64 = mixture.components().iter().map(|c| c.weight).sum();
        prop_assert!((weights - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_feature_estimates_exact(log in arb_log()) {
        let encoding = NaiveEncoding::from_log(&log);
        let total = log.total_queries();
        for f in 0..UNIVERSE {
            let pattern = QueryVector::new(vec![FeatureId(f)]);
            let est = encoding.estimate_count(&pattern, total);
            let truth = log.support(&pattern) as f64;
            prop_assert!((est - truth).abs() < 1e-6, "feature {f}: {est} vs {truth}");
        }
    }

    #[test]
    fn mixture_single_feature_estimates_exact(log in arb_log(), split in any::<u64>()) {
        let n = log.distinct_count();
        let assignments: Vec<usize> = (0..n).map(|i| ((split >> (i % 60)) & 1) as usize).collect();
        let mixture = NaiveMixtureEncoding::build(&log, &Clustering::new(2, assignments));
        for f in 0..UNIVERSE {
            let pattern = QueryVector::new(vec![FeatureId(f)]);
            let est = mixture.estimate_count(&pattern);
            let truth = log.support(&pattern) as f64;
            prop_assert!((est - truth).abs() < 1e-6, "feature {f}: {est} vs {truth}");
        }
    }

    #[test]
    fn lemma1_adding_patterns_monotone(log in arb_log()) {
        // Universe: two busiest features; patterns over them.
        let marginals = log.marginals();
        let mut busy: Vec<usize> = (0..marginals.len()).collect();
        busy.sort_by(|&a, &b| marginals[b].total_cmp(&marginals[a]));
        let (fa, fb) = (FeatureId(busy[0] as u32), FeatureId(busy[1] as u32));
        let universe = QueryVector::new(vec![fa, fb]);
        let entries = log.all_entry_indices();

        let e1 = GeneralEncoding::measure(&log, &entries, vec![QueryVector::new(vec![fa])], 2)
            .reproduction_error(&log, &entries, &universe);
        let e2 = GeneralEncoding::measure(
            &log,
            &entries,
            vec![QueryVector::new(vec![fa]), QueryVector::new(vec![fb])],
            2,
        )
        .reproduction_error(&log, &entries, &universe);
        if let (Ok(e1), Ok(e2)) = (e1, e2) {
            prop_assert!(e2 <= e1 + 1e-6, "adding a pattern raised error: {e1} -> {e2}");
        }
    }

    #[test]
    fn class_system_tiles_projected_space(
        p1 in prop::collection::vec(0..6u32, 1..4),
        p2 in prop::collection::vec(0..6u32, 1..4),
    ) {
        let patterns = vec![
            QueryVector::new(p1.into_iter().map(FeatureId).collect()),
            QueryVector::new(p2.into_iter().map(FeatureId).collect()),
        ];
        let cs = ClassSystem::build(&patterns).unwrap();
        let total: f64 = cs.classes().iter().map(|c| c.size).sum();
        prop_assert!((total - 2f64.powi(cs.n_projected() as i32)).abs() < 1e-6,
            "classes don't tile: {total} vs 2^{}", cs.n_projected());
        // Every query's signature lands in a non-empty class.
        for mask in 0..(1u32 << cs.n_projected().min(6)) {
            let ids: Vec<FeatureId> = cs
                .projected_features()
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &f)| f)
                .collect();
            let q = QueryVector::new(ids);
            prop_assert!(cs.class_index(cs.signature_of(&q)).is_some());
        }
    }

    #[test]
    fn proposition_1_reconstructs_any_log(log in arb_log()) {
        // Lossless reconstruction from marginals matches the projected
        // empirical distribution exactly (paper Prop. 1 / Appendix B).
        let universe = QueryVector::new((0..UNIVERSE).map(FeatureId).collect());
        let atoms = exact_point_probabilities(&log, &log.all_entry_indices(), &universe);
        let total: f64 = atoms.iter().map(|&(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        let t = log.total_queries() as f64;
        for (q, p) in atoms {
            let truth = log
                .entries()
                .iter()
                .filter(|(v, _)| v.intersection(&universe) == q)
                .map(|&(_, c)| c as f64 / t)
                .sum::<f64>();
            prop_assert!((p - truth).abs() < 1e-9, "atom {:?}: {p} vs {truth}", q);
        }
    }

    #[test]
    fn probability_normalized_over_support(log in arb_log()) {
        // Sum of naive-encoding probabilities over all subsets of a small
        // support equals 1.
        let encoding = NaiveEncoding::from_log(&log);
        if encoding.verbosity() <= 8 && encoding.verbosity() > 0 {
            let support: Vec<FeatureId> = encoding.support().to_vec();
            let mut total = 0.0;
            for mask in 0..(1u32 << support.len()) {
                let ids: Vec<FeatureId> = support
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &f)| f)
                    .collect();
                total += encoding.probability(&QueryVector::new(ids));
            }
            prop_assert!((total - 1.0).abs() < 1e-6, "probabilities sum to {total}");
        }
    }
}
