//! PR 3 acceptance: a streaming run whose resident shard budget is far
//! below the total shard payload produces **byte-identical** window
//! summaries, drift reports, and history summaries to an
//! unbounded-memory run — and its peak resident shard bytes respect the
//! budget at every observation point (after every close; bulk merges
//! transiently add at most one shard, which `history_summary` mid-stream
//! exercises too).

use logr_cluster::testutil::TempStore;
use logr_cluster::Distance;
use logr_core::{DriftReport, LogRSummary, StreamConfig, StreamSummarizer, WindowSummary};
/// A stream with genuinely growing distinct-query mass (so history shards
/// have real payloads): 400 distinct statement shapes over a shared set
/// of tables/columns, cycled twice.
fn statements() -> Vec<String> {
    (0..800u32)
        .map(|i| {
            let i = i % 400;
            match i % 4 {
                0 => {
                    format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 23, i % 17, i % 7, i % 13)
                }
                1 => format!(
                    "SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?",
                    i % 29,
                    i % 7,
                    i % 13,
                    i % 11
                ),
                2 => format!("SELECT c{}, c{}, c{} FROM t{}", i % 23, i % 29, i % 31, i % 5),
                _ => format!("SELECT c{} FROM t{} WHERE a{} > ?", i % 31, i % 5, i % 13),
            }
        })
        .collect()
}

fn assert_drift_identical(a: &Option<DriftReport>, b: &Option<DriftReport>, ctx: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.overall.to_bits(), b.overall.to_bits(), "{ctx}: drift overall");
            assert_eq!(a.new_features, b.new_features, "{ctx}: new features");
            assert_eq!(a.vanished_features, b.vanished_features, "{ctx}: vanished features");
            assert_eq!(a.per_feature.len(), b.per_feature.len(), "{ctx}: per-feature len");
            for ((fa, da), (fb, db)) in a.per_feature.iter().zip(&b.per_feature) {
                assert_eq!(fa, fb, "{ctx}: per-feature id");
                assert_eq!(da.to_bits(), db.to_bits(), "{ctx}: per-feature divergence");
            }
        }
        _ => panic!("{ctx}: drift presence diverged"),
    }
}

fn assert_summary_identical(a: &LogRSummary, b: &LogRSummary, ctx: &str) {
    assert_eq!(a.clustering, b.clustering, "{ctx}: clustering");
    assert_eq!(a.error().to_bits(), b.error().to_bits(), "{ctx}: error");
    assert_eq!(a.total_verbosity(), b.total_verbosity(), "{ctx}: verbosity");
    let (ca, cb) = (a.mixture.components(), b.mixture.components());
    assert_eq!(ca.len(), cb.len(), "{ctx}: component count");
    for (i, (x, y)) in ca.iter().zip(cb).enumerate() {
        assert_eq!(x.entries, y.entries, "{ctx}: component {i} entries");
        assert_eq!(x.total, y.total, "{ctx}: component {i} total");
        assert_eq!(x.weight.to_bits(), y.weight.to_bits(), "{ctx}: component {i} weight");
        assert_eq!(x.error.to_bits(), y.error.to_bits(), "{ctx}: component {i} error");
        let (ma, mb) = (x.encoding.marginals(), y.encoding.marginals());
        assert_eq!(ma.len(), mb.len(), "{ctx}: component {i} marginal len");
        for (p, q) in ma.iter().zip(mb) {
            assert_eq!(p.to_bits(), q.to_bits(), "{ctx}: component {i} marginal");
        }
    }
}

fn assert_window_identical(a: &WindowSummary, b: &WindowSummary) {
    let ctx = format!("window {}", a.index);
    assert_eq!(a.index, b.index);
    assert_eq!(a.queries, b.queries, "{ctx}: queries");
    assert_eq!(a.distinct, b.distinct, "{ctx}: distinct");
    assert_eq!(a.new_distinct, b.new_distinct, "{ctx}: new distinct");
    assert_eq!(a.stable, b.stable, "{ctx}: stability verdict");
    assert_eq!(a.novelty.len(), b.novelty.len(), "{ctx}: novelty len");
    for (x, y) in a.novelty.iter().zip(&b.novelty) {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: novelty score");
    }
    assert_drift_identical(&a.drift, &b.drift, &ctx);
    assert_summary_identical(&a.summary, &b.summary, &ctx);
}

#[test]
fn bounded_memory_stream_is_byte_identical_and_respects_the_budget() {
    let store = TempStore::new("ooc-equiv");
    // Budget k ≪ total: the full history's shard payloads run to several
    // hundred KiB by the end (cross blocks grow with the history), while
    // the budget holds 64 KiB resident.
    const BUDGET: usize = 64 * 1024;
    let config = StreamConfig {
        window: 20,
        k: 3,
        metric: Distance::Hamming,
        baseline_windows: 3,
        ..StreamConfig::default()
    };
    let mut bounded = StreamSummarizer::new(config);
    bounded.spill_to(store.path(), BUDGET).unwrap();
    let mut unbounded = StreamSummarizer::new(config);

    let mut peak_resident = 0usize;
    let mut closes = 0usize;
    for (n, sql) in statements().iter().enumerate() {
        let (a, b) = (bounded.ingest(sql), unbounded.ingest(sql));
        assert_eq!(a.is_some(), b.is_some(), "close parity at statement {n}");
        if let (Some(a), Some(b)) = (a, b) {
            closes += 1;
            assert_window_identical(&a, &b);
            // The budget holds at every observation point.
            peak_resident = peak_resident.max(bounded.resident_shard_bytes());
            assert!(
                bounded.resident_shard_bytes() <= BUDGET,
                "window {}: resident {} exceeds budget {BUDGET}",
                a.index,
                bounded.resident_shard_bytes()
            );
        }
        // Mid-stream history summaries read across the resident/spilled
        // mix (reload-on-demand under the close path's nose).
        if n == 450 {
            let (ha, hb) = (bounded.history_summary(), unbounded.history_summary());
            assert_summary_identical(&ha.unwrap(), &hb.unwrap(), "mid-stream history");
        }
    }
    assert_eq!(closes, 40, "800 statements / window 20");
    // The first cycle's 20 windows each append a real shard; the second
    // cycle's shards are empty (no never-seen queries) and cost nothing,
    // so the budget must have forced out nearly all of the 20 real ones.
    assert!(
        bounded.spilled_shards() >= 15,
        "budget {BUDGET} must force most real shards out (only {} of {} spilled)",
        bounded.spilled_shards(),
        closes
    );
    // The unbounded run really is unbounded — and much bigger than the
    // budget, so the comparison is meaningful.
    let unbounded_bytes = unbounded.resident_shard_bytes();
    assert!(
        unbounded_bytes > 2 * BUDGET,
        "total shard payload {unbounded_bytes} is not ≫ budget {BUDGET}; grow the workload"
    );
    assert!(peak_resident <= BUDGET);
    assert!(peak_resident > 0);

    // Final history summary over a almost-fully-spilled history.
    let (ha, hb) = (bounded.history_summary(), unbounded.history_summary());
    assert_summary_identical(&ha.unwrap(), &hb.unwrap(), "final history");

    // Flush parity for the tail (nothing buffered here, both agree).
    assert_eq!(bounded.flush().is_some(), unbounded.flush().is_some());
}

#[test]
fn bounded_sliding_stream_matches_too() {
    // Sliding windows stack the parse cache and the trim logic on top of
    // the store; the artifacts must still match byte for byte.
    let store = TempStore::new("ooc-slide");
    let config = StreamConfig {
        window: 30,
        slide: Some(10),
        k: 2,
        metric: Distance::Canberra,
        ..StreamConfig::default()
    };
    let mut bounded = StreamSummarizer::new(config);
    bounded.spill_to(store.path(), 0).unwrap(); // only the pinned tail stays
    let mut unbounded = StreamSummarizer::new(config);
    for sql in statements().iter().take(200) {
        let (a, b) = (bounded.ingest(sql), unbounded.ingest(sql));
        assert_eq!(a.is_some(), b.is_some());
        if let (Some(a), Some(b)) = (a, b) {
            assert_window_identical(&a, &b);
        }
    }
    assert!(bounded.spilled_shards() > 0);
    // Both parse each distinct statement exactly once (the cache is
    // orthogonal to the store).
    assert_eq!(bounded.statements_parsed(), unbounded.statements_parsed());
    let (ha, hb) = (bounded.history_summary(), unbounded.history_summary());
    assert_summary_identical(&ha.unwrap(), &hb.unwrap(), "sliding history");
}
