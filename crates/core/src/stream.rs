//! Streaming window summarization (paper §2/§5 "Online Database
//! Monitoring", made incremental).
//!
//! [`StreamSummarizer`] ingests a live query stream one statement at a
//! time and turns it into a sequence of per-window artifacts instead of
//! re-clustering the whole log on every look:
//!
//! * a **pattern mixture summary** of each closed window (the same
//!   [`LogRSummary`] the batch compressor produces, via the
//!   condensed-matrix path);
//! * a **drift report** ([`feature_drift`]) and per-query **novelty
//!   scores** ([`novelty_scores`]) against a rolling baseline;
//! * an appendable **history**: each window's new distinct queries become
//!   one shard of a [`ShardedPointSet`], so a summary of *everything seen
//!   so far* ([`StreamSummarizer::history_summary`]) clusters over the
//!   merged condensed matrix without recomputing any pairwise distance.
//!
//! # Window semantics
//!
//! Windows are **count-based** and multiplicity-weighted: a window closes
//! once at least [`StreamConfig::window`] queries (not statements — an
//! `ingest_with_count(sql, 500)` contributes 500) have accumulated, at a
//! statement boundary (a single ingest call is atomic, so a window may
//! overshoot by the last statement's multiplicity).
//!
//! * **Tumbling** (`slide: None`): consecutive windows partition the
//!   stream; the buffer resets on close.
//! * **Sliding** (`slide: Some(s)`): after the first close at `window`
//!   queries, a window closes every `s` further queries and spans the most
//!   recent `≥ window` queries (trimmed at statement granularity), so
//!   consecutive windows overlap by `window − s`.
//!
//! Only the *unseen* suffix of the stream (the queries since the previous
//! close) is absorbed into the long-running history, so sliding windows
//! never double-count.
//!
//! # Baseline rotation policy
//!
//! The drift baseline is the absorbed union of the most recent
//! [`StreamConfig::baseline_windows`] **closed strides** (tumbling: whole
//! windows), excluding any stride that still falls inside the next
//! window's span — so no window is ever judged against queries it itself
//! contains, even when sliding windows overlap. Windows closed before the
//! baseline holds any queries report `drift: None` and count as stable
//! (tumbling: just the first window; sliding: the first
//! `window / slide + baseline_windows − 1` closes, roughly). A slow
//! workload shift ages out of the baseline after `baseline_windows`
//! strides, while a sudden injection is judged against a baseline it has
//! not yet contaminated. Rebuild cost is `O(baseline_windows · window)`
//! per close — proportional to the window, never to the history.
//!
//! # Cost model
//!
//! Closing a window of `w` distinct queries against a history of `h`
//! costs `O(w²)` for the window's own condensed matrix plus `O(h·w_new)`
//! for the history shard's cross block (`w_new` = distinct queries never
//! seen before, typically ≪ `w`) — both on scoped threads under the
//! `parallel` feature. The monolithic alternative re-pays `O((h + w)²)`
//! per window.

use crate::compress::{CompressionObjective, LogR, LogRConfig, LogRSummary};
use crate::drift::{feature_drift, novelty_scores, DriftReport};
use logr_cluster::{ClusterMethod, Distance, PointSet, ShardedPointSet};
use logr_feature::{LogIngest, QueryLog, QueryVector};
use std::collections::VecDeque;

/// Streaming summarization configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Queries per window (multiplicity-weighted).
    pub window: u64,
    /// `None` for tumbling windows; `Some(s)` slides by `s` queries.
    pub slide: Option<u64>,
    /// How many recent closed windows form the drift baseline (≥ 1).
    pub baseline_windows: usize,
    /// Clusters per window summary (and for history summaries).
    pub k: usize,
    /// Distance measure for clustering and novelty scoring.
    pub metric: Distance,
    /// `DriftReport::is_stable` tolerance used for `WindowSummary::stable`.
    pub drift_tolerance: f64,
    /// RNG seed threaded into clustering.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 256,
            slide: None,
            baseline_windows: 4,
            k: 4,
            metric: Distance::Hamming,
            drift_tolerance: 1e-3,
            seed: 0,
        }
    }
}

/// Everything the summarizer emits when a window closes.
#[derive(Debug, Clone)]
pub struct WindowSummary {
    /// 0-based index of the closed window.
    pub index: usize,
    /// Queries newly arrived since the previous close
    /// (multiplicity-weighted, parsed or not). Tumbling: the whole window;
    /// sliding: the stride — the overlapping span's total is
    /// `log.total_queries()`.
    pub queries: u64,
    /// Distinct feature vectors in the window.
    pub distinct: usize,
    /// Distinct queries never seen in any earlier window — the size of the
    /// shard this window appended to the history.
    pub new_distinct: usize,
    /// The window's feature log (own codebook).
    pub log: QueryLog,
    /// Pattern mixture summary of the window.
    pub summary: LogRSummary,
    /// Drift vs the rolling baseline; `None` while the baseline is still
    /// empty (see the module docs' baseline rotation policy).
    pub drift: Option<DriftReport>,
    /// Nearest-baseline distance per distinct window query (empty while
    /// the baseline is still empty), in window-entry order.
    pub novelty: Vec<f64>,
    /// `drift.is_stable(config.drift_tolerance)`; windows without a
    /// baseline yet count as stable.
    pub stable: bool,
}

impl WindowSummary {
    /// Largest novelty score in the window (0 when none were computed).
    pub fn max_novelty(&self) -> f64 {
        self.novelty.iter().copied().fold(0.0, f64::max)
    }
}

/// Incremental summarizer over a stream of SQL statements.
#[derive(Debug)]
pub struct StreamSummarizer {
    config: StreamConfig,
    /// Statements in the current window scope (sliding keeps the overlap).
    buffer: VecDeque<(String, u64)>,
    /// Multiplicity-weighted total of `buffer`.
    buffer_total: u64,
    /// Queries since the last close (tumbling: equals `buffer_total`).
    since_close: u64,
    /// Statements not yet absorbed into the history (sliding only;
    /// tumbling reuses the window log). Kept separately from `buffer`
    /// rather than derived from its tail: a close's trim can evict a
    /// not-yet-absorbed statement when a single huge-multiplicity
    /// statement covers the whole window, and history absorption must
    /// never lose statements.
    pending: Vec<(String, u64)>,
    windows_closed: usize,
    /// Rotation backing the baseline: each closed stride's log with its
    /// offered-query count (parseable or not — exclusion spans are
    /// measured in offered queries).
    baseline_logs: VecDeque<(QueryLog, u64)>,
    /// Absorbed union of `baseline_logs`.
    baseline: QueryLog,
    /// Absorbed union of every closed window (global codebook).
    history: QueryLog,
    /// One shard per closed window: its never-seen-before distinct queries.
    shards: ShardedPointSet,
}

impl StreamSummarizer {
    /// New summarizer.
    ///
    /// # Panics
    /// Panics if `window == 0`, `slide == Some(0)`, `slide > window`,
    /// `baseline_windows == 0`, or `k == 0`.
    pub fn new(config: StreamConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        if let Some(s) = config.slide {
            assert!(s > 0, "slide must be positive");
            assert!(s <= config.window, "slide must not exceed the window");
        }
        assert!(config.baseline_windows > 0, "baseline_windows must be positive");
        assert!(config.k > 0, "k must be positive");
        StreamSummarizer {
            config,
            buffer: VecDeque::new(),
            buffer_total: 0,
            since_close: 0,
            pending: Vec::new(),
            windows_closed: 0,
            baseline_logs: VecDeque::new(),
            baseline: QueryLog::new(),
            history: QueryLog::new(),
            shards: ShardedPointSet::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> usize {
        self.windows_closed
    }

    /// The rolling drift baseline (absorbed union of recent windows).
    pub fn baseline(&self) -> &QueryLog {
        &self.baseline
    }

    /// The long-running history log (absorbed union of all closed
    /// windows; its distinct entries are exactly the sharded point set's
    /// points).
    pub fn history(&self) -> &QueryLog {
        &self.history
    }

    /// Queries buffered toward the next window close.
    pub fn buffered_queries(&self) -> u64 {
        self.since_close
    }

    /// Ingest one statement occurring `count` times. Returns the closed
    /// window's artifacts when this statement completes a window.
    pub fn ingest_with_count(&mut self, sql: &str, count: u64) -> Option<WindowSummary> {
        if count == 0 {
            return None;
        }
        self.buffer.push_back((sql.to_string(), count));
        self.buffer_total += count;
        self.since_close += count;
        if self.config.slide.is_some() {
            // Sliding only: the unseen stride differs from the (overlapping)
            // window buffer. Tumbling absorbs the window log itself.
            self.pending.push((sql.to_string(), count));
        }
        let due = match self.config.slide {
            None => self.since_close >= self.config.window,
            Some(slide) => self.buffer_total >= self.config.window && self.since_close >= slide,
        };
        due.then(|| self.close_window())
    }

    /// Ingest one statement (multiplicity 1).
    pub fn ingest(&mut self, sql: &str) -> Option<WindowSummary> {
        self.ingest_with_count(sql, 1)
    }

    /// Close a partial window (end of stream / forced checkpoint).
    /// `None` when nothing has arrived since the last close.
    pub fn flush(&mut self) -> Option<WindowSummary> {
        (self.since_close > 0).then(|| self.close_window())
    }

    /// Pattern mixture summary of **everything seen so far**, clustered
    /// over the sharded history's merged condensed matrix — one
    /// `k`-mixture for the whole stream at the cost of a dendrogram build,
    /// with zero recomputed distances. `None` before any distinct query
    /// has been absorbed.
    pub fn history_summary(&self) -> Option<LogRSummary> {
        if self.history.distinct_count() == 0 {
            return None;
        }
        let dist = self.shards.condensed(self.config.metric);
        Some(self.compressor().compress_condensed(&self.history, dist))
    }

    fn compressor(&self) -> LogR {
        LogR::new(LogRConfig {
            method: ClusterMethod::Hierarchical(self.config.metric),
            objective: CompressionObjective::FixedK(self.config.k),
            seed: self.config.seed,
            refine: None,
        })
    }

    fn ingest_statements<'a>(statements: impl IntoIterator<Item = &'a (String, u64)>) -> QueryLog {
        let mut ingest = LogIngest::new();
        for (sql, count) in statements {
            ingest.ingest_with_count(sql, *count);
        }
        ingest.finish().0
    }

    fn close_window(&mut self) -> WindowSummary {
        let window_queries = self.since_close;
        if self.config.slide.is_some() {
            // Trim to the most recent ≥ window queries before summarizing
            // (statement granularity: pop whole statements while the
            // remainder still covers a full window).
            while let Some(&(_, front)) = self.buffer.front() {
                if self.buffer_total - front < self.config.window {
                    break;
                }
                self.buffer_total -= front;
                self.buffer.pop_front();
            }
        }
        let window_log = Self::ingest_statements(self.buffer.iter());

        // Monitors run against the baseline *before* this window enters
        // the rotation — a window never judges itself.
        let (drift, novelty) = if self.baseline.total_queries() > 0 {
            (
                Some(feature_drift(&self.baseline, &window_log)),
                novelty_scores(&self.baseline, &window_log, self.config.metric),
            )
        } else {
            (None, Vec::new())
        };
        let stable = drift.as_ref().is_none_or(|d| d.is_stable(self.config.drift_tolerance));

        // Per-window mixture through the condensed path (the window's own
        // distances are fresh; its log is small by construction).
        let dist = PointSet::from_log(&window_log).distances(self.config.metric);
        let summary = self.compressor().compress_condensed(&window_log, dist);

        // Absorb only the unseen suffix (the stride) into the history, and
        // append its new distinct queries as one shard: window-close cost
        // stays proportional to the window, not the history. Tumbling
        // windows *are* the stride, so the already-parsed window log is
        // reused; sliding re-featurizes just the stride.
        let stride_log = match self.config.slide {
            Some(_) => {
                let log = Self::ingest_statements(self.pending.iter());
                self.pending.clear();
                log
            }
            None => window_log.clone(),
        };
        let prev_distinct = self.history.distinct_count();
        self.history.absorb(&stride_log);
        let new_entries: Vec<&QueryVector> =
            self.history.entries()[prev_distinct..].iter().map(|(v, _)| v).collect();
        let new_distinct = new_entries.len();
        self.shards.push_shard(&new_entries, self.history.num_features());

        // Rotate the baseline: the rotation holds stride logs (tumbling:
        // whole windows), and the rebuild skips the newest strides whose
        // queries a later window's span may still contain — queries a
        // window contains can never sit in its own baseline, so an
        // injection cannot zero its own novelty by contaminating the
        // baseline first. The exclusion span is the buffer actually
        // retained after this close's trim (0 for tumbling — the buffer is
        // about to clear): future windows only ever span a subset of that
        // buffer plus strides not yet closed, and the retained total —
        // unlike the nominal `window − slide` — already accounts for
        // statement-multiplicity overshoot at the trim boundary. Exclusion
        // walks stride *query* counts (flush closes variable-size strides;
        // a stride straddling the boundary is excluded whole).
        let overlap_span = match self.config.slide {
            None => 0,
            Some(_) => self.buffer_total,
        };
        self.baseline_logs.push_back((stride_log, window_queries));
        let mut skip = 0usize;
        let mut covered = 0u64;
        for (_, offered) in self.baseline_logs.iter().rev() {
            if covered >= overlap_span {
                break;
            }
            covered += offered;
            skip += 1;
        }
        while self.baseline_logs.len() - skip > self.config.baseline_windows {
            self.baseline_logs.pop_front();
        }
        let usable = self.baseline_logs.len() - skip;
        let mut baseline = QueryLog::new();
        for (log, _) in self.baseline_logs.iter().take(usable) {
            baseline.absorb(log);
        }
        self.baseline = baseline;

        // Advance the window (sliding keeps the overlap it just trimmed).
        if self.config.slide.is_none() {
            self.buffer.clear();
            self.buffer_total = 0;
        }
        self.since_close = 0;

        let index = self.windows_closed;
        self.windows_closed += 1;
        WindowSummary {
            index,
            queries: window_queries,
            distinct: window_log.distinct_count(),
            new_distinct,
            log: window_log,
            summary,
            drift,
            novelty,
            stable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn messaging(i: u64) -> String {
        match i % 3 {
            0 => "SELECT id, body FROM messages WHERE status = ?".into(),
            1 => "SELECT id FROM messages WHERE status = ? AND kind = ?".into(),
            _ => "SELECT sender FROM messages WHERE thread = ?".into(),
        }
    }

    fn banking(i: u64) -> String {
        match i % 2 {
            0 => "SELECT balance FROM accounts WHERE owner = ?".into(),
            _ => "SELECT balance, branch FROM accounts WHERE owner = ? AND open = ?".into(),
        }
    }

    #[test]
    fn three_window_stream_produces_summaries_and_drift() {
        // Acceptance scenario: 3 tumbling windows — steady, steady,
        // injected — each with a mixture summary and (from window 1 on) a
        // drift report.
        let mut s =
            StreamSummarizer::new(StreamConfig { window: 30, k: 2, ..StreamConfig::default() });
        let mut summaries = Vec::new();
        for i in 0..60 {
            if let Some(w) = s.ingest(&messaging(i)) {
                summaries.push(w);
            }
        }
        for i in 0..30 {
            let sql = if i % 10 == 9 {
                "SELECT password_hash FROM credentials".to_string() // injected
            } else {
                messaging(i)
            };
            if let Some(w) = s.ingest(&sql) {
                summaries.push(w);
            }
        }
        assert_eq!(summaries.len(), 3);
        assert_eq!(s.windows_closed(), 3);

        // Window 0: no baseline yet.
        assert!(summaries[0].drift.is_none());
        assert!(summaries[0].stable);
        assert_eq!(summaries[0].queries, 30);
        assert!(summaries[0].summary.mixture.k() >= 1);

        // Window 1: same workload — stable, no novel queries.
        let w1 = &summaries[1];
        assert!(w1.drift.is_some());
        assert!(w1.stable, "steady window flagged: {:?}", w1.drift);
        assert_eq!(w1.new_distinct, 0, "no new distinct queries in a repeat window");
        assert!(w1.max_novelty() < 1e-12);

        // Window 2: injected traffic — unstable, novel, new features.
        let w2 = &summaries[2];
        let drift = w2.drift.as_ref().unwrap();
        assert!(!w2.stable, "injected window not flagged: {drift:?}");
        assert!(drift.overall > 0.0);
        assert!(drift.new_features.iter().any(|f| f.contains("credentials")));
        assert!(w2.max_novelty() > 0.0);
        assert!(w2.new_distinct > 0);

        // History covers the whole stream; its sharded summary works.
        assert_eq!(s.history().total_queries(), 90);
        let hist = s.history_summary().unwrap();
        assert_eq!(hist.clustering.len(), s.history().distinct_count());
    }

    #[test]
    fn tumbling_windows_partition_the_stream() {
        let mut s = StreamSummarizer::new(StreamConfig { window: 10, ..StreamConfig::default() });
        let mut closed = 0;
        for i in 0..35 {
            if let Some(w) = s.ingest(&messaging(i)) {
                assert_eq!(w.queries, 10);
                closed += 1;
            }
        }
        assert_eq!(closed, 3);
        assert_eq!(s.buffered_queries(), 5);
        let tail = s.flush().unwrap();
        assert_eq!(tail.queries, 5);
        assert_eq!(tail.index, 3);
        assert!(s.flush().is_none());
        assert_eq!(s.history().total_queries(), 35);
    }

    #[test]
    fn sliding_windows_overlap_but_history_does_not_double_count() {
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            slide: Some(5),
            ..StreamConfig::default()
        });
        let mut summaries = Vec::new();
        for i in 0..40 {
            if let Some(w) = s.ingest(&messaging(i)) {
                summaries.push(w);
            }
        }
        // First close at 20, then every 5: 20, 25, 30, 35, 40.
        assert_eq!(summaries.len(), 5);
        // Each window spans the last `window` queries…
        for w in &summaries[1..] {
            assert_eq!(w.log.total_queries(), 20);
            // …but only the 5-query stride entered the history.
            assert_eq!(w.queries, 5);
        }
        assert_eq!(s.history().total_queries(), 40);
    }

    #[test]
    fn multiplicity_counts_toward_window_size() {
        let mut s = StreamSummarizer::new(StreamConfig { window: 100, ..StreamConfig::default() });
        assert!(s.ingest_with_count(&messaging(0), 60).is_none());
        assert!(s.ingest_with_count(&messaging(0), 0).is_none());
        let w = s.ingest_with_count(&messaging(1), 60).unwrap();
        // Window overshoots at statement granularity.
        assert_eq!(w.queries, 120);
        assert_eq!(w.distinct, 2);
    }

    #[test]
    fn baseline_rotation_ages_out_old_workloads() {
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            baseline_windows: 2,
            ..StreamConfig::default()
        });
        // Two messaging windows, then three banking windows.
        for i in 0..40 {
            s.ingest(&messaging(i));
        }
        let mut flagged = None;
        let mut later = None;
        for i in 0..60 {
            if let Some(w) = s.ingest(&banking(i)) {
                if w.index == 2 {
                    flagged = Some(w);
                } else if w.index == 4 {
                    later = Some(w);
                }
            }
        }
        // The switch is flagged against the messaging baseline…
        let flagged = flagged.unwrap();
        assert!(!flagged.stable);
        assert!(flagged.max_novelty() > 0.0);
        // …but after `baseline_windows` banking windows the baseline has
        // rotated: banking is the new normal.
        let later = later.unwrap();
        assert!(later.stable, "rotated baseline still flags banking: {:?}", later.drift);
        assert!(later.max_novelty() < 1e-12);
    }

    #[test]
    fn sliding_baseline_excludes_overlapping_strides() {
        // Regression: an injection must stay novel for every window whose
        // span contains it — the baseline skips the strides that overlap
        // the window under test, so the injection cannot zero its own
        // novelty by entering the baseline first.
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            slide: Some(5),
            baseline_windows: 4,
            ..StreamConfig::default()
        });
        let mut i = 0u64;
        for _ in 0..40 {
            s.ingest(&messaging(i));
            i += 1;
        }
        // Inject one query; it lives in the stream for the next 4
        // overlapping windows.
        s.ingest("SELECT password_hash FROM credentials");
        let mut flagged = 0;
        let mut inspected = 0;
        while inspected < 3 {
            if let Some(w) = s.ingest(&messaging(i)) {
                inspected += 1;
                assert!(
                    w.log.codebook().iter().any(|(_, f)| f.to_string().contains("credentials")),
                    "window {} should still span the injection",
                    w.index
                );
                assert!(
                    w.max_novelty() > 0.0,
                    "window {}: baseline contamination zeroed the injection's novelty",
                    w.index
                );
                if !w.stable {
                    flagged += 1;
                }
            }
            i += 1;
        }
        assert_eq!(flagged, 3, "every window spanning the injection must be flagged");
    }

    #[test]
    fn flush_sized_strides_do_not_contaminate_the_baseline() {
        // Regression: baseline exclusion must count *queries*, not
        // strides — `flush` closes strides of any size, and stride-count
        // exclusion lets a large pre-flush stride (whose tail later
        // windows still span) into the baseline, zeroing the novelty of
        // an injection it contains.
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            slide: Some(5),
            baseline_windows: 4,
            ..StreamConfig::default()
        });
        let mut i = 0u64;
        for _ in 0..18 {
            s.ingest(&messaging(i));
            i += 1;
        }
        s.ingest("SELECT password_hash FROM credentials"); // tail of stride 0
        s.ingest(&messaging(i)); // closes window 0 (20-query stride)
        i += 1;
        for _ in 0..2 {
            s.ingest(&messaging(i));
            i += 1;
        }
        s.flush(); // 2-query stride: stride sizes now vary
        let mut judged_windows = 0;
        for _ in 0..25 {
            if let Some(w) = s.ingest(&messaging(i)) {
                if w.drift.is_some() {
                    judged_windows += 1;
                    let contains_injection =
                        w.log.codebook().iter().any(|(_, f)| f.to_string().contains("credentials"));
                    if contains_injection {
                        assert!(
                            w.max_novelty() > 0.0,
                            "window {}: injection sits in its own baseline",
                            w.index
                        );
                    }
                }
            }
            i += 1;
        }
        // The baseline does become usable again once enough strides age
        // past the overlap — the guard is an exclusion, not a shutdown.
        assert!(judged_windows > 0, "baseline never became usable after the flush");
    }

    #[test]
    fn history_shards_match_monolithic_distances() {
        use logr_cluster::hierarchical_cluster_pointset;
        let mut s =
            StreamSummarizer::new(StreamConfig { window: 15, k: 2, ..StreamConfig::default() });
        for i in 0..30 {
            s.ingest(&messaging(i));
        }
        for i in 0..15 {
            s.ingest(&banking(i));
        }
        assert_eq!(s.windows_closed(), 3);
        // The streamed history summary equals a batch hierarchical
        // compression of the absorbed history log.
        let streamed = s.history_summary().unwrap();
        let points = PointSet::from_log(s.history());
        let weights: Vec<f64> = s.history().entries().iter().map(|&(_, c)| c as f64).collect();
        let dendro = hierarchical_cluster_pointset(&points, &weights, Distance::Hamming);
        assert_eq!(streamed.clustering, dendro.cut(2));
    }

    #[test]
    fn empty_stream_and_unparseable_windows_are_handled() {
        let mut s = StreamSummarizer::new(StreamConfig { window: 3, ..StreamConfig::default() });
        assert!(s.history_summary().is_none());
        assert!(s.flush().is_none());
        // A window of pure garbage still closes and keeps counting.
        for _ in 0..3 {
            s.ingest("THIS IS NOT SQL @@@");
        }
        assert_eq!(s.windows_closed(), 1);
        assert!(s.history_summary().is_none(), "no parsed queries yet");
        for i in 0..3 {
            s.ingest(&messaging(i));
        }
        assert_eq!(s.windows_closed(), 2);
        assert!(s.history_summary().is_some());
    }

    #[test]
    #[should_panic(expected = "slide must not exceed")]
    fn oversized_slide_rejected() {
        StreamSummarizer::new(StreamConfig {
            window: 10,
            slide: Some(11),
            ..StreamConfig::default()
        });
    }
}
