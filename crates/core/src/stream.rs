//! Streaming window summarization (paper §2/§5 "Online Database
//! Monitoring", made incremental — and, since PR 3, bounded-memory).
//!
//! [`StreamSummarizer`] ingests a live query stream one statement at a
//! time and turns it into a sequence of per-window artifacts instead of
//! re-clustering the whole log on every look:
//!
//! * a **pattern mixture summary** of each closed window (the same
//!   [`LogRSummary`] the batch compressor produces, via the
//!   condensed-matrix path);
//! * a **drift report** ([`feature_drift`]) and per-query **novelty
//!   scores** ([`novelty_scores`]) against a rolling baseline;
//! * an appendable **history**: each window's new distinct queries become
//!   one shard of a [`ShardedPointSet`], so a summary of *everything seen
//!   so far* ([`StreamSummarizer::history_summary`]) clusters over the
//!   merged condensed matrix without recomputing any pairwise distance.
//!
//! # Window semantics
//!
//! Windows are **count-based** by default and multiplicity-weighted: a
//! window closes once at least [`StreamConfig::window`] queries (not
//! statements — an `ingest_with_count(sql, 500)` contributes 500) have
//! accumulated, at a statement boundary (a single ingest call is atomic,
//! so a window may overshoot by the last statement's multiplicity).
//!
//! * **Tumbling** (`slide: None`): consecutive windows partition the
//!   stream; the buffer resets on close.
//! * **Sliding** (`slide: Some(s)`): after the first close at `window`
//!   queries, a window closes every `s` further queries and spans the most
//!   recent `≥ window` queries (trimmed at statement granularity), so
//!   consecutive windows overlap by `window − s`.
//!
//! Setting [`StreamConfig::time`] switches boundaries to **wall-clock
//! time** ([`TimeWindows`]; the count fields are then ignored): a window
//! closes when a statement arrives at or past the scheduled boundary —
//! the arriving statement belongs to the *next* window — and a sliding
//! window spans the half-open interval `[boundary − window_ms,
//! boundary)`, trimmed at statement granularity by timestamp. Boundaries
//! advance on a fixed grid anchored at the first statement's timestamp,
//! and closes are statement-driven: **at most one window closes per
//! arriving statement**. When an idle gap spans several scheduled
//! boundaries, the buffered queries are summarized once, at the first
//! elapsed boundary, and the grid then skips to the first boundary past
//! the arrival — the intermediate windows (including, for sliding
//! windows, ones that would have re-spanned part of the buffer) emit
//! nothing. Timestamps come from [`StreamSummarizer::ingest_at_ms`]
//! (tests inject a synthetic clock this way); the plain
//! [`StreamSummarizer::ingest`] front end stamps statements with the
//! system clock. Non-monotonic timestamps are clamped forward: a late
//! arrival is treated as landing now.
//!
//! Only the *unseen* suffix of the stream (the queries since the previous
//! close) is absorbed into the long-running history, so sliding windows
//! never double-count.
//!
//! # Parse caching across sliding closes
//!
//! A sliding close re-summarizes its overlap with the previous window.
//! Statements are therefore featurized through a per-statement cache of
//! their anonymized conjunctive branches
//! ([`logr_feature::anonymized_branches`]): a statement is parsed once
//! when first summarized and replayed from the cache for every later
//! close that still spans it, so a sliding window's parse cost is
//! proportional to the *stride*, not the window. The cache is reference-
//! counted by buffer membership (entries leave with the statements that
//! carried them), so it is bounded by the live window — and
//! [`StreamSummarizer::statements_parsed`] exposes the instrumented
//! parse counter the regression tests pin.
//!
//! # Bounded memory (out-of-core history shards)
//!
//! The history's per-shard mismatch buffers grow quadratically with the
//! distinct-query count, so an unbounded run eventually cannot keep them
//! all resident. [`StreamSummarizer::spill_to`] attaches the persistent
//! shard store (`logr-cluster::spill`) with a resident-byte budget:
//! after every window close, the oldest closed shards are
//! evicted to disk and reload transparently when
//! [`StreamSummarizer::history_summary`] (or any distance read) needs
//! them. Window summaries, drift reports, and history summaries are
//! **bit-identical** to an unbounded run — the store holds integer
//! mismatch counts and bit-packed points, never floats — and
//! [`StreamSummarizer::resident_shard_bytes`] stays within the budget
//! between closes (bulk merges transiently add at most one shard).
//!
//! # Baseline rotation policy
//!
//! The drift baseline is the absorbed union of the most recent
//! [`StreamConfig::baseline_windows`] **closed strides** (tumbling: whole
//! windows), excluding any stride that still falls inside the next
//! window's span — so no window is ever judged against queries it itself
//! contains, even when sliding windows overlap. Windows closed before the
//! baseline holds any queries report `drift: None` and count as stable
//! (tumbling: just the first window; sliding: the first
//! `window / slide + baseline_windows − 1` closes, roughly). A slow
//! workload shift ages out of the baseline after `baseline_windows`
//! strides, while a sudden injection is judged against a baseline it has
//! not yet contaminated. Rebuild cost is `O(baseline_windows · window)`
//! per close — proportional to the window, never to the history.
//!
//! # Cost model
//!
//! Closing a window of `w` distinct queries against a history of `h`
//! costs `O(w²)` for the window's own condensed matrix plus `O(h·w_new)`
//! for the history shard's cross block (`w_new` = distinct queries never
//! seen before, typically ≪ `w`) — both on scoped threads under the
//! `parallel` feature. The monolithic alternative re-pays `O((h + w)²)`
//! per window.

use crate::compress::{CompressionObjective, LogR, LogRConfig, LogRSummary};
use crate::drift::{feature_drift, novelty_scores, DriftReport};
use logr_cluster::{
    ClusterMethod, CompactionStats, Distance, PointSet, ShardedPointSet, SpillConfig, SpillError,
};
use logr_feature::{QueryLog, QueryVector};
use logr_source::{FeatureBranch, Featurizer, SourceConfig, SourceError};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

/// Wall-clock window boundaries (milliseconds).
#[derive(Debug, Clone, Copy)]
pub struct TimeWindows {
    /// Window span in milliseconds.
    pub window_ms: u64,
    /// `None` for tumbling windows; `Some(s)` slides the boundary by `s`
    /// milliseconds (the window still spans `window_ms`).
    pub slide_ms: Option<u64>,
}

/// Streaming summarization configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Queries per window (multiplicity-weighted). Ignored when `time` is
    /// set.
    pub window: u64,
    /// `None` for tumbling windows; `Some(s)` slides by `s` queries.
    /// Ignored when `time` is set.
    pub slide: Option<u64>,
    /// `Some` switches window boundaries from query counts to wall-clock
    /// time (see the module docs).
    pub time: Option<TimeWindows>,
    /// How many recent closed windows form the drift baseline (≥ 1).
    pub baseline_windows: usize,
    /// Clusters per window summary (and for history summaries).
    pub k: usize,
    /// Distance measure for clustering and novelty scoring.
    pub metric: Distance,
    /// `DriftReport::is_stable` tolerance used for `WindowSummary::stable`.
    pub drift_tolerance: f64,
    /// RNG seed threaded into clustering.
    pub seed: u64,
    /// Which featurizer turns raw records into feature branches: the SQL
    /// pipeline (the default) or the Drain-style template miner for
    /// free-form service logs (see `logr-source`).
    pub source: SourceConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 256,
            slide: None,
            time: None,
            baseline_windows: 4,
            k: 4,
            metric: Distance::Hamming,
            drift_tolerance: 1e-3,
            seed: 0,
            source: SourceConfig::Sql,
        }
    }
}

impl StreamConfig {
    /// Check the configuration, returning the first violated rule as
    /// data. The one definition of validity: [`StreamSummarizer::new`]
    /// panics with exactly this message, and fallible front ends
    /// (`logr::Engine`'s builder and recovery path, which must reject a
    /// checksum-valid manifest carrying an invalid configuration without
    /// panicking) surface it as a typed error.
    pub fn validate(&self) -> Result<(), &'static str> {
        match self.time {
            Some(t) => {
                if t.window_ms == 0 {
                    return Err("time window must be positive");
                }
                if let Some(s) = t.slide_ms {
                    if s == 0 {
                        return Err("time slide must be positive");
                    }
                    if s > t.window_ms {
                        return Err("time slide must not exceed the window");
                    }
                }
            }
            None => {
                if self.window == 0 {
                    return Err("window must be positive");
                }
                if let Some(s) = self.slide {
                    if s == 0 {
                        return Err("slide must be positive");
                    }
                    if s > self.window {
                        return Err("slide must not exceed the window");
                    }
                }
            }
        }
        if self.baseline_windows == 0 {
            return Err("baseline_windows must be positive");
        }
        if self.k == 0 {
            return Err("k must be positive");
        }
        self.source.validate()?;
        Ok(())
    }

    /// The compressor configuration every summary derived from this
    /// stream uses — the one definition behind both
    /// [`StreamSummarizer::history_summary`] and `logr::Engine` snapshot
    /// summaries, which are documented as bit-identical at the same
    /// boundary and therefore must never construct this independently.
    pub fn compressor_config(&self) -> LogRConfig {
        LogRConfig {
            method: ClusterMethod::Hierarchical(self.metric),
            objective: CompressionObjective::FixedK(self.k),
            seed: self.seed,
            refine: None,
        }
    }
}

/// Everything the summarizer emits when a window closes.
#[derive(Debug, Clone)]
pub struct WindowSummary {
    /// 0-based index of the closed window.
    pub index: usize,
    /// Queries newly arrived since the previous close
    /// (multiplicity-weighted, parsed or not). Tumbling: the whole window;
    /// sliding: the stride — the overlapping span's total is
    /// `log.total_queries()`.
    pub queries: u64,
    /// Distinct feature vectors in the window.
    pub distinct: usize,
    /// Distinct queries never seen in any earlier window — the size of the
    /// shard this window appended to the history.
    pub new_distinct: usize,
    /// The boundary timestamp that closed a time-based window
    /// (milliseconds; the window spans `[closed_at_ms − window_ms,
    /// closed_at_ms)`). `None` for count-based windows.
    pub closed_at_ms: Option<u64>,
    /// The window's feature log (own codebook).
    pub log: QueryLog,
    /// Pattern mixture summary of the window.
    pub summary: LogRSummary,
    /// Drift vs the rolling baseline; `None` while the baseline is still
    /// empty (see the module docs' baseline rotation policy).
    pub drift: Option<DriftReport>,
    /// Nearest-baseline distance per distinct window query (empty while
    /// the baseline is still empty), in window-entry order.
    pub novelty: Vec<f64>,
    /// `drift.is_stable(config.drift_tolerance)`; windows without a
    /// baseline yet count as stable.
    pub stable: bool,
}

impl WindowSummary {
    /// Largest novelty score in the window (0 when none were computed).
    pub fn max_novelty(&self) -> f64 {
        self.novelty.iter().copied().fold(0.0, f64::max)
    }
}

/// Cached featurization of one distinct statement: its feature branches
/// (from the configured [`Featurizer`]), computed lazily at first
/// summarization, plus a reference count of how many live buffer/pending
/// entries carry it.
#[derive(Debug, Default)]
struct CacheSlot {
    branches: Option<Vec<FeatureBranch>>,
    refs: usize,
}

/// Everything a [`StreamSummarizer`] needs beyond its configuration and
/// shard store to resume mid-stream: the complete, plain-data snapshot
/// `logr::Engine` persists in its store manifest and feeds back through
/// [`StreamSummarizer::from_state`] on recovery. A summarizer restored
/// from its exported state (plus a [`ShardedPointSet`] rebuilt from the
/// same store) continues **bit-identically** — every later window
/// summary, drift report, novelty vector, and history summary matches a
/// summarizer that never round-tripped.
#[derive(Debug, Clone)]
pub struct StreamState {
    /// Statements in the current window scope: `(sql, multiplicity,
    /// arrival ms)` in arrival order.
    pub buffer: Vec<(String, u64, u64)>,
    /// Statements not yet absorbed into the history (sliding windows).
    pub pending: Vec<(String, u64)>,
    /// Queries since the last close.
    pub since_close: u64,
    /// Next scheduled time boundary (time mode).
    pub next_close_ms: Option<u64>,
    /// Largest timestamp seen.
    pub last_ts_ms: u64,
    /// Windows closed so far.
    pub windows_closed: usize,
    /// The parse-counter reading (restored for continuity; statements
    /// still in the buffer re-parse lazily after a restore, so the
    /// counter may run ahead of a never-restored run — parse *caching* is
    /// an optimization, never an output bit).
    pub statements_parsed: u64,
    /// The baseline rotation: each closed stride's log with its
    /// offered-query count.
    pub baseline_logs: Vec<(QueryLog, u64)>,
    /// The materialized drift baseline as of the last close. Stored
    /// rather than recomputed: the rotation's exclusion walk depends on
    /// the buffer total *at close time*, which post-close arrivals have
    /// since changed.
    pub baseline: QueryLog,
    /// Absorbed union of every closed window.
    pub history: QueryLog,
    /// The featurizer's exported journal ([`Featurizer::export_journal`];
    /// empty for stateless sources). Replayed through the same mining
    /// code on restore, so the rebuilt featurizer — and therefore every
    /// later feature bit — matches the live one exactly.
    pub source_state: Vec<u8>,
}

/// Everything one window close changed in the resumable state — the
/// `O(window)` increment a delta-log persister appends instead of
/// re-encoding the whole [`StreamState`]. Scalars and the window buffer
/// are recorded **absolutely** (replay overwrites); the history is
/// recorded as the close's `stride_log` (replay absorbs); the baseline
/// rotation is recorded as its *inputs* — the same stride plus the
/// weight and exclusion span the close fed it — and replay reruns the
/// deterministic rotation ([`rotate_baseline`], the one function both
/// sides call). Nothing in the record scales with the history or the
/// rotation depth. Captured at the end of the ingest (or flush) call
/// that closed the window — after a time-mode arrival has landed in the
/// next window's buffer — so applying it to the pre-close state
/// reproduces exactly what [`StreamSummarizer::export_state`] would
/// emit.
#[derive(Debug, Clone)]
pub struct CloseDelta {
    /// Post-close buffer: `(sql, multiplicity, arrival ms)`.
    pub buffer: Vec<(String, u64, u64)>,
    /// Post-close not-yet-absorbed statements (sliding windows).
    pub pending: Vec<(String, u64)>,
    /// Queries since this close (0, unless a time-mode arrival already
    /// started the next window).
    pub since_close: u64,
    /// Next scheduled time boundary (time mode).
    pub next_close_ms: Option<u64>,
    /// Largest timestamp seen.
    pub last_ts_ms: u64,
    /// Windows closed, including this one.
    pub windows_closed: usize,
    /// Parse-counter reading after the close.
    pub statements_parsed: u64,
    /// The stride this close absorbed into the history and pushed into
    /// the baseline rotation — the one non-scalar piece of the record.
    pub stride_log: QueryLog,
    /// Offered-query weight the rotation paired with `stride_log`.
    pub window_queries: u64,
    /// Exclusion span the rotation's skip walk used *at close time* (the
    /// buffer total retained after the trim; 0 for tumbling). Recorded
    /// rather than rederived because post-close arrivals change the live
    /// buffer before the delta is captured.
    pub overlap_span: u64,
    /// The featurizer's journal increment since the previous close
    /// ([`Featurizer::drain_events`]; empty for stateless sources).
    /// Concatenating every close's increment onto the base state's
    /// journal reproduces the full journal, so replay appends these bytes
    /// to [`StreamState::source_state`].
    pub source_events: Vec<u8>,
}

/// One close's baseline rotation, factored out so the live close path
/// and delta-log replay run **the same code** and cannot drift: push the
/// stride (with its offered-query weight) into the rotation, skip the
/// newest strides whose queries the retained buffer may still span
/// (`overlap_span`, walked in offered-query counts — a stride straddling
/// the boundary is excluded whole), trim the front to `baseline_windows`
/// usable strides, and return the rebuilt baseline (the absorbed union
/// of the usable prefix). See `close_window` for why the exclusion
/// exists (a window's own queries must never sit in its baseline).
pub fn rotate_baseline(
    rotation: &mut VecDeque<(QueryLog, u64)>,
    stride_log: QueryLog,
    window_queries: u64,
    overlap_span: u64,
    baseline_windows: usize,
) -> QueryLog {
    rotation.push_back((stride_log, window_queries));
    let mut skip = 0usize;
    let mut covered = 0u64;
    for (_, offered) in rotation.iter().rev() {
        if covered >= overlap_span {
            break;
        }
        covered += offered;
        skip += 1;
    }
    while rotation.len() - skip > baseline_windows {
        rotation.pop_front();
    }
    let usable = rotation.len() - skip;
    let mut baseline = QueryLog::new();
    for (log, _) in rotation.iter().take(usable) {
        baseline.absorb(log);
    }
    baseline
}

/// Incremental summarizer over a stream of SQL statements.
#[derive(Debug)]
pub struct StreamSummarizer {
    config: StreamConfig,
    /// Statements in the current window scope (sliding keeps the overlap),
    /// with multiplicity and arrival timestamp (ms; 0 in count mode).
    buffer: VecDeque<(String, u64, u64)>,
    /// Multiplicity-weighted total of `buffer`.
    buffer_total: u64,
    /// Queries since the last close (tumbling: equals `buffer_total`).
    since_close: u64,
    /// Statements not yet absorbed into the history (sliding only;
    /// tumbling reuses the window log). Kept separately from `buffer`
    /// rather than derived from its tail: a close's trim can evict a
    /// not-yet-absorbed statement when a single huge-multiplicity
    /// statement covers the whole window, and history absorption must
    /// never lose statements.
    pending: Vec<(String, u64)>,
    /// Per-statement featurization cache (see the module docs).
    cache: HashMap<String, CacheSlot>,
    /// Statements actually parsed (cache misses) — the instrumented
    /// counter behind [`StreamSummarizer::statements_parsed`].
    parses: u64,
    /// Next scheduled time boundary (time mode; `None` until the first
    /// statement anchors the grid).
    next_close_ms: Option<u64>,
    /// Largest timestamp seen (time mode's monotonic clamp).
    last_ts_ms: u64,
    windows_closed: usize,
    /// Rotation backing the baseline: each closed stride's log with its
    /// offered-query count (parseable or not — exclusion spans are
    /// measured in offered queries).
    baseline_logs: VecDeque<(QueryLog, u64)>,
    /// Absorbed union of `baseline_logs`. `Arc`-backed so snapshot
    /// publication shares it instead of cloning; closes mutate through
    /// [`Arc::make_mut`], which copies only while a reader still holds
    /// the previous publication.
    baseline: Arc<QueryLog>,
    /// Absorbed union of every closed window (global codebook).
    /// `Arc`-backed for the same reason — this is the `O(distinct)`
    /// structure snapshot capture must not clone per close.
    history: Arc<QueryLog>,
    /// What the most recent window close changed (see [`CloseDelta`]);
    /// taken by delta-log persisters via
    /// [`StreamSummarizer::take_close_delta`].
    last_close_delta: Option<Box<CloseDelta>>,
    /// Exclusion span the most recent close's rotation used, staged here
    /// because `note_close_delta` runs after a time-mode arrival may
    /// have already grown the buffer past its at-close total.
    last_overlap_span: u64,
    /// Record → feature-branch mapping (SQL pipeline or template miner);
    /// stateful miners journal through it for bit-identical recovery.
    featurizer: Box<dyn Featurizer>,
    /// One shard per closed window: its never-seen-before distinct queries.
    shards: ShardedPointSet,
    /// Set when a window close failed against the spill store: the
    /// history log and the shard store may disagree, so every later
    /// operation refuses with a typed error instead of serving wrong
    /// summaries. Recover by reopening from the last persisted state.
    wedged: bool,
}

impl StreamSummarizer {
    /// New summarizer.
    ///
    /// # Panics
    /// Panics if `window == 0`, `slide == Some(0)`, `slide > window`
    /// (likewise for the `time` fields), `baseline_windows == 0`, or
    /// `k == 0`.
    pub fn new(config: StreamConfig) -> Self {
        if let Err(detail) = config.validate() {
            // lint:allow(no-panic-paths): documented "# Panics" constructor contract — a zero window is a programming error caught at build time, not a runtime condition
            panic!("{detail}");
        }
        StreamSummarizer {
            config,
            buffer: VecDeque::new(),
            buffer_total: 0,
            since_close: 0,
            pending: Vec::new(),
            cache: HashMap::new(),
            parses: 0,
            next_close_ms: None,
            last_ts_ms: 0,
            windows_closed: 0,
            baseline_logs: VecDeque::new(),
            baseline: Arc::new(QueryLog::new()),
            history: Arc::new(QueryLog::new()),
            last_close_delta: None,
            last_overlap_span: 0,
            featurizer: config.source.featurizer(),
            shards: ShardedPointSet::new(),
            wedged: false,
        }
    }

    /// Export the resumable state (see [`StreamState`]). The shard store
    /// travels separately — `logr::Engine` persists it as spill files and
    /// rebuilds it with [`ShardedPointSet::from_spilled_files`].
    pub fn export_state(&self) -> StreamState {
        StreamState {
            buffer: self.buffer.iter().cloned().collect(),
            pending: self.pending.clone(),
            since_close: self.since_close,
            next_close_ms: self.next_close_ms,
            last_ts_ms: self.last_ts_ms,
            windows_closed: self.windows_closed,
            statements_parsed: self.parses,
            baseline_logs: self.baseline_logs.iter().cloned().collect(),
            baseline: (*self.baseline).clone(),
            history: (*self.history).clone(),
            source_state: self.featurizer.export_journal(),
        }
    }

    /// Rebuild a summarizer from an exported state and a shard store
    /// recovered from the same checkpoint. The featurization cache
    /// restarts cold (buffered statements re-parse lazily on the next
    /// close — parse caching never changes an output bit).
    ///
    /// # Panics
    /// Panics on an invalid `config` (same contract as
    /// [`StreamSummarizer::new`]), when `shards` and `state.history`
    /// disagree on point count or universe width, or when the featurizer
    /// journal fails to replay — callers recovering from untrusted
    /// storage (the engine) use [`StreamSummarizer::try_from_state`] and
    /// report that as a typed error.
    pub fn from_state(config: StreamConfig, state: StreamState, shards: ShardedPointSet) -> Self {
        Self::try_from_state(config, state, shards)
            // lint:allow(no-panic-paths): documented "# Panics" contract of the legacy infallible restore; try_from_state is the typed-error route the Engine uses
            .unwrap_or_else(|e| panic!("featurizer journal failed to replay: {e}"))
    }

    /// Fallible [`StreamSummarizer::from_state`]: an `Err` means the
    /// featurizer journal in `state.source_state` is corrupt or belongs
    /// to a different source kind. Shard/history consistency stays a
    /// panic contract (callers validate it first).
    pub fn try_from_state(
        config: StreamConfig,
        state: StreamState,
        shards: ShardedPointSet,
    ) -> Result<Self, SourceError> {
        let mut s = StreamSummarizer::new(config);
        // Journal replay runs first: a corrupt journal must surface as
        // the typed error even when the caller's shard store is also
        // suspect (the asserts below are a validated-input contract).
        s.featurizer.replay(&state.source_state)?;
        assert_eq!(
            shards.len(),
            state.history.distinct_count(),
            "shard store and history log disagree on the distinct-point count"
        );
        assert_eq!(
            shards.n_features(),
            state.history.num_features(),
            "shard store and history log disagree on the feature universe"
        );
        for (sql, count, ts) in &state.buffer {
            s.cache_acquire(sql);
            s.buffer.push_back((sql.clone(), *count, *ts));
            s.buffer_total += *count;
        }
        for (sql, count) in &state.pending {
            s.cache_acquire(sql);
            s.pending.push((sql.clone(), *count));
        }
        s.since_close = state.since_close;
        s.next_close_ms = state.next_close_ms;
        s.last_ts_ms = state.last_ts_ms;
        s.windows_closed = state.windows_closed;
        s.parses = state.statements_parsed;
        s.baseline_logs = state.baseline_logs.into();
        s.baseline = Arc::new(state.baseline);
        s.history = Arc::new(state.history);
        s.shards = shards;
        Ok(s)
    }

    /// The configuration in force.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> usize {
        self.windows_closed
    }

    /// The rolling drift baseline (absorbed union of recent windows).
    pub fn baseline(&self) -> &QueryLog {
        &self.baseline
    }

    /// The long-running history log (absorbed union of all closed
    /// windows; its distinct entries are exactly the sharded point set's
    /// points).
    pub fn history(&self) -> &QueryLog {
        &self.history
    }

    /// Shared handle to the history log — `O(1)`, no clone. The handle
    /// is a point-in-time publication: the next window close copies the
    /// log out from under it ([`Arc::make_mut`]) rather than mutating
    /// what the holder sees.
    pub fn history_arc(&self) -> Arc<QueryLog> {
        Arc::clone(&self.history)
    }

    /// Shared handle to the drift baseline — same semantics as
    /// [`StreamSummarizer::history_arc`].
    pub fn baseline_arc(&self) -> Arc<QueryLog> {
        Arc::clone(&self.baseline)
    }

    /// Take what the most recent window close changed (see
    /// [`CloseDelta`]), or `None` when no window has closed since the
    /// last take. Delta-log persisters call this once per close; leaving
    /// deltas untaken is harmless (each close overwrites the last), but a
    /// taker must then persist a **full** state export, because the
    /// overwritten closes' stride absorptions are gone from the delta
    /// stream.
    pub fn take_close_delta(&mut self) -> Option<Box<CloseDelta>> {
        self.last_close_delta.take()
    }

    /// The sharded history matrix (for store diagnostics; summaries go
    /// through [`StreamSummarizer::history_summary`]).
    pub fn shard_store(&self) -> &ShardedPointSet {
        &self.shards
    }

    /// Queries buffered toward the next window close.
    pub fn buffered_queries(&self) -> u64 {
        self.since_close
    }

    /// Statements parsed so far (cache misses — repeats and sliding
    /// overlaps replay cached branches instead of re-parsing).
    pub fn statements_parsed(&self) -> u64 {
        self.parses
    }

    /// Bound resident memory: spill closed history shards to `dir` in the
    /// `logr-cluster::spill` format, keeping at most `resident_budget`
    /// payload bytes in memory (the newest shard is pinned; see
    /// [`ShardedPointSet::set_spill`]). Summaries are bit-identical to an
    /// unbounded run. Can be called before or during a stream.
    pub fn spill_to(
        &mut self,
        dir: impl Into<PathBuf>,
        resident_budget: usize,
    ) -> Result<(), SpillError> {
        self.shards.set_spill(SpillConfig { dir: dir.into(), resident_budget })
    }

    /// [`StreamSummarizer::spill_to`] with shard I/O routed through `vfs`
    /// (see [`logr_cluster::vfs`]) — the injection point the engine's
    /// fault tests use.
    pub fn spill_to_with(
        &mut self,
        vfs: std::sync::Arc<dyn logr_cluster::vfs::Vfs>,
        dir: impl Into<PathBuf>,
        resident_budget: usize,
    ) -> Result<(), SpillError> {
        self.shards.set_vfs(vfs);
        self.spill_to(dir, resident_budget)
    }

    /// Re-bound the resident budget of an already-attached spill store
    /// (see [`ShardedPointSet::set_resident_budget`]); no-op without one.
    /// Summaries are unaffected — the budget only governs which shard
    /// payloads stay resident in memory.
    pub fn set_resident_budget(&mut self, bytes: usize) -> Result<(), SpillError> {
        self.shards.set_resident_budget(bytes)
    }

    /// Resident history-shard payload bytes (see
    /// [`ShardedPointSet::resident_bytes`]).
    pub fn resident_shard_bytes(&self) -> usize {
        self.shards.resident_bytes()
    }

    /// History shards currently on disk only.
    pub fn spilled_shards(&self) -> usize {
        self.shards.spilled_shards()
    }

    /// True when windows slide (count- or time-based).
    fn is_sliding(&self) -> bool {
        match self.config.time {
            Some(t) => t.slide_ms.is_some(),
            None => self.config.slide.is_some(),
        }
    }

    /// Ingest one statement occurring `count` times. Returns the closed
    /// window's artifacts when this statement completes a window. In time
    /// mode the statement is stamped with the system clock; use
    /// [`StreamSummarizer::ingest_at_ms`] to supply timestamps.
    ///
    /// # Panics
    /// Panics on a spill-store failure during a window close
    /// ([`StreamSummarizer::try_ingest_with_count`] reports that as a
    /// typed error instead).
    pub fn ingest_with_count(&mut self, sql: &str, count: u64) -> Option<WindowSummary> {
        self.try_ingest_with_count(sql, count)
            // lint:allow(no-panic-paths): documented "# Panics" contract of the legacy infallible ingest; try_ingest_with_count is the typed-error route the Engine uses
            .unwrap_or_else(|e| panic!("shard spill store failed during append: {e}"))
    }

    /// Ingest one statement (multiplicity 1).
    ///
    /// # Panics
    /// Panics on a spill-store failure during a window close
    /// ([`StreamSummarizer::try_ingest`] reports that as a typed error
    /// instead).
    pub fn ingest(&mut self, sql: &str) -> Option<WindowSummary> {
        self.ingest_with_count(sql, 1)
    }

    /// Ingest one statement occurring `count` times at timestamp `ts_ms`.
    ///
    /// # Panics
    /// Panics on a spill-store failure during a window close
    /// ([`StreamSummarizer::try_ingest_at_ms`] reports that as a typed
    /// error instead).
    pub fn ingest_at_ms(&mut self, sql: &str, count: u64, ts_ms: u64) -> Option<WindowSummary> {
        self.try_ingest_at_ms(sql, count, ts_ms)
            // lint:allow(no-panic-paths): documented "# Panics" contract of the legacy infallible ingest; try_ingest_at_ms is the typed-error route
            .unwrap_or_else(|e| panic!("shard spill store failed during append: {e}"))
    }

    /// Fallible [`StreamSummarizer::ingest_with_count`] — the flavor
    /// `logr::Engine` routes through, so store failures surface as typed
    /// errors on its one error type instead of panics.
    pub fn try_ingest_with_count(
        &mut self,
        sql: &str,
        count: u64,
    ) -> Result<Option<WindowSummary>, SpillError> {
        let ts = if self.config.time.is_some() { Self::wall_clock_ms() } else { 0 };
        self.try_ingest_at_ms(sql, count, ts)
    }

    /// Fallible [`StreamSummarizer::ingest`].
    pub fn try_ingest(&mut self, sql: &str) -> Result<Option<WindowSummary>, SpillError> {
        self.try_ingest_with_count(sql, 1)
    }

    /// Ingest one raw record through the configured source. This is the
    /// source-agnostic spelling of [`StreamSummarizer::ingest`]: the
    /// record is a SQL statement under [`SourceConfig::Sql`] and a
    /// free-form service-log line under [`SourceConfig::Template`] —
    /// nothing on this path assumes SQL.
    ///
    /// # Panics
    /// Panics on a spill-store failure during a window close
    /// ([`StreamSummarizer::try_ingest_record`] reports that as a typed
    /// error instead).
    pub fn ingest_record(&mut self, text: &str) -> Option<WindowSummary> {
        self.ingest(text)
    }

    /// [`StreamSummarizer::ingest_record`] with a multiplicity.
    ///
    /// # Panics
    /// Same contract as [`StreamSummarizer::ingest_with_count`].
    pub fn ingest_record_with_count(&mut self, text: &str, count: u64) -> Option<WindowSummary> {
        self.ingest_with_count(text, count)
    }

    /// Fallible [`StreamSummarizer::ingest_record`].
    pub fn try_ingest_record(&mut self, text: &str) -> Result<Option<WindowSummary>, SpillError> {
        self.try_ingest_with_count(text, 1)
    }

    /// Fallible [`StreamSummarizer::ingest_record_with_count`].
    pub fn try_ingest_record_with_count(
        &mut self,
        text: &str,
        count: u64,
    ) -> Result<Option<WindowSummary>, SpillError> {
        self.try_ingest_with_count(text, count)
    }

    /// The featurizer in force (the SQL pipeline or the template miner).
    pub fn featurizer(&self) -> &dyn Featurizer {
        self.featurizer.as_ref()
    }

    /// Ingest one statement occurring `count` times at timestamp `ts_ms`
    /// (milliseconds on any monotone clock — tests drive a synthetic
    /// one). In time mode, a statement at or past the scheduled boundary
    /// first closes the elapsed window (the statement itself lands in the
    /// next one); in count mode the timestamp is recorded but boundaries
    /// stay count-driven.
    ///
    /// An `Err` means a window close failed against the spill store. The
    /// summarizer is then **wedged** — its history log and shard store
    /// may disagree, so every later call returns an error rather than
    /// risking silently wrong summaries; recover by rebuilding from the
    /// last persisted state ([`StreamSummarizer::from_state`]).
    pub fn try_ingest_at_ms(
        &mut self,
        sql: &str,
        count: u64,
        ts_ms: u64,
    ) -> Result<Option<WindowSummary>, SpillError> {
        self.check_wedged()?;
        if count == 0 {
            return Ok(None);
        }
        self.last_ts_ms = self.last_ts_ms.max(ts_ms);
        let ts = self.last_ts_ms;

        let mut closed = None;
        if let Some(tw) = self.config.time {
            match self.next_close_ms {
                // First statement anchors the boundary grid.
                None => self.next_close_ms = Some(ts.saturating_add(tw.window_ms)),
                Some(boundary) if ts >= boundary => {
                    if self.since_close > 0 {
                        closed = Some(self.close_window(Some(boundary))?);
                    }
                    // Advance on the fixed grid past the arrival: a gap's
                    // elapsed windows collapse into the close above (one
                    // close per arriving statement, by contract). Computed
                    // arithmetically — a loop would spin O(gap / step)
                    // per arrival, and never terminate at ts = u64::MAX.
                    let step = tw.slide_ms.unwrap_or(tw.window_ms);
                    let skipped = ((ts - boundary) / step).saturating_add(1);
                    self.next_close_ms =
                        Some(boundary.saturating_add(step.saturating_mul(skipped)));
                }
                Some(_) => {}
            }
        }

        self.cache_acquire(sql);
        self.buffer.push_back((sql.to_string(), count, ts));
        self.buffer_total += count;
        self.since_close += count;
        if self.is_sliding() {
            // Sliding only: the unseen stride differs from the (overlapping)
            // window buffer. Tumbling absorbs the window log itself.
            self.cache_acquire(sql);
            self.pending.push((sql.to_string(), count));
        }

        if self.config.time.is_none() {
            let due = match self.config.slide {
                None => self.since_close >= self.config.window,
                Some(slide) => self.buffer_total >= self.config.window && self.since_close >= slide,
            };
            if due {
                let summary = self.close_window(None)?;
                self.note_close_delta();
                return Ok(Some(summary));
            }
        }
        if closed.is_some() {
            // Time-mode close: captured only now, after the arriving
            // statement joined the next window's buffer.
            self.note_close_delta();
        }
        Ok(closed)
    }

    /// Close a partial window (end of stream / forced checkpoint).
    /// `None` when nothing has arrived since the last close. Time mode
    /// closes at "now" — just past the last seen timestamp.
    ///
    /// # Panics
    /// Panics on a spill-store failure during the close
    /// ([`StreamSummarizer::try_flush`] reports that as a typed error
    /// instead).
    pub fn flush(&mut self) -> Option<WindowSummary> {
        // lint:allow(no-panic-paths): documented "# Panics" contract of the legacy infallible flush; try_flush is the typed-error route
        self.try_flush().unwrap_or_else(|e| panic!("shard spill store failed during append: {e}"))
    }

    /// Fallible [`StreamSummarizer::flush`].
    pub fn try_flush(&mut self) -> Result<Option<WindowSummary>, SpillError> {
        self.check_wedged()?;
        let boundary = self.config.time.map(|_| self.last_ts_ms.saturating_add(1));
        if self.since_close > 0 {
            let summary = self.close_window(boundary)?;
            self.note_close_delta();
            Ok(Some(summary))
        } else {
            Ok(None)
        }
    }

    /// `Err` when an earlier close wedged the summarizer.
    fn check_wedged(&self) -> Result<(), SpillError> {
        if self.wedged {
            return Err(SpillError::Corrupt(
                "stream summarizer wedged by an earlier spill-store failure; \
                 rebuild it from the last persisted state",
            ));
        }
        Ok(())
    }

    /// Pattern mixture summary of **everything seen so far**, clustered
    /// over the sharded history's merged condensed matrix — one
    /// `k`-mixture for the whole stream at the cost of a dendrogram build,
    /// with zero recomputed distances (spilled shards stream through the
    /// merge one at a time). `None` before any distinct query has been
    /// absorbed.
    ///
    /// # Panics
    /// Panics if a spilled shard cannot be reloaded
    /// ([`StreamSummarizer::try_history_summary`] reports that as a typed
    /// error instead).
    pub fn history_summary(&self) -> Option<LogRSummary> {
        self.try_history_summary()
            // lint:allow(no-panic-paths): documented "# Panics" contract of the legacy infallible summary; try_history_summary is the typed-error route
            .unwrap_or_else(|e| panic!("history summary over the spill store failed: {e}"))
    }

    /// Fallible [`StreamSummarizer::history_summary`].
    pub fn try_history_summary(&self) -> Result<Option<LogRSummary>, SpillError> {
        self.check_wedged()?;
        if self.history.distinct_count() == 0 {
            return Ok(None);
        }
        let dist = self.shards.try_condensed(self.config.metric)?;
        Ok(Some(self.compressor().compress_condensed(&self.history, dist)))
    }

    /// Write every history shard that has never been written to the spill
    /// store, without evicting anything — the durability step behind
    /// `logr::Engine` checkpoints (see [`ShardedPointSet::persist_all`]).
    ///
    /// # Panics
    /// Panics if no store was attached via
    /// [`StreamSummarizer::spill_to`] and a shard has never been written.
    pub fn persist_shards(&mut self) -> Result<usize, SpillError> {
        self.check_wedged()?;
        self.shards.persist_all()
    }

    /// Merge the history's many per-window shards into one (see
    /// [`ShardedPointSet::compact`]): bit-identical reads, one store file
    /// instead of one per window.
    pub fn compact_shards(&mut self) -> Result<CompactionStats, SpillError> {
        self.check_wedged()?;
        self.shards.compact()
    }

    fn compressor(&self) -> LogR {
        LogR::new(self.config.compressor_config())
    }

    /// Record what the close that just finished changed (see
    /// [`CloseDelta`]). Called from the ingest/flush front ends — not
    /// from `close_window` itself — so a time-mode arrival that lands in
    /// the *next* window's buffer after the close is captured too.
    fn note_close_delta(&mut self) {
        let (stride_log, window_queries) = match self.baseline_logs.back() {
            // The pair this close pushed into the rotation (only
            // pop_front ever trims it, so back() is the newest).
            Some((log, offered)) => (log.clone(), *offered),
            None => (QueryLog::new(), 0),
        };
        self.last_close_delta = Some(Box::new(CloseDelta {
            buffer: self.buffer.iter().cloned().collect(),
            pending: self.pending.clone(),
            since_close: self.since_close,
            next_close_ms: self.next_close_ms,
            last_ts_ms: self.last_ts_ms,
            windows_closed: self.windows_closed,
            statements_parsed: self.parses,
            stride_log,
            window_queries,
            overlap_span: self.last_overlap_span,
            source_events: self.featurizer.drain_events(),
        }));
    }

    fn wall_clock_ms() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    /// Take a reference on `sql`'s cache slot (parse stays lazy). The
    /// repeat path avoids `HashMap::entry` — it would clone the SQL text
    /// on every ingest just to probe for a key that already exists.
    fn cache_acquire(&mut self, sql: &str) {
        if let Some(slot) = self.cache.get_mut(sql) {
            slot.refs += 1;
        } else {
            self.cache.insert(sql.to_string(), CacheSlot { branches: None, refs: 1 });
        }
    }

    /// Drop a reference; the slot (and its parsed branches) leaves the
    /// cache with its last carrier, keeping the cache bounded by the live
    /// window.
    fn cache_release(&mut self, sql: &str) {
        if let Some(slot) = self.cache.get_mut(sql) {
            slot.refs = slot.refs.saturating_sub(1);
            if slot.refs == 0 {
                self.cache.remove(sql);
            }
        }
    }

    /// Featurize statements into a fresh log, replaying cached branches
    /// and featurizing (once) on miss. With the SQL source this produces
    /// the log `LogIngest` would, bit for bit (`branch_features` is the
    /// factored statement half of ingestion, and `add_features` reruns
    /// `add_conjunctive`'s interning; equality is regression-tested).
    fn cached_log<'a>(
        cache: &mut HashMap<String, CacheSlot>,
        parses: &mut u64,
        featurizer: &mut dyn Featurizer,
        statements: impl Iterator<Item = (&'a str, u64)>,
    ) -> QueryLog {
        let mut log = QueryLog::new();
        for (text, count) in statements {
            let fallback;
            let branches: &[FeatureBranch] = match cache.get_mut(text) {
                Some(slot) => slot.branches.get_or_insert_with(|| {
                    *parses += 1;
                    featurizer.featurize(text)
                }),
                // Unreachable from the summarizer (every summarized
                // statement holds a cache reference), but harmless:
                // featurize without caching.
                None => {
                    *parses += 1;
                    fallback = featurizer.featurize(text);
                    &fallback
                }
            };
            for branch in branches {
                log.add_features(&branch.features, count);
            }
        }
        log
    }

    /// Close the current window at `boundary` (time mode's scheduled
    /// boundary; `None` for count mode / count flush). An `Err` (spill
    /// store failed while appending the window's shard) wedges the
    /// summarizer — see [`StreamSummarizer::try_ingest_at_ms`].
    fn close_window(&mut self, boundary: Option<u64>) -> Result<WindowSummary, SpillError> {
        let window_queries = self.since_close;
        if self.is_sliding() {
            // Trim to the window span before summarizing, at statement
            // granularity. Count mode: pop whole statements while the
            // remainder still covers a full window. Time mode: pop
            // statements that fell out of `[boundary − window_ms,
            // boundary)`.
            match self.config.time {
                None => {
                    while let Some(&(_, front, _)) = self.buffer.front() {
                        if self.buffer_total - front < self.config.window {
                            break;
                        }
                        self.buffer_total -= front;
                        // lint:allow(no-panic-paths): front() just returned Some on this same locked-out &mut self, so pop_front cannot miss
                        let (sql, _, _) = self.buffer.pop_front().expect("front exists");
                        self.cache_release(&sql);
                    }
                }
                Some(tw) => {
                    let horizon = boundary
                        // lint:allow(no-panic-paths): close_window always passes Some in time mode (the only mode reaching this arm) — invariant of the one caller
                        .expect("time closes carry a boundary")
                        .saturating_sub(tw.window_ms);
                    while let Some(&(_, front, front_ts)) = self.buffer.front() {
                        if front_ts >= horizon {
                            break;
                        }
                        self.buffer_total -= front;
                        // lint:allow(no-panic-paths): front() just returned Some on this same locked-out &mut self, so pop_front cannot miss
                        let (sql, _, _) = self.buffer.pop_front().expect("front exists");
                        self.cache_release(&sql);
                    }
                }
            }
        }
        let window_log = Self::cached_log(
            &mut self.cache,
            &mut self.parses,
            self.featurizer.as_mut(),
            self.buffer.iter().map(|(sql, count, _)| (sql.as_str(), *count)),
        );

        // Monitors run against the baseline *before* this window enters
        // the rotation — a window never judges itself.
        let (drift, novelty) = if self.baseline.total_queries() > 0 {
            (
                Some(feature_drift(&self.baseline, &window_log)),
                novelty_scores(&self.baseline, &window_log, self.config.metric),
            )
        } else {
            (None, Vec::new())
        };
        let stable = drift.as_ref().is_none_or(|d| d.is_stable(self.config.drift_tolerance));

        // Per-window mixture through the condensed path (the window's own
        // distances are fresh; its log is small by construction).
        let dist = PointSet::from_log(&window_log).distances(self.config.metric);
        let summary = self.compressor().compress_condensed(&window_log, dist);

        // Absorb only the unseen suffix (the stride) into the history, and
        // append its new distinct queries as one shard: window-close cost
        // stays proportional to the window, not the history. Tumbling
        // windows *are* the stride, so the already-featurized window log
        // is reused; sliding replays just the stride from the cache.
        let stride_log = if self.is_sliding() {
            let log = Self::cached_log(
                &mut self.cache,
                &mut self.parses,
                self.featurizer.as_mut(),
                self.pending.iter().map(|(sql, count)| (sql.as_str(), *count)),
            );
            for (sql, _) in std::mem::take(&mut self.pending) {
                self.cache_release(&sql);
            }
            log
        } else {
            window_log.clone()
        };
        let prev_distinct = self.history.distinct_count();
        Arc::make_mut(&mut self.history).absorb(&stride_log);
        let new_entries: Vec<&QueryVector> =
            self.history.entries()[prev_distinct..].iter().map(|(v, _)| v).collect();
        let new_distinct = new_entries.len();
        // A store failure here is fatal for the stream: the history log
        // already absorbed the stride, so the set and the log would
        // disagree. Wedge and surface the typed error (the infallible
        // `ingest` front ends turn it into the historical panic).
        if let Err(e) = self.shards.try_push_shard(&new_entries, self.history.num_features()) {
            self.wedged = true;
            return Err(e);
        }

        // Rotate the baseline: the rotation holds stride logs (tumbling:
        // whole windows), and the rebuild skips the newest strides whose
        // queries a later window's span may still contain — queries a
        // window contains can never sit in its own baseline, so an
        // injection cannot zero its own novelty by contaminating the
        // baseline first. The exclusion span is the buffer actually
        // retained after this close's trim (0 for tumbling — the buffer is
        // about to clear): future windows only ever span a subset of that
        // buffer plus strides not yet closed, and the retained total —
        // unlike the nominal `window − slide` — already accounts for
        // statement-multiplicity overshoot at the trim boundary. Exclusion
        // walks stride *query* counts (flush closes variable-size strides;
        // a stride straddling the boundary is excluded whole).
        let overlap_span = if self.is_sliding() { self.buffer_total } else { 0 };
        self.last_overlap_span = overlap_span;
        self.baseline = Arc::new(rotate_baseline(
            &mut self.baseline_logs,
            stride_log,
            window_queries,
            overlap_span,
            self.config.baseline_windows,
        ));

        // Advance the window (sliding keeps the overlap it just trimmed).
        if !self.is_sliding() {
            for (sql, _, _) in std::mem::take(&mut self.buffer) {
                self.cache_release(&sql);
            }
            self.buffer_total = 0;
        }
        self.since_close = 0;

        let index = self.windows_closed;
        self.windows_closed += 1;
        Ok(WindowSummary {
            index,
            queries: window_queries,
            distinct: window_log.distinct_count(),
            new_distinct,
            closed_at_ms: boundary,
            log: window_log,
            summary,
            drift,
            novelty,
            stable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn messaging(i: u64) -> String {
        match i % 3 {
            0 => "SELECT id, body FROM messages WHERE status = ?".into(),
            1 => "SELECT id FROM messages WHERE status = ? AND kind = ?".into(),
            _ => "SELECT sender FROM messages WHERE thread = ?".into(),
        }
    }

    fn banking(i: u64) -> String {
        match i % 2 {
            0 => "SELECT balance FROM accounts WHERE owner = ?".into(),
            _ => "SELECT balance, branch FROM accounts WHERE owner = ? AND open = ?".into(),
        }
    }

    #[test]
    fn three_window_stream_produces_summaries_and_drift() {
        // Acceptance scenario: 3 tumbling windows — steady, steady,
        // injected — each with a mixture summary and (from window 1 on) a
        // drift report.
        let mut s =
            StreamSummarizer::new(StreamConfig { window: 30, k: 2, ..StreamConfig::default() });
        let mut summaries = Vec::new();
        for i in 0..60 {
            if let Some(w) = s.ingest(&messaging(i)) {
                summaries.push(w);
            }
        }
        for i in 0..30 {
            let sql = if i % 10 == 9 {
                "SELECT password_hash FROM credentials".to_string() // injected
            } else {
                messaging(i)
            };
            if let Some(w) = s.ingest(&sql) {
                summaries.push(w);
            }
        }
        assert_eq!(summaries.len(), 3);
        assert_eq!(s.windows_closed(), 3);

        // Window 0: no baseline yet.
        assert!(summaries[0].drift.is_none());
        assert!(summaries[0].stable);
        assert_eq!(summaries[0].queries, 30);
        assert!(summaries[0].summary.mixture.k() >= 1);
        assert_eq!(summaries[0].closed_at_ms, None, "count windows carry no boundary time");

        // Window 1: same workload — stable, no novel queries.
        let w1 = &summaries[1];
        assert!(w1.drift.is_some());
        assert!(w1.stable, "steady window flagged: {:?}", w1.drift);
        assert_eq!(w1.new_distinct, 0, "no new distinct queries in a repeat window");
        assert!(w1.max_novelty() < 1e-12);

        // Window 2: injected traffic — unstable, novel, new features.
        let w2 = &summaries[2];
        let drift = w2.drift.as_ref().unwrap();
        assert!(!w2.stable, "injected window not flagged: {drift:?}");
        assert!(drift.overall > 0.0);
        assert!(drift.new_features.iter().any(|f| f.contains("credentials")));
        assert!(w2.max_novelty() > 0.0);
        assert!(w2.new_distinct > 0);

        // History covers the whole stream; its sharded summary works.
        assert_eq!(s.history().total_queries(), 90);
        let hist = s.history_summary().unwrap();
        assert_eq!(hist.clustering.len(), s.history().distinct_count());
    }

    #[test]
    fn tumbling_windows_partition_the_stream() {
        let mut s = StreamSummarizer::new(StreamConfig { window: 10, ..StreamConfig::default() });
        let mut closed = 0;
        for i in 0..35 {
            if let Some(w) = s.ingest(&messaging(i)) {
                assert_eq!(w.queries, 10);
                closed += 1;
            }
        }
        assert_eq!(closed, 3);
        assert_eq!(s.buffered_queries(), 5);
        let tail = s.flush().unwrap();
        assert_eq!(tail.queries, 5);
        assert_eq!(tail.index, 3);
        assert!(s.flush().is_none());
        assert_eq!(s.history().total_queries(), 35);
    }

    #[test]
    fn sliding_windows_overlap_but_history_does_not_double_count() {
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            slide: Some(5),
            ..StreamConfig::default()
        });
        let mut summaries = Vec::new();
        for i in 0..40 {
            if let Some(w) = s.ingest(&messaging(i)) {
                summaries.push(w);
            }
        }
        // First close at 20, then every 5: 20, 25, 30, 35, 40.
        assert_eq!(summaries.len(), 5);
        // Each window spans the last `window` queries…
        for w in &summaries[1..] {
            assert_eq!(w.log.total_queries(), 20);
            // …but only the 5-query stride entered the history.
            assert_eq!(w.queries, 5);
        }
        assert_eq!(s.history().total_queries(), 40);
    }

    #[test]
    fn multiplicity_counts_toward_window_size() {
        let mut s = StreamSummarizer::new(StreamConfig { window: 100, ..StreamConfig::default() });
        assert!(s.ingest_with_count(&messaging(0), 60).is_none());
        assert!(s.ingest_with_count(&messaging(0), 0).is_none());
        let w = s.ingest_with_count(&messaging(1), 60).unwrap();
        // Window overshoots at statement granularity.
        assert_eq!(w.queries, 120);
        assert_eq!(w.distinct, 2);
    }

    #[test]
    fn baseline_rotation_ages_out_old_workloads() {
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            baseline_windows: 2,
            ..StreamConfig::default()
        });
        // Two messaging windows, then three banking windows.
        for i in 0..40 {
            s.ingest(&messaging(i));
        }
        let mut flagged = None;
        let mut later = None;
        for i in 0..60 {
            if let Some(w) = s.ingest(&banking(i)) {
                if w.index == 2 {
                    flagged = Some(w);
                } else if w.index == 4 {
                    later = Some(w);
                }
            }
        }
        // The switch is flagged against the messaging baseline…
        let flagged = flagged.unwrap();
        assert!(!flagged.stable);
        assert!(flagged.max_novelty() > 0.0);
        // …but after `baseline_windows` banking windows the baseline has
        // rotated: banking is the new normal.
        let later = later.unwrap();
        assert!(later.stable, "rotated baseline still flags banking: {:?}", later.drift);
        assert!(later.max_novelty() < 1e-12);
    }

    #[test]
    fn sliding_baseline_excludes_overlapping_strides() {
        // Regression: an injection must stay novel for every window whose
        // span contains it — the baseline skips the strides that overlap
        // the window under test, so the injection cannot zero its own
        // novelty by entering the baseline first.
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            slide: Some(5),
            baseline_windows: 4,
            ..StreamConfig::default()
        });
        let mut i = 0u64;
        for _ in 0..40 {
            s.ingest(&messaging(i));
            i += 1;
        }
        // Inject one query; it lives in the stream for the next 4
        // overlapping windows.
        s.ingest("SELECT password_hash FROM credentials");
        let mut flagged = 0;
        let mut inspected = 0;
        while inspected < 3 {
            if let Some(w) = s.ingest(&messaging(i)) {
                inspected += 1;
                assert!(
                    w.log.codebook().iter().any(|(_, f)| f.to_string().contains("credentials")),
                    "window {} should still span the injection",
                    w.index
                );
                assert!(
                    w.max_novelty() > 0.0,
                    "window {}: baseline contamination zeroed the injection's novelty",
                    w.index
                );
                if !w.stable {
                    flagged += 1;
                }
            }
            i += 1;
        }
        assert_eq!(flagged, 3, "every window spanning the injection must be flagged");
    }

    #[test]
    fn flush_sized_strides_do_not_contaminate_the_baseline() {
        // Regression: baseline exclusion must count *queries*, not
        // strides — `flush` closes strides of any size, and stride-count
        // exclusion lets a large pre-flush stride (whose tail later
        // windows still span) into the baseline, zeroing the novelty of
        // an injection it contains.
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            slide: Some(5),
            baseline_windows: 4,
            ..StreamConfig::default()
        });
        let mut i = 0u64;
        for _ in 0..18 {
            s.ingest(&messaging(i));
            i += 1;
        }
        s.ingest("SELECT password_hash FROM credentials"); // tail of stride 0
        s.ingest(&messaging(i)); // closes window 0 (20-query stride)
        i += 1;
        for _ in 0..2 {
            s.ingest(&messaging(i));
            i += 1;
        }
        s.flush(); // 2-query stride: stride sizes now vary
        let mut judged_windows = 0;
        for _ in 0..25 {
            if let Some(w) = s.ingest(&messaging(i)) {
                if w.drift.is_some() {
                    judged_windows += 1;
                    let contains_injection =
                        w.log.codebook().iter().any(|(_, f)| f.to_string().contains("credentials"));
                    if contains_injection {
                        assert!(
                            w.max_novelty() > 0.0,
                            "window {}: injection sits in its own baseline",
                            w.index
                        );
                    }
                }
            }
            i += 1;
        }
        // The baseline does become usable again once enough strides age
        // past the overlap — the guard is an exclusion, not a shutdown.
        assert!(judged_windows > 0, "baseline never became usable after the flush");
    }

    #[test]
    fn history_shards_match_monolithic_distances() {
        use logr_cluster::hierarchical_cluster_pointset;
        let mut s =
            StreamSummarizer::new(StreamConfig { window: 15, k: 2, ..StreamConfig::default() });
        for i in 0..30 {
            s.ingest(&messaging(i));
        }
        for i in 0..15 {
            s.ingest(&banking(i));
        }
        assert_eq!(s.windows_closed(), 3);
        // The streamed history summary equals a batch hierarchical
        // compression of the absorbed history log.
        let streamed = s.history_summary().unwrap();
        let points = PointSet::from_log(s.history());
        let weights: Vec<f64> = s.history().entries().iter().map(|&(_, c)| c as f64).collect();
        let dendro = hierarchical_cluster_pointset(&points, &weights, Distance::Hamming);
        assert_eq!(streamed.clustering, dendro.cut(2));
    }

    #[test]
    fn empty_stream_and_unparseable_windows_are_handled() {
        let mut s = StreamSummarizer::new(StreamConfig { window: 3, ..StreamConfig::default() });
        assert!(s.history_summary().is_none());
        assert!(s.flush().is_none());
        // A window of pure garbage still closes and keeps counting.
        for _ in 0..3 {
            s.ingest("THIS IS NOT SQL @@@");
        }
        assert_eq!(s.windows_closed(), 1);
        assert!(s.history_summary().is_none(), "no parsed queries yet");
        for i in 0..3 {
            s.ingest(&messaging(i));
        }
        assert_eq!(s.windows_closed(), 2);
        assert!(s.history_summary().is_some());
    }

    #[test]
    #[should_panic(expected = "slide must not exceed")]
    fn oversized_slide_rejected() {
        StreamSummarizer::new(StreamConfig {
            window: 10,
            slide: Some(11),
            ..StreamConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "time slide must not exceed")]
    fn oversized_time_slide_rejected() {
        StreamSummarizer::new(StreamConfig {
            time: Some(TimeWindows { window_ms: 100, slide_ms: Some(101) }),
            ..StreamConfig::default()
        });
    }

    #[test]
    fn time_tumbling_windows_close_on_the_injected_clock() {
        let mut s = StreamSummarizer::new(StreamConfig {
            time: Some(TimeWindows { window_ms: 100, slide_ms: None }),
            // Count fields are ignored in time mode (0 would panic
            // otherwise — the validator skips them).
            window: 0,
            ..StreamConfig::default()
        });
        let mut summaries = Vec::new();
        // Ten statements inside [50, 150): no close until the clock
        // passes 150.
        for i in 0..10u64 {
            let w = s.ingest_at_ms(&messaging(i), 1, 50 + i * 10);
            assert!(w.is_none(), "premature close at ts {}", 50 + i * 10);
        }
        // ts 155 crosses the boundary at 150: the elapsed window closes
        // with the 10 buffered queries, and the arrival starts the next.
        let w = s.ingest_at_ms(&messaging(10), 1, 155).expect("boundary close");
        assert_eq!(w.queries, 10);
        assert_eq!(w.closed_at_ms, Some(150));
        summaries.push(w);
        // A long idle gap collapses: the next arrival at 990 closes the
        // one window that held ts 155 (empty windows emit nothing), and
        // the grid stays anchored at 50 (990 lands in [950, 1050)).
        let w = s.ingest_at_ms(&messaging(11), 1, 990).expect("gap close");
        assert_eq!(w.queries, 1);
        assert_eq!(w.closed_at_ms, Some(250));
        let w = s.ingest_at_ms(&messaging(12), 1, 1050).expect("grid-aligned close");
        assert_eq!(w.closed_at_ms, Some(1050), "boundary grid anchored at the first arrival");
        // Out-of-order timestamps clamp forward instead of closing early.
        assert!(s.ingest_at_ms(&messaging(13), 1, 10).is_none());
        assert_eq!(s.history().total_queries() + s.buffered_queries(), 14);
        let tail = s.flush().unwrap();
        assert_eq!(tail.queries, 2);
        assert_eq!(tail.closed_at_ms, Some(1051), "flush closes just past the last arrival");
    }

    #[test]
    fn time_sliding_windows_trim_by_timestamp() {
        let mut s = StreamSummarizer::new(StreamConfig {
            time: Some(TimeWindows { window_ms: 100, slide_ms: Some(50) }),
            ..StreamConfig::default()
        });
        // One statement every 10 ms from ts 0.
        let mut summaries = Vec::new();
        for i in 0..30u64 {
            if let Some(w) = s.ingest_at_ms(&messaging(i), 1, i * 10) {
                summaries.push(w);
            }
        }
        // Boundaries at 100, 150, 200, 250 have fired by ts 290.
        assert_eq!(summaries.len(), 4);
        assert_eq!(summaries[0].closed_at_ms, Some(100));
        assert_eq!(summaries[0].queries, 10, "first stride is the whole first window");
        assert_eq!(summaries[0].log.total_queries(), 10);
        for w in &summaries[1..] {
            // Every later window spans [boundary − 100, boundary): ten
            // 10ms-spaced statements; each stride adds five.
            assert_eq!(w.queries, 5, "window {}", w.index);
            assert_eq!(w.log.total_queries(), 10, "window {}", w.index);
        }
        // The history absorbed each arrival exactly once.
        assert_eq!(s.history().total_queries() + s.buffered_queries(), 30);
    }

    #[test]
    fn extreme_timestamp_gaps_advance_the_grid_in_constant_time() {
        // Regression: the grid advance is arithmetic, not a loop — a
        // 1 ms slide with a near-u64::MAX gap must neither spin O(gap)
        // iterations nor hang when the boundary saturates at u64::MAX.
        let mut s = StreamSummarizer::new(StreamConfig {
            time: Some(TimeWindows { window_ms: 2, slide_ms: Some(1) }),
            ..StreamConfig::default()
        });
        assert!(s.ingest_at_ms(&messaging(0), 1, 0).is_none());
        let w = s.ingest_at_ms(&messaging(1), 1, u64::MAX).expect("gap close");
        assert_eq!(w.queries, 1);
        assert_eq!(w.closed_at_ms, Some(2));
        // The grid is saturated at u64::MAX now; further arrivals keep
        // closing (ts >= boundary) without ever looping.
        let w = s.ingest_at_ms(&messaging(2), 1, u64::MAX).expect("saturated close");
        assert_eq!(w.queries, 1);
    }

    #[test]
    fn sliding_overlap_parses_each_statement_once() {
        // The parse-cache headline: 3 distinct statements cycle through
        // 40 arrivals under window 20 / slide 5 — 5 closes, each
        // featurizing a 20-query window plus a 5-query stride. Without
        // the cache that is ~125 parses; with it, each distinct statement
        // parses exactly once (it never leaves the live window).
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            slide: Some(5),
            ..StreamConfig::default()
        });
        let mut closes = 0;
        for i in 0..40 {
            if s.ingest(&messaging(i)).is_some() {
                closes += 1;
            }
        }
        assert_eq!(closes, 5);
        assert_eq!(s.statements_parsed(), 3, "overlap statements must replay from the cache");
    }

    #[test]
    fn cached_featurization_matches_log_ingest() {
        // The cache path must produce the exact window log LogIngest
        // builds (same codebook interning order, entries, counts) —
        // including parse errors and multi-branch statements.
        let statements: Vec<String> = (0..20)
            .map(|i| match i % 5 {
                0 => messaging(i),
                1 => "SELECT a FROM t WHERE x = ? OR y = ?".to_string(),
                2 => "NOT SQL %%".to_string(),
                3 => banking(i),
                _ => messaging(i + 1),
            })
            .collect();
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            slide: Some(5),
            ..StreamConfig::default()
        });
        let mut last = None;
        for sql in &statements {
            if let Some(w) = s.ingest(sql) {
                last = Some(w);
            }
        }
        let w = last.expect("one close");
        let mut ingest = logr_feature::LogIngest::new();
        for sql in &statements {
            ingest.ingest(sql);
        }
        let (reference, _) = ingest.finish();
        assert_eq!(w.log.entries(), reference.entries());
        assert_eq!(w.log.num_features(), reference.num_features());
    }

    #[test]
    fn tumbling_cache_drains_with_the_window() {
        // Tumbling windows clear the buffer on close, so the cache must
        // not accumulate across windows (each statement re-parses in its
        // own window, and memory stays bounded by the live window).
        let mut s = StreamSummarizer::new(StreamConfig { window: 6, ..StreamConfig::default() });
        for i in 0..12 {
            s.ingest(&messaging(i));
        }
        assert_eq!(s.windows_closed(), 2);
        assert!(s.cache.is_empty(), "cache must drain with the tumbling buffer");
        assert_eq!(s.statements_parsed(), 6, "3 distinct statements × 2 windows");
    }

    #[test]
    fn exported_state_restores_bit_identically() {
        // Export mid-stream (sliding windows, so buffer/pending/baseline
        // rotation state are all non-trivial), rebuild from the exported
        // state plus a store-recovered shard set, and continue both
        // streams: every later artifact must match to the bit.
        let store = logr_cluster::testutil::TempStore::new("stream-state");
        let config = StreamConfig { window: 12, slide: Some(5), k: 2, ..StreamConfig::default() };
        let mut original = StreamSummarizer::new(config);
        original.spill_to(store.path(), usize::MAX).unwrap();
        for i in 0..31 {
            let sql = if i % 2 == 0 { messaging(i) } else { banking(i) };
            original.ingest(&sql);
        }
        original.persist_shards().unwrap();
        let state = original.export_state();
        let files: Vec<std::path::PathBuf> = (0..original.shard_store().n_shards())
            .map(|s| original.shard_store().shard_file(s).unwrap().to_path_buf())
            .collect();
        let shards = ShardedPointSet::from_spilled_files(
            SpillConfig { dir: store.path().to_path_buf(), resident_budget: usize::MAX },
            &files,
        )
        .unwrap();
        let mut restored = StreamSummarizer::from_state(config, state, shards);
        assert_eq!(restored.windows_closed(), original.windows_closed());
        assert_eq!(restored.buffered_queries(), original.buffered_queries());

        for i in 31..80 {
            let sql = if i % 3 == 0 { banking(i) } else { messaging(i) };
            let (a, b) = (original.ingest(&sql), restored.ingest(&sql));
            assert_eq!(a.is_some(), b.is_some(), "close parity at {i}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.queries, b.queries);
                assert_eq!(a.new_distinct, b.new_distinct);
                assert_eq!(a.summary.clustering, b.summary.clustering);
                assert_eq!(a.summary.error().to_bits(), b.summary.error().to_bits());
                assert_eq!(a.stable, b.stable);
                assert_eq!(a.novelty.len(), b.novelty.len());
                for (x, y) in a.novelty.iter().zip(&b.novelty) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
        let (a, b) = (original.history_summary().unwrap(), restored.history_summary().unwrap());
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.error().to_bits(), b.error().to_bits());
    }

    /// Structural log equality: entries in insertion order, codebook in
    /// id order — everything the persisted encoding serializes. (Debug
    /// equality would be too strong: the interning index is a `HashMap`,
    /// whose print order differs between a log built by replay and the
    /// live one.)
    fn assert_log_eq(a: &QueryLog, b: &QueryLog, ctx: &str) {
        assert_eq!(a.entries(), b.entries(), "{ctx}: entries");
        assert_eq!(a.num_features(), b.num_features(), "{ctx}: universe");
        assert_eq!(a.total_queries(), b.total_queries(), "{ctx}: total");
        assert_eq!(a.codebook().len(), b.codebook().len(), "{ctx}: codebook");
        for (id, f) in a.codebook().iter() {
            assert_eq!(b.codebook().feature(id), f, "{ctx}: feature {id:?}");
        }
    }

    fn assert_state_eq(a: &StreamState, b: &StreamState, ctx: &str) {
        assert_eq!(a.buffer, b.buffer, "{ctx}: buffer");
        assert_eq!(a.pending, b.pending, "{ctx}: pending");
        assert_eq!(a.since_close, b.since_close, "{ctx}: since_close");
        assert_eq!(a.next_close_ms, b.next_close_ms, "{ctx}: next_close_ms");
        assert_eq!(a.last_ts_ms, b.last_ts_ms, "{ctx}: last_ts_ms");
        assert_eq!(a.windows_closed, b.windows_closed, "{ctx}: windows_closed");
        assert_eq!(a.statements_parsed, b.statements_parsed, "{ctx}: statements_parsed");
        assert_eq!(a.baseline_logs.len(), b.baseline_logs.len(), "{ctx}: rotation depth");
        for (i, ((la, wa), (lb, wb))) in a.baseline_logs.iter().zip(&b.baseline_logs).enumerate() {
            assert_eq!(wa, wb, "{ctx}: rotation weight {i}");
            assert_log_eq(la, lb, &format!("{ctx}: rotation log {i}"));
        }
        assert_log_eq(&a.baseline, &b.baseline, &format!("{ctx}: baseline"));
        assert_log_eq(&a.history, &b.history, &format!("{ctx}: history"));
        assert_eq!(a.source_state, b.source_state, "{ctx}: source_state");
    }

    #[test]
    fn close_delta_applied_to_the_preclose_state_matches_the_export() {
        // The delta-capture contract behind the engine's append-log
        // persistence: pre-close exported state + CloseDelta must equal
        // the post-close exported state, with the history advanced by
        // absorbing the stride and the baseline rotation rerun from the
        // delta's recorded inputs — for count closes, sliding closes,
        // and time-mode closes (where the closing arrival lands in the
        // next window's buffer after the close).
        let scenarios: Vec<(StreamConfig, bool)> = vec![
            (StreamConfig { window: 7, k: 2, ..StreamConfig::default() }, false),
            (StreamConfig { window: 12, slide: Some(5), k: 2, ..StreamConfig::default() }, false),
            (
                // Template source: source_events must concatenate onto
                // the pre-close journal to reproduce the export.
                StreamConfig {
                    window: 7,
                    k: 2,
                    source: SourceConfig::template(),
                    ..StreamConfig::default()
                },
                false,
            ),
            (
                StreamConfig {
                    time: Some(TimeWindows { window_ms: 40, slide_ms: None }),
                    k: 2,
                    ..StreamConfig::default()
                },
                true,
            ),
        ];
        for (config, timed) in scenarios {
            let mut s = StreamSummarizer::new(config);
            let mut prev = s.export_state();
            for i in 0..40u64 {
                let sql = if i % 2 == 0 { messaging(i) } else { banking(i) };
                let closed = if timed {
                    s.ingest_at_ms(&sql, 1, i * 10).is_some()
                } else {
                    s.ingest(&sql).is_some()
                };
                let now = s.export_state();
                if closed {
                    let d = s.take_close_delta().expect("a close must record its delta");
                    assert!(s.take_close_delta().is_none(), "the delta is taken exactly once");
                    let mut rebuilt = prev.clone();
                    rebuilt.buffer = d.buffer;
                    rebuilt.pending = d.pending;
                    rebuilt.since_close = d.since_close;
                    rebuilt.next_close_ms = d.next_close_ms;
                    rebuilt.last_ts_ms = d.last_ts_ms;
                    rebuilt.windows_closed = d.windows_closed;
                    rebuilt.statements_parsed = d.statements_parsed;
                    // The rotation replays from its recorded inputs
                    // through the same code the live close ran.
                    let mut rotation: VecDeque<(QueryLog, u64)> =
                        rebuilt.baseline_logs.into_iter().collect();
                    rebuilt.baseline = rotate_baseline(
                        &mut rotation,
                        d.stride_log.clone(),
                        d.window_queries,
                        d.overlap_span,
                        config.baseline_windows,
                    );
                    rebuilt.baseline_logs = rotation.into_iter().collect();
                    rebuilt.history.absorb(&d.stride_log);
                    rebuilt.source_state.extend_from_slice(&d.source_events);
                    assert_state_eq(&rebuilt, &now, &format!("delta replay at statement {i}"));
                } else {
                    assert!(s.take_close_delta().is_none(), "no close, no delta");
                }
                prev = now;
            }
        }
    }

    #[test]
    fn store_failure_wedges_the_summarizer() {
        // A close that dies against the spill store must leave the
        // summarizer refusing (typed error) rather than serving summaries
        // whose history log and shard store disagree.
        let store = logr_cluster::testutil::TempStore::new("stream-wedge");
        let mut s =
            StreamSummarizer::new(StreamConfig { window: 5, k: 2, ..StreamConfig::default() });
        s.spill_to(store.path(), 0).unwrap();
        for i in 0..10 {
            s.ingest(&messaging(i));
        }
        assert!(s.spilled_shards() > 0);
        // Vaporize the store, drop the reload cache via a compact-free
        // path: the next close's cross block cannot reload history.
        for entry in std::fs::read_dir(store.path()).unwrap() {
            std::fs::remove_file(entry.unwrap().path()).unwrap();
        }
        let mut failed = None;
        for i in 0..10 {
            match s.try_ingest(&banking(i)) {
                Ok(_) => {}
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let err = failed.expect("a close against the gutted store must fail");
        assert!(matches!(err, SpillError::Io(_)), "{err}");
        // Wedged: every later entry point refuses with a typed error.
        assert!(matches!(s.try_ingest("SELECT a FROM t"), Err(SpillError::Corrupt(_))));
        assert!(matches!(s.try_flush(), Err(SpillError::Corrupt(_))));
        assert!(matches!(s.try_history_summary(), Err(SpillError::Corrupt(_))));
    }

    #[test]
    fn spilled_stream_is_bit_identical_to_resident_stream() {
        // The acceptance property at the stream level: a spilling
        // summarizer (tiny resident budget) and an unbounded one emit
        // byte-identical artifacts. The heavyweight cross-metric version
        // lives in tests/stream_out_of_core.rs; this is the fast inline
        // guard.
        let store = logr_cluster::testutil::TempStore::new("stream-spill");
        let mut spilled =
            StreamSummarizer::new(StreamConfig { window: 10, k: 2, ..StreamConfig::default() });
        spilled.spill_to(store.path(), 0).unwrap();
        let mut resident =
            StreamSummarizer::new(StreamConfig { window: 10, k: 2, ..StreamConfig::default() });
        for i in 0..40 {
            let sql = if i % 2 == 0 { messaging(i) } else { banking(i) };
            let (a, b) = (spilled.ingest(&sql), resident.ingest(&sql));
            assert_eq!(a.is_some(), b.is_some());
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.summary.clustering, b.summary.clustering);
                assert_eq!(a.summary.error().to_bits(), b.summary.error().to_bits());
                assert_eq!(a.new_distinct, b.new_distinct);
            }
        }
        assert!(spilled.spilled_shards() > 0, "the budget must have forced evictions");
        let (a, b) = (spilled.history_summary().unwrap(), resident.history_summary().unwrap());
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.error().to_bits(), b.error().to_bits());
    }

    fn service_line(i: u64) -> String {
        match i % 4 {
            0 => format!("request {} served in {} ms", i % 7, i + 3),
            1 => format!("connection from 10.0.{}.{} port {} established", i % 5, i % 9, 8000 + i),
            2 => format!("cache flush completed after {} entries", i * 2),
            _ => format!("worker {} heartbeat ok", i % 3),
        }
    }

    #[test]
    fn template_source_streams_service_logs_end_to_end() {
        // Free-form records flow through windows, drift, and the sharded
        // history with zero SQL on the path.
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 16,
            k: 2,
            source: SourceConfig::template(),
            ..StreamConfig::default()
        });
        let mut summaries = Vec::new();
        for i in 0..48 {
            if let Some(w) = s.ingest_record(&service_line(i)) {
                summaries.push(w);
            }
        }
        assert_eq!(summaries.len(), 3);
        assert!(summaries[0].distinct > 0, "service lines must featurize");
        assert!(summaries[1].drift.is_some());
        // Every feature the stream mined is a TEMPLATE or PARAM — no SQL
        // classes leak in.
        for (_, f) in s.history().codebook().iter() {
            assert!(
                matches!(
                    f.class,
                    logr_feature::FeatureClass::Template | logr_feature::FeatureClass::Param
                ),
                "unexpected class on the template path: {f}"
            );
        }
        let hist = s.history_summary().expect("history summary over mined features");
        assert_eq!(hist.clustering.len(), s.history().distinct_count());
    }

    #[test]
    fn template_source_detects_injected_drift() {
        let mut s = StreamSummarizer::new(StreamConfig {
            window: 20,
            k: 2,
            source: SourceConfig::template(),
            ..StreamConfig::default()
        });
        let mut summaries = Vec::new();
        for i in 0..40 {
            if let Some(w) = s.ingest_record(&service_line(i)) {
                summaries.push(w);
            }
        }
        for i in 0..20 {
            let line = if i % 5 == 4 {
                format!("FATAL segfault at 0xdeadbeef core dumped pid {i}")
            } else {
                service_line(i)
            };
            if let Some(w) = s.ingest_record(&line) {
                summaries.push(w);
            }
        }
        assert_eq!(summaries.len(), 3);
        let injected = &summaries[2];
        assert!(!injected.stable, "injected crash lines must drift: {:?}", injected.drift);
        assert!(injected.max_novelty() > 0.0);
    }

    #[test]
    fn template_source_state_restores_bit_identically() {
        // The recovery acceptance at the stream level: export mid-stream
        // (sliding, so buffer/pending/rotation are live AND the miner has
        // promoted wildcards), restore through the journal, and continue
        // both — every later artifact must match to the bit.
        let store = logr_cluster::testutil::TempStore::new("stream-template-state");
        let config = StreamConfig {
            window: 12,
            slide: Some(5),
            k: 2,
            source: SourceConfig::template(),
            ..StreamConfig::default()
        };
        let mut original = StreamSummarizer::new(config);
        original.spill_to(store.path(), usize::MAX).unwrap();
        for i in 0..31 {
            original.ingest_record(&service_line(i));
        }
        original.persist_shards().unwrap();
        let state = original.export_state();
        assert!(!state.source_state.is_empty(), "the miner must have journaled");
        let files: Vec<std::path::PathBuf> = (0..original.shard_store().n_shards())
            .map(|s| original.shard_store().shard_file(s).unwrap().to_path_buf())
            .collect();
        let shards = ShardedPointSet::from_spilled_files(
            SpillConfig { dir: store.path().to_path_buf(), resident_budget: usize::MAX },
            &files,
        )
        .unwrap();
        let mut restored = StreamSummarizer::try_from_state(config, state, shards).unwrap();
        for i in 31..90 {
            let (a, b) = (
                original.ingest_record(&service_line(i)),
                restored.ingest_record(&service_line(i)),
            );
            assert_eq!(a.is_some(), b.is_some(), "close parity at {i}");
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(a.summary.clustering, b.summary.clustering);
                assert_eq!(a.summary.error().to_bits(), b.summary.error().to_bits());
                assert_eq!(a.new_distinct, b.new_distinct);
                assert_eq!(a.stable, b.stable);
                for (x, y) in a.novelty.iter().zip(&b.novelty) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
        let a = original.export_state();
        let mut b = restored.export_state();
        // The parse counter legitimately runs ahead after a restore (the
        // cache restarts cold) — it is instrumentation, never an output
        // bit. Everything else must match exactly.
        b.statements_parsed = a.statements_parsed;
        assert_state_eq(&a, &b, "post-continue");
    }

    #[test]
    fn corrupt_source_journal_is_a_typed_error() {
        let config =
            StreamConfig { window: 8, source: SourceConfig::template(), ..StreamConfig::default() };
        let mut s = StreamSummarizer::new(config);
        for i in 0..8 {
            s.ingest_record(&service_line(i));
        }
        let mut state = s.export_state();
        state.source_state.truncate(state.source_state.len() - 1);
        assert!(StreamSummarizer::try_from_state(config, state, ShardedPointSet::new()).is_err());
    }

    #[test]
    fn invalid_source_config_fails_validation() {
        let config = StreamConfig {
            source: SourceConfig::Template(logr_source::TemplateConfig {
                similarity: 2.0,
                ..logr_source::TemplateConfig::default()
            }),
            ..StreamConfig::default()
        };
        assert!(config.validate().is_err());
    }
}
