//! Pattern synthesis and marginal-deviation diagnostics (paper §6.3).
//!
//! Two empirical checks that a naive mixture encoding approximates log
//! statistics well:
//!
//! * **Synthesis error** — synthesize random patterns from each component's
//!   independence model and measure the fraction that do *not* occur in the
//!   partition (`1 − M/N`). A faithful encoding synthesizes mostly real
//!   patterns.
//! * **Marginal deviation** — for each distinct query of a partition
//!   (treated as the worst-case pattern it contains), the relative error
//!   `|est − true| / true` of the encoding's marginal estimate, summed per
//!   cluster and weight-averaged across clusters.

use crate::mixture::NaiveMixtureEncoding;
use logr_cluster::PointSet;
use logr_feature::{BitVec, QueryLog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesis error of a naive mixture encoding (§6.3, Fig. 3a).
///
/// From each component, draw `n_per_partition` random patterns by sampling
/// each supported feature independently with its marginal probability; a
/// synthesized pattern "exists" if some query of the partition contains it.
/// Component errors are weight-averaged.
///
/// Existence checks run on the dense engine: the log's distinct queries are
/// batch-converted into a [`PointSet`] once, each synthesized pattern is
/// one bitset, and each containment test one `and-not` popcount sweep —
/// instead of a sparse id-merge per (sample × partition entry).
pub fn synthesis_error(
    log: &QueryLog,
    mixture: &NaiveMixtureEncoding,
    n_per_partition: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = PointSet::from_log(log);
    let nf = log.num_features();
    let mut total = 0.0;
    for component in mixture.components() {
        let support = component.encoding.support();
        let mut misses = 0usize;
        for _ in 0..n_per_partition {
            let mut pattern = BitVec::zeros(nf);
            for &f in support.iter() {
                if rng.gen::<f64>() < component.encoding.marginal(f) {
                    pattern.set(f.index());
                }
            }
            let exists = component.entries.iter().any(|&i| points.point(i).contains_all(&pattern));
            if !exists {
                misses += 1;
            }
        }
        let err = if n_per_partition == 0 { 0.0 } else { misses as f64 / n_per_partition as f64 };
        total += component.weight * err;
    }
    total
}

/// Marginal deviation of a naive mixture encoding (§6.3, Fig. 3b).
///
/// Treats every distinct query of each partition as a pattern (the worst
/// case over its sub-patterns), measures `|est − true| / true` under the
/// component's encoding, sums within the cluster and weight-averages across
/// clusters.
pub fn marginal_deviation(log: &QueryLog, mixture: &NaiveMixtureEncoding) -> f64 {
    let mut total = 0.0;
    for component in mixture.components() {
        if component.total == 0 {
            continue;
        }
        let part_total = component.total as f64;
        let mut dev = 0.0;
        for &i in &component.entries {
            let (v, c) = &log.entries()[i];
            let true_marginal = log.support_for(v, &component.entries) as f64 / part_total;
            let est = component.encoding.estimate_marginal(v);
            if true_marginal > 0.0 {
                dev += ((est - true_marginal).abs() / true_marginal) * (*c as f64 / part_total);
            }
        }
        total += component.weight * dev;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_cluster::Clustering;
    use logr_feature::{FeatureId, QueryVector};

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    fn two_workload_log() -> QueryLog {
        let mut log = QueryLog::new();
        // Workload A over features 0–2, workload B over 10–12.
        log.add_vector(qv(&[0, 1]), 5);
        log.add_vector(qv(&[0, 1, 2]), 5);
        log.add_vector(qv(&[10, 11]), 5);
        log.add_vector(qv(&[10, 11, 12]), 5);
        log
    }

    #[test]
    fn perfect_partition_synthesizes_real_patterns() {
        let log = two_workload_log();
        let split = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1, 1]));
        let err = synthesis_error(&log, &split, 500, 9);
        // Within each partition features {0,1} / {10,11} are certain and
        // only one feature is Bernoulli(1/2): every synthesized pattern is a
        // subset of an existing query.
        assert!(err < 1e-9, "synthesis error {err}");
    }

    #[test]
    fn single_encoding_synthesizes_phantoms() {
        let log = two_workload_log();
        let single = NaiveMixtureEncoding::single(&log);
        let err = synthesis_error(&log, &single, 500, 9);
        // Cross-workload feature mixes (e.g. {0, 10}) never occur in the
        // log, so the unpartitioned encoding synthesizes many phantoms.
        assert!(err > 0.3, "synthesis error unexpectedly low: {err}");
    }

    #[test]
    fn synthesis_error_decreases_with_partitioning() {
        let log = two_workload_log();
        let single = synthesis_error(&log, &NaiveMixtureEncoding::single(&log), 400, 5);
        let split = synthesis_error(
            &log,
            &NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1, 1])),
            400,
            5,
        );
        assert!(split <= single, "split {split} vs single {single}");
    }

    #[test]
    fn marginal_deviation_zero_for_exact_partition() {
        let log = two_workload_log();
        let split = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1, 1]));
        let dev = marginal_deviation(&log, &split);
        assert!(dev < 1e-9, "deviation {dev}");
    }

    #[test]
    fn marginal_deviation_positive_for_single_encoding() {
        let log = two_workload_log();
        let dev = marginal_deviation(&log, &NaiveMixtureEncoding::single(&log));
        assert!(dev > 0.1, "deviation unexpectedly low: {dev}");
    }

    #[test]
    fn deviation_tracks_error_ordering() {
        // The §6.3 claim: both diagnostics correlate with Reproduction
        // Error across partitionings.
        let log = two_workload_log();
        let single = NaiveMixtureEncoding::single(&log);
        let split = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1, 1]));
        assert!(split.error() < single.error());
        assert!(marginal_deviation(&log, &split) <= marginal_deviation(&log, &single));
        assert!(synthesis_error(&log, &split, 300, 2) <= synthesis_error(&log, &single, 300, 2));
    }

    #[test]
    fn zero_samples_is_zero_error() {
        let log = two_workload_log();
        let single = NaiveMixtureEncoding::single(&log);
        assert_eq!(synthesis_error(&log, &single, 0, 0), 0.0);
    }
}
