//! Pattern-based encodings (paper §2.3) and the naive encoding (§3.2).
//!
//! A *pattern based encoding* is a partial map from patterns (feature sets)
//! to their marginal probabilities in the log. The *naive encoding* is the
//! special case holding exactly the single-feature patterns with non-zero
//! marginal; its maximum-entropy distribution factorizes into independent
//! Bernoullis (§4.1 Eq. 1), giving closed forms for entropy, query
//! probability and pattern-marginal estimation (§6.2).

use logr_feature::{FeatureId, QueryLog, QueryVector};
use logr_math::binary_entropy;

/// A general pattern encoding: patterns mapped to marginals.
///
/// `E[b] = p(Q ⊇ b | L)`. Verbosity is the number of mapped patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternEncoding {
    patterns: Vec<(QueryVector, f64)>,
}

impl PatternEncoding {
    /// Empty encoding (conveys no information).
    pub fn new() -> Self {
        PatternEncoding { patterns: Vec::new() }
    }

    /// Build from explicit pattern/marginal pairs.
    pub fn from_pairs(patterns: Vec<(QueryVector, f64)>) -> Self {
        PatternEncoding { patterns }
    }

    /// Build by measuring each pattern's true marginal in (a subset of) a log.
    pub fn measure(log: &QueryLog, entries: &[usize], patterns: &[QueryVector]) -> Self {
        let total = log.total_for(entries).max(1) as f64;
        let pairs = patterns
            .iter()
            .map(|b| (b.clone(), log.support_for(b, entries) as f64 / total))
            .collect();
        PatternEncoding { patterns: pairs }
    }

    /// Add one pattern with its marginal.
    pub fn insert(&mut self, pattern: QueryVector, marginal: f64) {
        self.patterns.push((pattern, marginal));
    }

    /// Mapped patterns with marginals.
    pub fn patterns(&self) -> &[(QueryVector, f64)] {
        &self.patterns
    }

    /// Verbosity `|E|` — the number of mapped patterns.
    pub fn verbosity(&self) -> usize {
        self.patterns.len()
    }

    /// True if this encoding's pattern set is a subset of `other`'s
    /// (with matching marginals). Subset encodings admit *larger* spaces
    /// Ω_E, so this is the containment order of §4.2 reversed:
    /// `self ⊆ other ⇒ other ≤Ω self`.
    pub fn is_subset_of(&self, other: &PatternEncoding) -> bool {
        self.patterns
            .iter()
            .all(|(b, m)| other.patterns.iter().any(|(ob, om)| ob == b && (om - m).abs() < 1e-12))
    }
}

impl Default for PatternEncoding {
    fn default() -> Self {
        PatternEncoding::new()
    }
}

/// The naive encoding of (a partition of) a log: one marginal per feature
/// with non-zero support (§3.2), plus the closed forms of §4.1/§6.2.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveEncoding {
    /// Dense marginals indexed by feature id (length = feature universe).
    marginals: Vec<f64>,
    /// Features with non-zero marginal — the encoding's domain.
    support: Vec<FeatureId>,
}

impl NaiveEncoding {
    /// Build from the whole log.
    pub fn from_log(log: &QueryLog) -> Self {
        NaiveEncoding::from_marginals(log.marginals())
    }

    /// Build from a subset of log entries (one mixture component).
    pub fn from_log_subset(log: &QueryLog, entries: &[usize]) -> Self {
        NaiveEncoding::from_marginals(log.marginals_for(entries))
    }

    /// Build from precomputed per-feature marginals.
    pub fn from_marginals(marginals: Vec<f64>) -> Self {
        let support = marginals
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(|(i, _)| FeatureId(i as u32))
            .collect();
        NaiveEncoding { marginals, support }
    }

    /// Marginal probability of one feature.
    pub fn marginal(&self, f: FeatureId) -> f64 {
        self.marginals.get(f.index()).copied().unwrap_or(0.0)
    }

    /// Dense marginal vector (indexed by feature id).
    pub fn marginals(&self) -> &[f64] {
        &self.marginals
    }

    /// Features with non-zero marginal, ascending by id.
    pub fn support(&self) -> &[FeatureId] {
        &self.support
    }

    /// Verbosity: one pattern per supported feature (§3.2).
    pub fn verbosity(&self) -> usize {
        self.support.len()
    }

    /// Entropy of the maximum-entropy (independent-Bernoulli) distribution:
    /// `H(ρ_E) = Σᵢ h(pᵢ)` in nats. Features outside the support contribute
    /// zero.
    pub fn entropy(&self) -> f64 {
        self.support.iter().map(|&f| binary_entropy(self.marginal(f))).sum()
    }

    /// Closed-form probability of drawing exactly `q` under independence
    /// (§4.1 Eq. 1): `ρ_E(q) = Πᵢ p(Xᵢ = xᵢ)`.
    ///
    /// The product runs over the full feature universe; absent features
    /// contribute `1 − pᵢ`.
    pub fn probability(&self, q: &QueryVector) -> f64 {
        let mut prob = 1.0;
        // Features present in q.
        for id in q.iter() {
            prob *= self.marginal(id);
        }
        // Features absent from q but supported by the encoding.
        for &f in &self.support {
            if !q.contains(f) {
                prob *= 1.0 - self.marginal(f);
            }
        }
        // Any feature present in q with marginal 0 already zeroed `prob`.
        prob
    }

    /// Closed-form marginal estimate `ρ_E(Q ⊇ b) = Π_{i∈b} pᵢ` (§6.2).
    pub fn estimate_marginal(&self, pattern: &QueryVector) -> f64 {
        pattern.iter().map(|id| self.marginal(id)).product()
    }

    /// Estimated occurrence count `est[Γ_b(L)] = |L| · Π pᵢ` (§6.2).
    pub fn estimate_count(&self, pattern: &QueryVector, log_size: u64) -> f64 {
        log_size as f64 * self.estimate_marginal(pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::LogIngest;
    use logr_math::binary_entropy;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    /// The §5.1 toy log: 3 queries over 4 features with naive encoding
    /// (2/3, 1/3, 1, 1/3).
    fn toy_log() -> QueryLog {
        let mut ingest = LogIngest::new();
        ingest.ingest("SELECT id FROM Messages WHERE status = ?");
        ingest.ingest("SELECT id FROM Messages");
        ingest.ingest("SELECT sms_type FROM Messages");
        ingest.finish().0
    }

    #[test]
    fn naive_encoding_of_toy_log() {
        let log = toy_log();
        let e = NaiveEncoding::from_log(&log);
        assert_eq!(e.verbosity(), 4);
        let mut ms = e.marginals().to_vec();
        ms.sort_by(f64::total_cmp);
        assert!((ms[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((ms[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn example_4_probability_of_query_1() {
        // Paper Example 4: under independence, p(query 1) = 4/27 ≈ 0.148.
        let log = toy_log();
        let e = NaiveEncoding::from_log(&log);
        let q1 = &log.entries()[0].0; // SELECT id FROM Messages WHERE status = ?
        let p = e.probability(q1);
        assert!((p - 4.0 / 27.0).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn example_4_phantom_query_probability() {
        // SELECT sms_type FROM Messages WHERE status = ? — not in the log,
        // but naive encoding gives it probability 1/27 ≈ 0.037.
        let log = toy_log();
        let e = NaiveEncoding::from_log(&log);
        let cb = log.codebook();
        let sms = cb.get(&logr_feature::Feature::select("sms_type")).unwrap();
        let msgs = cb.get(&logr_feature::Feature::from_table("Messages")).unwrap();
        let status = cb.get(&logr_feature::Feature::where_atom("status = ?")).unwrap();
        let phantom = QueryVector::new(vec![sms, msgs, status]);
        assert!((e.probability(&phantom) - 1.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_sum_of_binary_entropies() {
        let e = NaiveEncoding::from_marginals(vec![0.5, 1.0, 0.25, 0.0]);
        let expect = binary_entropy(0.5) + binary_entropy(0.25);
        assert!((e.entropy() - expect).abs() < 1e-12);
        assert_eq!(e.verbosity(), 3); // marginal-0 feature excluded
    }

    #[test]
    fn probabilities_sum_to_one_over_universe() {
        // 3 supported features: sum ρ(q) over all 8 subsets must be 1.
        let e = NaiveEncoding::from_marginals(vec![0.3, 0.9, 0.5]);
        let mut total = 0.0;
        for mask in 0..8u32 {
            let ids: Vec<FeatureId> =
                (0..3).filter(|i| mask & (1 << i) != 0).map(FeatureId).collect();
            total += e.probability(&QueryVector::new(ids));
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_estimates_multiply() {
        let e = NaiveEncoding::from_marginals(vec![0.5, 0.4, 1.0]);
        assert!((e.estimate_marginal(&qv(&[0, 1])) - 0.2).abs() < 1e-12);
        assert!((e.estimate_marginal(&qv(&[2])) - 1.0).abs() < 1e-12);
        assert_eq!(e.estimate_marginal(&QueryVector::empty()), 1.0);
        assert!((e.estimate_count(&qv(&[0, 1]), 100) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_feature_has_zero_marginal() {
        let e = NaiveEncoding::from_marginals(vec![0.5]);
        assert_eq!(e.marginal(FeatureId(7)), 0.0);
        assert_eq!(e.estimate_marginal(&qv(&[0, 7])), 0.0);
    }

    #[test]
    fn pattern_encoding_measures_true_marginals() {
        let log = toy_log();
        let cb = log.codebook();
        let id = cb.get(&logr_feature::Feature::select("id")).unwrap();
        let status = cb.get(&logr_feature::Feature::where_atom("status = ?")).unwrap();
        let all = log.all_entry_indices();
        let e = PatternEncoding::measure(
            &log,
            &all,
            &[QueryVector::new(vec![id]), QueryVector::new(vec![id, status])],
        );
        assert_eq!(e.verbosity(), 2);
        assert!((e.patterns()[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.patterns()[1].1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn subset_order_detected() {
        let a = PatternEncoding::from_pairs(vec![(qv(&[0]), 0.5)]);
        let b = PatternEncoding::from_pairs(vec![(qv(&[0]), 0.5), (qv(&[1]), 0.25)]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(PatternEncoding::new().is_subset_of(&a));
    }
}
