//! Lossless encodings (paper §3.1, Proposition 1, Appendix B).
//!
//! Proposition 1: given the full marginal map `E_max`, the probability of
//! drawing *exactly* a query `q` is computable. Appendix B's telescoping
//! construction is, on binary vectors, inclusion–exclusion over the
//! features absent from `q`:
//!
//! ```text
//! p(X = q) = Σ_{S ⊆ U \ q} (−1)^{|S|} · p(Q ⊇ q ∪ S)
//! ```
//!
//! This module implements that reconstruction over a (small) projected
//! feature universe via a superset Möbius transform, which both proves the
//! proposition computationally (the tests recover the exact projected log
//! distribution from marginals alone) and documents *why* lossless
//! encodings are hopeless at scale: the marginal table is `2^|U|`.

use logr_feature::{FeatureId, QueryLog, QueryVector};

/// Hard cap on the projected universe (the table is `2^|U|`).
pub const MAX_LOSSLESS_UNIVERSE: usize = 20;

/// Reconstruct exact point probabilities of the log distribution projected
/// onto `universe`, using only pattern marginals (Proposition 1).
///
/// Returns `(projected query, probability)` for every non-zero atom.
///
/// # Panics
/// Panics if `universe` exceeds [`MAX_LOSSLESS_UNIVERSE`] features.
pub fn exact_point_probabilities(
    log: &QueryLog,
    entries: &[usize],
    universe: &QueryVector,
) -> Vec<(QueryVector, f64)> {
    let u = universe.len();
    assert!(
        u <= MAX_LOSSLESS_UNIVERSE,
        "lossless reconstruction needs 2^|U| marginals; |U| = {u} exceeds the cap"
    );
    let total = log.total_for(entries);
    if total == 0 {
        return Vec::new();
    }
    let features: Vec<FeatureId> = universe.iter().collect();
    let n_masks = 1usize << u;

    // Marginal table: m[mask] = p(Q ⊇ features(mask)).
    let mut table = vec![0.0f64; n_masks];
    for (mask, slot) in table.iter_mut().enumerate() {
        let pattern: QueryVector = features
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &f)| f)
            .collect();
        *slot = log.support_for(&pattern, entries) as f64 / total as f64;
    }

    // Superset Möbius transform: p_exact[S] = Σ_{T ⊇ S} (−1)^{|T\S|}·m[T].
    for bit in 0..u {
        for mask in 0..n_masks {
            if mask & (1 << bit) == 0 {
                table[mask] -= table[mask | (1 << bit)];
            }
        }
    }

    table
        .into_iter()
        .enumerate()
        .filter(|&(_, p)| p > 1e-12)
        .map(|(mask, p)| {
            let q: QueryVector = features
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &f)| f)
                .collect();
            (q, p)
        })
        .collect()
}

/// Number of marginals a lossless encoding of the universe needs (`2^|U|` —
/// the Verbosity cost Proposition 1 trades for exactness).
pub fn lossless_verbosity(universe: &QueryVector) -> u128 {
    1u128 << universe.len().min(127)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    /// Projected empirical distribution computed directly, as the oracle.
    fn oracle(log: &QueryLog, universe: &QueryVector) -> HashMap<QueryVector, f64> {
        let total = log.total_queries() as f64;
        let mut out: HashMap<QueryVector, f64> = HashMap::new();
        for (v, c) in log.entries() {
            *out.entry(v.intersection(universe)).or_insert(0.0) += *c as f64 / total;
        }
        out
    }

    fn check_reconstruction(log: &QueryLog, universe: &QueryVector) {
        let all = log.all_entry_indices();
        let reconstructed = exact_point_probabilities(log, &all, universe);
        let truth = oracle(log, universe);
        // Every reconstructed atom matches the oracle…
        for (q, p) in &reconstructed {
            let t = truth.get(q).copied().unwrap_or(0.0);
            assert!((p - t).abs() < 1e-9, "atom {q:?}: reconstructed {p} vs true {t}");
        }
        // …and nothing was missed.
        assert_eq!(reconstructed.len(), truth.values().filter(|&&p| p > 1e-12).count());
        let total: f64 = reconstructed.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "probabilities sum to {total}");
    }

    #[test]
    fn proposition_1_on_toy_log() {
        // The §5.1 toy log: marginals alone recover the exact distribution.
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 2, 3]), 1);
        log.add_vector(qv(&[0, 2]), 1);
        log.add_vector(qv(&[1, 2]), 1);
        check_reconstruction(&log, &qv(&[0, 1, 2, 3]));
    }

    #[test]
    fn reconstruction_on_skewed_multiplicities() {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 97);
        log.add_vector(qv(&[1, 2]), 2);
        log.add_vector(qv(&[]), 1);
        check_reconstruction(&log, &qv(&[0, 1, 2]));
    }

    #[test]
    fn projection_marginalizes_correctly() {
        // Universe smaller than the vectors: distinct queries can collapse.
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 5]), 1);
        log.add_vector(qv(&[0, 6]), 1);
        log.add_vector(qv(&[1]), 2);
        check_reconstruction(&log, &qv(&[0, 1]));
        // Projected onto {0,1}: {0} has probability 1/2 (two sources).
        let atoms = exact_point_probabilities(&log, &log.all_entry_indices(), &qv(&[0, 1]));
        let p0 = atoms.iter().find(|(q, _)| *q == qv(&[0])).map(|&(_, p)| p).unwrap();
        assert!((p0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn verbosity_is_exponential() {
        assert_eq!(lossless_verbosity(&qv(&[0, 1, 2])), 8);
        assert_eq!(lossless_verbosity(&QueryVector::empty()), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds the cap")]
    fn oversized_universe_rejected() {
        let ids: Vec<u32> = (0..=MAX_LOSSLESS_UNIVERSE as u32).collect();
        let log = QueryLog::new();
        exact_point_probabilities(&log, &[], &qv(&ids));
    }

    #[test]
    fn empty_log_reconstructs_nothing() {
        let log = QueryLog::new();
        assert!(exact_point_probabilities(&log, &[], &qv(&[0])).is_empty());
    }
}
