//! Portable summaries: a self-contained, versioned text format for storing
//! a compressed log and answering workload statistics later, without the
//! original log.
//!
//! This is the artifact a monitoring pipeline would actually ship: the
//! paper's use cases (index selection, view selection, online monitoring —
//! §2) all consume the summary *instead of* the log, so the summary must
//! survive on its own. The format stores the codebook (feature ↔ id), each
//! mixture component's size and non-zero marginals, and nothing else —
//! `O(Total Verbosity)` space, exactly the measure the paper optimizes.

use crate::compress::LogRSummary;
use crate::mixture::NaiveMixtureEncoding;
use logr_feature::{Codebook, Feature, FeatureClass, FeatureId, QueryLog};
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;

/// Format version tag.
const MAGIC: &str = "LOGR-SUMMARY v1";

/// A self-contained compressed-log summary.
#[derive(Debug, Clone)]
pub struct PortableSummary {
    /// Total queries in the compressed log.
    pub total_queries: u64,
    /// Feature codebook.
    pub codebook: Codebook,
    /// Components: `(query count, non-zero (feature, marginal) pairs)`.
    pub components: Vec<(u64, Vec<(FeatureId, f64)>)>,
}

/// Errors while reading a portable summary.
#[derive(Debug)]
pub enum PortableError {
    /// I/O failure.
    Io(std::io::Error),
    /// The input is not a valid v1 summary.
    Format {
        /// Line number (1-based) where the problem was found.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for PortableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortableError::Io(e) => write!(f, "i/o error: {e}"),
            PortableError::Format { line, message } => {
                write!(f, "format error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for PortableError {}

impl From<std::io::Error> for PortableError {
    fn from(e: std::io::Error) -> Self {
        PortableError::Io(e)
    }
}

impl PortableSummary {
    /// Capture a compression result together with its log's codebook.
    pub fn from_summary(summary: &LogRSummary, log: &QueryLog) -> Self {
        PortableSummary::from_mixture(&summary.mixture, log)
    }

    /// Capture a mixture encoding together with its log's codebook.
    pub fn from_mixture(mixture: &NaiveMixtureEncoding, log: &QueryLog) -> Self {
        let components = mixture
            .components()
            .iter()
            .map(|c| {
                let pairs =
                    c.encoding.support().iter().map(|&f| (f, c.encoding.marginal(f))).collect();
                (c.total, pairs)
            })
            .collect();
        PortableSummary {
            total_queries: mixture.total_queries(),
            codebook: log.codebook().clone(),
            components,
        }
    }

    /// Total Verbosity of the stored summary.
    pub fn total_verbosity(&self) -> usize {
        self.components.iter().map(|(_, pairs)| pairs.len()).sum()
    }

    /// Estimate how many log queries contain all the given features
    /// (§6.2's mixture estimator, reconstructed from storage).
    pub fn estimate_count(&self, features: &[Feature]) -> f64 {
        let Some(ids) =
            features.iter().map(|f| self.codebook.get(f)).collect::<Option<Vec<FeatureId>>>()
        else {
            return 0.0;
        };
        self.components
            .iter()
            .map(|(total, pairs)| {
                let product: f64 = ids
                    .iter()
                    .map(|id| pairs.iter().find(|(f, _)| f == id).map_or(0.0, |&(_, p)| p))
                    .product();
                *total as f64 * product
            })
            .sum()
    }

    /// Serialize to a writer.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        writeln!(w, "{MAGIC}")?;
        writeln!(w, "total\t{}", self.total_queries)?;
        writeln!(w, "features\t{}", self.codebook.len())?;
        for (id, feature) in self.codebook.iter() {
            writeln!(w, "f\t{}\t{}\t{}", id.0, feature.class.label(), escape(&feature.text))?;
        }
        writeln!(w, "components\t{}", self.components.len())?;
        for (total, pairs) in &self.components {
            writeln!(w, "c\t{}\t{}", total, pairs.len())?;
            for (f, p) in pairs {
                writeln!(w, "m\t{}\t{:.17e}", f.0, p)?;
            }
        }
        Ok(())
    }

    /// Deserialize from a reader.
    pub fn read_from(r: impl BufRead) -> Result<Self, PortableError> {
        let mut lines = r.lines().enumerate();
        let mut next = |expect: &str| -> Result<(usize, String), PortableError> {
            match lines.next() {
                Some((i, Ok(line))) => Ok((i + 1, line)),
                Some((i, Err(e))) => Err(PortableError::Format {
                    line: i + 1,
                    message: format!("read failure: {e}"),
                }),
                None => Err(PortableError::Format {
                    line: 0,
                    message: format!("unexpected end of input, expected {expect}"),
                }),
            }
        };

        let (line_no, magic) = next("header")?;
        if magic.trim() != MAGIC {
            return Err(PortableError::Format {
                line: line_no,
                message: format!("bad header {magic:?}"),
            });
        }
        let total_queries = parse_kv(next("total")?, "total")?;
        let n_features = parse_kv(next("features")?, "features")? as usize;

        let mut codebook = Codebook::new();
        for _ in 0..n_features {
            let (line_no, line) = next("feature line")?;
            let parts: Vec<&str> = line.splitn(4, '\t').collect();
            if parts.len() != 4 || parts[0] != "f" {
                return Err(PortableError::Format {
                    line: line_no,
                    message: "expected 'f\\t<id>\\t<class>\\t<text>'".into(),
                });
            }
            let class = parse_class(parts[2]).ok_or_else(|| PortableError::Format {
                line: line_no,
                message: format!("unknown feature class {:?}", parts[2]),
            })?;
            let id = codebook.intern(Feature::new(class, unescape(parts[3])));
            let declared: u32 = parts[1].parse().map_err(|_| PortableError::Format {
                line: line_no,
                message: "bad feature id".into(),
            })?;
            if id.0 != declared {
                return Err(PortableError::Format {
                    line: line_no,
                    message: format!("non-dense feature ids: expected {}, found {declared}", id.0),
                });
            }
        }

        let n_components = parse_kv(next("components")?, "components")? as usize;
        let mut components = Vec::with_capacity(n_components);
        for _ in 0..n_components {
            let (line_no, line) = next("component line")?;
            let parts: Vec<&str> = line.split('\t').collect();
            if parts.len() != 3 || parts[0] != "c" {
                return Err(PortableError::Format {
                    line: line_no,
                    message: "expected 'c\\t<total>\\t<n_marginals>'".into(),
                });
            }
            let total: u64 = parts[1].parse().map_err(|_| PortableError::Format {
                line: line_no,
                message: "bad component total".into(),
            })?;
            let n_marginals: usize = parts[2].parse().map_err(|_| PortableError::Format {
                line: line_no,
                message: "bad marginal count".into(),
            })?;
            let mut pairs = Vec::with_capacity(n_marginals);
            for _ in 0..n_marginals {
                let (line_no, line) = next("marginal line")?;
                let parts: Vec<&str> = line.split('\t').collect();
                if parts.len() != 3 || parts[0] != "m" {
                    return Err(PortableError::Format {
                        line: line_no,
                        message: "expected 'm\\t<feature>\\t<marginal>'".into(),
                    });
                }
                let f: u32 = parts[1].parse().map_err(|_| PortableError::Format {
                    line: line_no,
                    message: "bad feature id".into(),
                })?;
                let p: f64 = parts[2].parse().map_err(|_| PortableError::Format {
                    line: line_no,
                    message: "bad marginal".into(),
                })?;
                if !(0.0..=1.0 + 1e-9).contains(&p) {
                    return Err(PortableError::Format {
                        line: line_no,
                        message: format!("marginal {p} out of [0,1]"),
                    });
                }
                pairs.push((FeatureId(f), p));
            }
            components.push((total, pairs));
        }
        Ok(PortableSummary { total_queries, codebook, components })
    }

    /// Save to a file on the default (real) filesystem.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.save_with(&*logr_cluster::vfs::default_vfs(), path.as_ref())
    }

    /// Save to a file through an explicit [`Vfs`] — the injection point
    /// the fault suites drive; [`PortableSummary::save`] is this over the
    /// real filesystem.
    ///
    /// [`Vfs`]: logr_cluster::vfs::Vfs
    pub fn save_with(&self, vfs: &dyn logr_cluster::vfs::Vfs, path: &Path) -> std::io::Result<()> {
        let mut out = Vec::new();
        self.write_to(&mut out)?;
        vfs.write(path, &out)
    }

    /// Load from a file on the default (real) filesystem.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PortableError> {
        PortableSummary::load_with(&*logr_cluster::vfs::default_vfs(), path.as_ref())
    }

    /// Load from a file through an explicit [`Vfs`].
    ///
    /// [`Vfs`]: logr_cluster::vfs::Vfs
    pub fn load_with(vfs: &dyn logr_cluster::vfs::Vfs, path: &Path) -> Result<Self, PortableError> {
        let bytes = vfs.read(path)?;
        PortableSummary::read_from(std::io::BufReader::new(bytes.as_slice()))
    }
}

fn parse_kv((line_no, line): (usize, String), key: &str) -> Result<u64, PortableError> {
    let parts: Vec<&str> = line.split('\t').collect();
    if parts.len() != 2 || parts[0] != key {
        return Err(PortableError::Format {
            line: line_no,
            message: format!("expected '{key}\\t<value>', found {line:?}"),
        });
    }
    parts[1]
        .parse()
        .map_err(|_| PortableError::Format { line: line_no, message: format!("bad {key} value") })
}

fn parse_class(label: &str) -> Option<FeatureClass> {
    Some(match label {
        "SELECT" => FeatureClass::Select,
        "FROM" => FeatureClass::From,
        "WHERE" => FeatureClass::Where,
        "GROUPBY" => FeatureClass::GroupBy,
        "ORDERBY" => FeatureClass::OrderBy,
        "TEMPLATE" => FeatureClass::Template,
        "PARAM" => FeatureClass::Param,
        _ => return None,
    })
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\t', "\\t").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::LogR;
    use logr_feature::LogIngest;

    fn sample() -> (QueryLog, PortableSummary) {
        let mut ingest = LogIngest::new();
        for _ in 0..30 {
            ingest.ingest("SELECT id FROM messages WHERE status = ?");
        }
        for _ in 0..10 {
            ingest.ingest("SELECT balance FROM accounts WHERE owner = ?");
        }
        let (log, _) = ingest.finish();
        let summary = LogR::with_clusters(2).compress(&log);
        let portable = PortableSummary::from_summary(&summary, &log);
        (log, portable)
    }

    #[test]
    fn estimates_survive_round_trip() {
        let (_, portable) = sample();
        let mut buf = Vec::new();
        portable.write_to(&mut buf).unwrap();
        let loaded = PortableSummary::read_from(buf.as_slice()).unwrap();

        for features in [
            vec![Feature::from_table("messages")],
            vec![Feature::from_table("accounts"), Feature::where_atom("owner = ?")],
            vec![Feature::select("id"), Feature::where_atom("status = ?")],
        ] {
            let before = portable.estimate_count(&features);
            let after = loaded.estimate_count(&features);
            assert!((before - after).abs() < 1e-9, "{features:?}: {before} vs {after}");
        }
        assert_eq!(loaded.total_queries, portable.total_queries);
        assert_eq!(loaded.total_verbosity(), portable.total_verbosity());
    }

    #[test]
    fn estimates_match_live_summary() {
        let mut ingest = LogIngest::new();
        for _ in 0..30 {
            ingest.ingest("SELECT id FROM messages WHERE status = ?");
        }
        let (log, _) = ingest.finish();
        let summary = LogR::with_clusters(1).compress(&log);
        let portable = PortableSummary::from_summary(&summary, &log);
        let features = [Feature::from_table("messages"), Feature::where_atom("status = ?")];
        assert!(
            (portable.estimate_count(&features) - summary.estimate_count_features(&log, &features))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn unknown_feature_estimates_zero() {
        let (_, portable) = sample();
        assert_eq!(portable.estimate_count(&[Feature::from_table("nope")]), 0.0);
    }

    #[test]
    fn escaping_round_trips() {
        for text in ["plain", "tab\there", "line\nbreak", "back\\slash", "mix\\t\\n"] {
            assert_eq!(unescape(&escape(text)), text);
        }
    }

    #[test]
    fn rejects_bad_header() {
        let err = PortableSummary::read_from("NOT A SUMMARY\n".as_bytes()).unwrap_err();
        assert!(matches!(err, PortableError::Format { line: 1, .. }));
    }

    #[test]
    fn rejects_out_of_range_marginal() {
        let (_, portable) = sample();
        let mut buf = Vec::new();
        portable.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Corrupt the first marginal value.
        let corrupted = text
            .lines()
            .map(|l| {
                if l.starts_with("m\t") {
                    let mut parts: Vec<&str> = l.split('\t').collect();
                    parts[2] = "7.5";
                    parts.join("\t")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(PortableSummary::read_from(corrupted.as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let (_, portable) = sample();
        let mut buf = Vec::new();
        portable.write_to(&mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(PortableSummary::read_from(truncated).is_err());
    }

    #[test]
    fn file_round_trip() {
        let (_, portable) = sample();
        let path = std::env::temp_dir().join("logr_portable_test.summary");
        portable.save(&path).unwrap();
        let loaded = PortableSummary::load(&path).unwrap();
        assert_eq!(loaded.total_queries, portable.total_queries);
        std::fs::remove_file(&path).ok();
    }
}
