//! LogR core: lossy query-log compression for workload analytics.
//!
//! This crate implements the contribution of *"Query Log Compression for
//! Workload Analytics"* (Xie, Chandola, Kennedy — VLDB 2018):
//!
//! * [`encoding`] — pattern-based encodings (§2.3) and the **naive
//!   encoding** special case (§3.2) with its closed-form entropy,
//!   probability and marginal estimators (§4.1 Eq. 1, §6.2);
//! * [`error`] — empirical log entropy and **Reproduction Error** (§4.1);
//! * [`maxent`] — maximum-entropy inference for *general* pattern encodings
//!   via pattern-equivalence classes and iterative proportional fitting
//!   (§4.1, Appendix C.1); powers the Fig. 4 validation and §6.4 refinement;
//! * [`sampling`] — sampling the space Ω_E of distributions admitted by an
//!   encoding, and the **Deviation** / **Ambiguity** estimators built on it
//!   (§3.3, Appendix C.2);
//! * [`mixture`] — **pattern mixture encodings**: per-cluster naive
//!   encodings with generalized Error/Verbosity and mixture statistics
//!   (§5, §6.2);
//! * [`synthesis`] — the §6.3 diagnostics: pattern synthesis error and
//!   marginal deviation;
//! * [`refine`] — feature-correlation refinement: `WC(b, S)`, `corr_rank`,
//!   candidate mining and greedy diversification (§6.4);
//! * [`compress`] — the `LogR` front end tying clustering + encoding +
//!   refinement together behind one tunable knob (§6);
//! * [`interpret`] — human-readable summary rendering (Fig. 1, Fig. 10,
//!   Appendix E);
//! * [`portable`] — self-contained, versioned storage of summaries
//!   (ship the summary, drop the log);
//! * [`drift`] — workload drift and query-typicality monitors built on
//!   mixtures (the §2 online-monitoring application);
//! * [`stream`] — incremental streaming summarization: tumbling/sliding
//!   windows over a live query stream, per-window mixture summaries plus
//!   drift/novelty monitoring against a rolling baseline, and a sharded
//!   history whose condensed matrix grows per window instead of being
//!   rebuilt.
//!
//! All entropies are in **nats**.

pub mod compress;
pub mod drift;
pub mod encoding;
pub mod error;
pub mod interpret;
pub mod lossless;
pub mod maxent;
pub mod mixture;
pub mod portable;
pub mod refine;
pub mod sampling;
pub mod stream;
pub mod synthesis;

pub use compress::{CompressionObjective, LogR, LogRConfig, LogRSummary};
pub use drift::{feature_drift, novelty_scores, query_typicality, DriftReport};
pub use encoding::{NaiveEncoding, PatternEncoding};
pub use error::{empirical_entropy, empirical_entropy_for, naive_error, naive_error_for};
pub use maxent::{ClassSystem, GeneralEncoding, MaxEntError};
pub use mixture::NaiveMixtureEncoding;
pub use portable::{PortableError, PortableSummary};
pub use refine::{corr_rank, feature_correlation, RefineConfig, RefinedMixture};
pub use sampling::{ambiguity_dimension, estimate_deviation, DeviationEstimate};
pub use stream::{
    rotate_baseline, CloseDelta, StreamConfig, StreamState, StreamSummarizer, TimeWindows,
    WindowSummary,
};
// Source configuration re-exported so stream callers configure the
// record → feature mapping without naming `logr-source` directly.
pub use logr_source::{SourceConfig, TemplateConfig};
pub use synthesis::{marginal_deviation, synthesis_error};
