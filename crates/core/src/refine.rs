//! Feature-correlation refinement of naive encodings (paper §6.4).
//!
//! A naive encoding misprices patterns whose features are correlated. The
//! paper scores a candidate pattern `b` by its *feature correlation*
//! `WC(b, S) = ln p(Q ⊇ b) − ln ρ_S(Q ⊇ b)` — the log gap between the true
//! marginal and the independence estimate — and ranks candidates by
//! `corr_rank(b) = p(Q ⊇ b) · WC(b, S)`, which §7.1 shows tracks the Error
//! reduction of adding `b` to the encoding. Pattern sets are *diversified*
//! greedily to avoid redundant overlapping picks.

use crate::encoding::NaiveEncoding;
use crate::error::empirical_entropy_for;
use crate::maxent::{GeneralEncoding, MaxEntError};
use crate::mixture::NaiveMixtureEncoding;
use logr_feature::{FeatureId, QueryLog, QueryVector};
use std::collections::HashMap;

/// Feature correlation `WC(b, S)` of a pattern against a naive encoding
/// (§6.4). Positive values mean the features co-occur more often than
/// independence predicts. Returns 0 for patterns absent from the partition.
pub fn feature_correlation(
    log: &QueryLog,
    entries: &[usize],
    pattern: &QueryVector,
    naive: &NaiveEncoding,
) -> f64 {
    let total = log.total_for(entries);
    if total == 0 {
        return 0.0;
    }
    let true_marginal = log.support_for(pattern, entries) as f64 / total as f64;
    if true_marginal <= 0.0 {
        return 0.0;
    }
    let est = naive.estimate_marginal(pattern).max(1e-300);
    true_marginal.ln() - est.ln()
}

/// `corr_rank(b) = p(Q ⊇ b) · WC(b, S)` (§6.4).
pub fn corr_rank(
    log: &QueryLog,
    entries: &[usize],
    pattern: &QueryVector,
    naive: &NaiveEncoding,
) -> f64 {
    let total = log.total_for(entries);
    if total == 0 {
        return 0.0;
    }
    let true_marginal = log.support_for(pattern, entries) as f64 / total as f64;
    true_marginal * feature_correlation(log, entries, pattern, naive)
}

/// Refinement configuration.
#[derive(Debug, Clone, Copy)]
pub struct RefineConfig {
    /// Patterns added per mixture component.
    pub patterns_per_component: usize,
    /// Maximum features per candidate pattern (2 or 3 in the paper's
    /// experiments).
    pub max_pattern_size: usize,
    /// Greedy diversification: skip candidates sharing a feature with an
    /// already-selected pattern. §7.2 finds the benefit of heavier
    /// diversification minimal.
    pub diversify: bool,
    /// Cap on enumerated candidates per component (support-ordered).
    pub candidate_limit: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            patterns_per_component: 3,
            max_pattern_size: 3,
            diversify: true,
            candidate_limit: 5_000,
        }
    }
}

/// Enumerate candidate patterns (feature pairs, optionally extended to
/// triples) co-occurring within the partition, most frequent first.
pub fn mine_candidates(
    log: &QueryLog,
    entries: &[usize],
    config: &RefineConfig,
) -> Vec<QueryVector> {
    let mut pair_support: HashMap<(FeatureId, FeatureId), u64> = HashMap::new();
    for &i in entries {
        let (v, c) = &log.entries()[i];
        let ids = v.ids();
        for (a_idx, &a) in ids.iter().enumerate() {
            for &b in &ids[a_idx + 1..] {
                *pair_support.entry((a, b)).or_insert(0) += c;
            }
        }
    }
    let mut pairs: Vec<((FeatureId, FeatureId), u64)> = pair_support.into_iter().collect();
    pairs.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    pairs.truncate(config.candidate_limit);

    let mut candidates: Vec<QueryVector> =
        pairs.iter().map(|&((a, b), _)| QueryVector::new(vec![a, b])).collect();

    if config.max_pattern_size >= 3 {
        // Extend the strongest pairs by co-occurring features.
        let top = pairs.len().min(64);
        let mut seen: HashMap<QueryVector, ()> = HashMap::new();
        for &((a, b), _) in pairs.iter().take(top) {
            let base = QueryVector::new(vec![a, b]);
            let mut ext_support: HashMap<FeatureId, u64> = HashMap::new();
            for &i in entries {
                let (v, c) = &log.entries()[i];
                if v.contains_all(&base) {
                    for f in v.iter() {
                        if f != a && f != b {
                            *ext_support.entry(f).or_insert(0) += c;
                        }
                    }
                }
            }
            let mut exts: Vec<(FeatureId, u64)> = ext_support.into_iter().collect();
            exts.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            for (f, _) in exts.into_iter().take(4) {
                let triple = QueryVector::new(vec![a, b, f]);
                if seen.insert(triple.clone(), ()).is_none() {
                    candidates.push(triple);
                }
            }
        }
    }
    candidates.truncate(config.candidate_limit);
    candidates
}

/// Select the top patterns for one partition by `corr_rank`, with optional
/// greedy diversification.
pub fn refine_component(
    log: &QueryLog,
    entries: &[usize],
    naive: &NaiveEncoding,
    config: &RefineConfig,
) -> Vec<(QueryVector, f64)> {
    let mut scored: Vec<(QueryVector, f64)> = mine_candidates(log, entries, config)
        .into_iter()
        .map(|b| {
            let score = corr_rank(log, entries, &b, naive);
            (b, score)
        })
        .filter(|&(_, s)| s.abs() > 1e-12)
        .collect();
    scored.sort_by(|x, y| y.1.abs().total_cmp(&x.1.abs()));

    let mut selected: Vec<(QueryVector, f64)> = Vec::new();
    let mut used = QueryVector::empty();
    for (b, s) in scored {
        if selected.len() >= config.patterns_per_component {
            break;
        }
        if config.diversify && b.intersection_size(&used) > 0 {
            continue;
        }
        used = used.union(&b);
        selected.push((b, s));
    }
    selected
}

/// A naive mixture encoding refined with extra per-component patterns and
/// re-evaluated via exact max-ent inference (§6.4, Fig. 5a).
#[derive(Debug, Clone)]
pub struct RefinedMixture {
    /// Added patterns with their `corr_rank` scores, per component.
    pub added: Vec<Vec<(QueryVector, f64)>>,
    /// Refined per-component Reproduction Errors.
    pub component_errors: Vec<f64>,
    /// Weighted refined Error (comparable to
    /// [`NaiveMixtureEncoding::error`]).
    pub error: f64,
    /// Total Verbosity including the added patterns.
    pub total_verbosity: usize,
}

/// Refine every component of a mixture and recompute its Error exactly.
///
/// Each component's encoding becomes {singleton patterns over its support}
/// ∪ {added patterns}; the max-ent distribution is solved per connected
/// component of overlapping patterns. Components whose refined inference
/// fails (pattern-group blow-up) fall back to their naive error.
pub fn refine_mixture(
    log: &QueryLog,
    mixture: &NaiveMixtureEncoding,
    config: &RefineConfig,
) -> RefinedMixture {
    let mut added = Vec::with_capacity(mixture.k());
    let mut component_errors = Vec::with_capacity(mixture.k());
    let mut error = 0.0;
    let mut total_verbosity = 0usize;

    for component in mixture.components() {
        let picks = refine_component(log, &component.entries, &component.encoding, config);
        let refined = refined_component_error(log, &component.entries, &component.encoding, &picks);
        let comp_error = refined.unwrap_or(component.error);
        error += component.weight * comp_error;
        total_verbosity += component.encoding.verbosity() + picks.len();
        component_errors.push(comp_error);
        added.push(picks);
    }

    RefinedMixture { added, component_errors, error, total_verbosity }
}

/// Exact Reproduction Error of a component's naive encoding extended with
/// `patterns` (the quantity Fig. 4e/f plots against `corr_rank`).
pub fn refined_component_error(
    log: &QueryLog,
    entries: &[usize],
    naive: &NaiveEncoding,
    patterns: &[(QueryVector, f64)],
) -> Result<f64, MaxEntError> {
    let support = naive.support();
    let universe_size = support.len();
    let mut all_patterns: Vec<QueryVector> =
        support.iter().map(|&f| QueryVector::new(vec![f])).collect();
    all_patterns.extend(patterns.iter().map(|(b, _)| b.clone()));
    let enc = GeneralEncoding::measure(log, entries, all_patterns, universe_size);
    let h = enc.entropy()?;
    Ok(h - empirical_entropy_for(log, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_cluster::Clustering;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    /// Features 0,1 perfectly correlated; feature 2 independent.
    fn correlated_log() -> QueryLog {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1, 2]), 2);
        log.add_vector(qv(&[0, 1]), 2);
        log.add_vector(qv(&[2]), 2);
        log.add_vector(qv(&[]), 2);
        log
    }

    #[test]
    fn correlation_positive_for_correlated_pair() {
        let log = correlated_log();
        let all = log.all_entry_indices();
        let naive = NaiveEncoding::from_log(&log);
        // p({0,1}) = 0.5 vs independence 0.25 → WC = ln 2.
        let wc = feature_correlation(&log, &all, &qv(&[0, 1]), &naive);
        assert!((wc - std::f64::consts::LN_2).abs() < 1e-9, "WC = {wc}");
    }

    #[test]
    fn correlation_zero_for_independent_pair() {
        let log = correlated_log();
        let all = log.all_entry_indices();
        let naive = NaiveEncoding::from_log(&log);
        // Features 0 and 2 are independent: p({0,2}) = 0.25 = 0.5·0.5.
        let wc = feature_correlation(&log, &all, &qv(&[0, 2]), &naive);
        assert!(wc.abs() < 1e-9, "WC = {wc}");
    }

    #[test]
    fn correlation_zero_for_absent_pattern() {
        let log = correlated_log();
        let all = log.all_entry_indices();
        let naive = NaiveEncoding::from_log(&log);
        assert_eq!(feature_correlation(&log, &all, &qv(&[0, 1, 2, 3]), &naive), 0.0);
    }

    #[test]
    fn corr_rank_weights_by_frequency() {
        let log = correlated_log();
        let all = log.all_entry_indices();
        let naive = NaiveEncoding::from_log(&log);
        let rank = corr_rank(&log, &all, &qv(&[0, 1]), &naive);
        assert!((rank - 0.5 * std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn mining_finds_the_correlated_pair_first() {
        let log = correlated_log();
        let all = log.all_entry_indices();
        let naive = NaiveEncoding::from_log(&log);
        let config = RefineConfig::default();
        let picks = refine_component(&log, &all, &naive, &config);
        assert!(!picks.is_empty());
        assert_eq!(picks[0].0, qv(&[0, 1]), "top pick should be the correlated pair");
        assert!(picks[0].1 > 0.0);
    }

    #[test]
    fn refined_error_matches_corr_rank_promise() {
        // Adding the correlated pair must reduce Error; by exactly ln 2·…
        // here the naive error is h(0.5)·3 − H(ρ*): features 0,1 correlated
        // contribute ln 2 of surplus, removable by the pattern {0,1}.
        let log = correlated_log();
        let all = log.all_entry_indices();
        let naive = NaiveEncoding::from_log(&log);
        let base = crate::error::naive_error(&log);
        let refined = refined_component_error(&log, &all, &naive, &[(qv(&[0, 1]), 0.0)]).unwrap();
        assert!(refined < base - 0.5, "refined {refined} vs base {base}");
        // Perfect correlation is a boundary max-ent solution; IPF gets
        // within ~1e-4, so allow a small tolerance.
        assert!(refined.abs() < 1e-2, "pattern fully explains the correlation: {refined}");
    }

    #[test]
    fn refining_with_nothing_reproduces_naive_error() {
        let log = correlated_log();
        let all = log.all_entry_indices();
        let naive = NaiveEncoding::from_log(&log);
        let e = refined_component_error(&log, &all, &naive, &[]).unwrap();
        assert!((e - crate::error::naive_error(&log)).abs() < 1e-9);
    }

    #[test]
    fn refine_mixture_reduces_error() {
        let log = correlated_log();
        let mixture = NaiveMixtureEncoding::single(&log);
        let refined = refine_mixture(&log, &mixture, &RefineConfig::default());
        assert!(refined.error <= mixture.error() + 1e-9);
        assert!(refined.total_verbosity >= mixture.total_verbosity());
        assert_eq!(refined.added.len(), 1);
    }

    #[test]
    fn refine_mixture_on_partitioned_log() {
        let log = correlated_log();
        let mixture = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1, 1]));
        let refined = refine_mixture(&log, &mixture, &RefineConfig::default());
        assert_eq!(refined.added.len(), 2);
        assert!(refined.error <= mixture.error() + 1e-9);
    }

    #[test]
    fn diversification_avoids_overlapping_picks() {
        let mut log = QueryLog::new();
        // Three features all mutually correlated.
        log.add_vector(qv(&[0, 1, 2]), 5);
        log.add_vector(qv(&[]), 5);
        let all = log.all_entry_indices();
        let naive = NaiveEncoding::from_log(&log);
        let config =
            RefineConfig { patterns_per_component: 3, diversify: true, ..Default::default() };
        let picks = refine_component(&log, &all, &naive, &config);
        // With diversification, once {0,1} (or a triple) is picked, further
        // overlapping pairs are skipped.
        for w in picks.windows(2) {
            assert_eq!(w[0].0.intersection_size(&w[1].0), 0);
        }
        let config_no = RefineConfig { diversify: false, ..config };
        let picks_no = refine_component(&log, &all, &naive, &config_no);
        assert!(picks_no.len() >= picks.len());
    }
}
