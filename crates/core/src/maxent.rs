//! Maximum-entropy inference for general pattern encodings.
//!
//! Computing Reproduction Error for an arbitrary pattern encoding needs the
//! maximum-entropy distribution ρ_E over the (exponentially large) query
//! space subject to the encoding's marginal constraints (§4.1). Appendix C.1
//! observes that queries sharing a *containment signature* against the
//! encoding's patterns are interchangeable — they form equivalence classes,
//! and the max-ent distribution is uniform within each class. This module:
//!
//! * builds the class system exactly, with class cardinalities obtained by
//!   inclusion–exclusion over pattern unions (no enumeration of the query
//!   space);
//! * solves for the max-ent class distribution by iterative proportional
//!   fitting — the "iterative scaling" route the paper cites (Darroch &
//!   Ratcliff) as the alternative to its CVX solver;
//! * decomposes mixed encodings (e.g. a naive encoding refined with extra
//!   patterns, §6.4) into independent connected components so the practical
//!   cost stays proportional to the largest overlapping pattern group —
//!   the same structural limit the original MTV implementation exposes.
//!
//! All sizes are kept in the *projected* space spanned by the union of
//! pattern features (n′ of them); the `2^(F−n′)` multiplier common to every
//! class enters entropies as the additive constant `(F−n′)·ln 2`.

use logr_feature::{FeatureId, QueryLog, QueryVector};
use logr_math::xlogx;
use std::collections::HashMap;
use std::fmt;

/// Hard cap on patterns per connected component (the classic max-ent
/// blow-up; MTV's own implementation stops at 15).
pub const MAX_PATTERNS_PER_COMPONENT: usize = 20;

/// Failure modes of max-ent inference.
#[derive(Debug, Clone, PartialEq)]
pub enum MaxEntError {
    /// A connected component had more patterns than the cap.
    TooManyPatterns {
        /// Patterns in the offending component.
        count: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Iterative scaling failed to reach tolerance.
    DidNotConverge {
        /// Final worst constraint violation.
        residual: f64,
    },
    /// A constraint was unsatisfiable (e.g. marginal 1 on an empty class).
    Infeasible,
}

impl fmt::Display for MaxEntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaxEntError::TooManyPatterns { count, cap } => {
                write!(f, "component has {count} patterns, cap is {cap}")
            }
            MaxEntError::DidNotConverge { residual } => {
                write!(f, "iterative scaling did not converge (residual {residual:.3e})")
            }
            MaxEntError::Infeasible => write!(f, "constraints are infeasible"),
        }
    }
}

impl std::error::Error for MaxEntError {}

/// One equivalence class: a containment signature and its cardinality in the
/// projected feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct Class {
    /// Bit `j` set ⇔ every member contains pattern `j`.
    pub signature: u32,
    /// Number of projected queries in the class (within `{0,1}^{n′}`).
    pub size: f64,
}

/// The pattern-equivalence class system of an encoding (Appendix C.1).
#[derive(Debug, Clone)]
pub struct ClassSystem {
    patterns: Vec<QueryVector>,
    classes: Vec<Class>,
    class_of_signature: HashMap<u32, usize>,
    /// Features appearing in at least one pattern (the projected space).
    projected_features: Vec<FeatureId>,
}

impl ClassSystem {
    /// Build the class system for a set of patterns.
    ///
    /// `patterns` must be non-empty feature sets. Fails when more than
    /// [`MAX_PATTERNS_PER_COMPONENT`] patterns are given (callers should
    /// decompose into connected components first — see [`GeneralEncoding`]).
    pub fn build(patterns: &[QueryVector]) -> Result<ClassSystem, MaxEntError> {
        let m = patterns.len();
        if m > MAX_PATTERNS_PER_COMPONENT {
            return Err(MaxEntError::TooManyPatterns { count: m, cap: MAX_PATTERNS_PER_COMPONENT });
        }
        // Compact the union of pattern features to bit positions.
        let mut feat_index: HashMap<FeatureId, usize> = HashMap::new();
        let mut projected_features = Vec::new();
        for p in patterns {
            for f in p.iter() {
                feat_index.entry(f).or_insert_with(|| {
                    projected_features.push(f);
                    projected_features.len() - 1
                });
            }
        }
        let n_prime = projected_features.len();
        assert!(n_prime <= 128, "pattern unions above 128 features unsupported");
        let masks: Vec<u128> = patterns
            .iter()
            .map(|p| p.iter().map(|f| 1u128 << feat_index[&f]).fold(0u128, |acc, bit| acc | bit))
            .collect();

        // u[T] = |{q ∈ {0,1}^{n'} : q ⊇ ∪_{j∈T} b_j}| = 2^(n' − |∪ masks|).
        let subsets = 1usize << m;
        let mut union_bits = vec![0u32; subsets];
        for (t, slot) in union_bits.iter_mut().enumerate().skip(1) {
            let low = t.trailing_zeros() as usize;
            let rest = t & (t - 1);
            let mask = masks[low]
                | masks
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| rest & (1 << j) != 0)
                    .fold(0u128, |acc, (_, &mk)| acc | mk);
            // Recomputing the union per subset is O(m·2^m); m ≤ 20 keeps it
            // cheap and avoids storing 2^m u128 masks.
            *slot = mask.count_ones();
        }
        let u: Vec<f64> =
            union_bits.iter().map(|&bits| 2f64.powi(n_prime as i32 - bits as i32)).collect();

        // size(S) = Σ_{T ⊇ S} (−1)^{|T\S|} u[T]  — superset Möbius transform.
        let mut size = u;
        for j in 0..m {
            for t in 0..subsets {
                if t & (1 << j) == 0 {
                    size[t] -= size[t | (1 << j)];
                }
            }
        }

        let mut classes = Vec::new();
        let mut class_of_signature = HashMap::new();
        for (sig, &s) in size.iter().enumerate() {
            // Tolerate tiny negative FP residue from the transform.
            if s > 0.5 {
                class_of_signature.insert(sig as u32, classes.len());
                classes.push(Class { signature: sig as u32, size: s.round() });
            }
        }

        Ok(ClassSystem {
            patterns: patterns.to_vec(),
            classes,
            class_of_signature,
            projected_features,
        })
    }

    /// The encoding's patterns.
    pub fn patterns(&self) -> &[QueryVector] {
        &self.patterns
    }

    /// Non-empty classes.
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// Number of projected features `n′`.
    pub fn n_projected(&self) -> usize {
        self.projected_features.len()
    }

    /// Features spanned by the patterns.
    pub fn projected_features(&self) -> &[FeatureId] {
        &self.projected_features
    }

    /// Containment signature of an arbitrary query vector.
    pub fn signature_of(&self, q: &QueryVector) -> u32 {
        let mut sig = 0u32;
        for (j, p) in self.patterns.iter().enumerate() {
            if q.contains_all(p) {
                sig |= 1 << j;
            }
        }
        sig
    }

    /// Class index of a signature, if the class is non-empty.
    pub fn class_index(&self, signature: u32) -> Option<usize> {
        self.class_of_signature.get(&signature).copied()
    }

    /// Max-ent class distribution subject to `p(Q ⊇ b_j) = targets[j]`.
    ///
    /// Returns per-class probabilities summing to 1 (over the projected
    /// space; the full-space distribution is uniform within classes).
    pub fn maxent(&self, targets: &[f64]) -> Result<Vec<f64>, MaxEntError> {
        assert_eq!(targets.len(), self.patterns.len(), "target per pattern required");
        let total_size: f64 = self.classes.iter().map(|c| c.size).sum();
        // Start from the unconstrained max-ent (uniform over queries).
        let mut q: Vec<f64> = self.classes.iter().map(|c| c.size / total_size).collect();

        // Feasibility screen: a target > 0 needs some class carrying the bit.
        for (j, &t) in targets.iter().enumerate() {
            let capacity: f64 = self
                .classes
                .iter()
                .zip(&q)
                .filter(|(c, _)| c.signature & (1 << j) != 0)
                .map(|(c, _)| c.size)
                .sum();
            if t > 0.0 && capacity == 0.0 {
                return Err(MaxEntError::Infeasible);
            }
        }

        let tol = 1e-10;
        let max_rounds = 20_000;
        let mut residual = f64::INFINITY;
        let mut checkpoint = f64::INFINITY;
        for round in 0..max_rounds {
            // Stall detection: boundary solutions converge sublinearly
            // (~1/round); once progress per 64 rounds drops below 10%,
            // further rounds buy almost nothing — bail and let the
            // acceptance threshold below decide.
            if round % 64 == 0 {
                if residual.is_finite() && residual > checkpoint * 0.90 {
                    break;
                }
                checkpoint = residual;
            }
            residual = 0.0;
            for (j, &t) in targets.iter().enumerate() {
                let bit = 1u32 << j;
                let mj: f64 = self
                    .classes
                    .iter()
                    .zip(&q)
                    .filter(|(c, _)| c.signature & bit != 0)
                    .map(|(_, &p)| p)
                    .sum();
                residual = residual.max((mj - t).abs());
                // IPF step on the binary partition {contains b_j, doesn't}.
                let (scale_in, scale_out) = if t <= 0.0 {
                    (0.0, if mj < 1.0 { 1.0 / (1.0 - mj) } else { 1.0 })
                } else if t >= 1.0 {
                    (if mj > 0.0 { 1.0 / mj } else { 1.0 }, 0.0)
                } else if mj <= 0.0 || mj >= 1.0 {
                    // Degenerate current state; nudge toward feasibility.
                    (1.0, 1.0)
                } else {
                    (t / mj, (1.0 - t) / (1.0 - mj))
                };
                for (c, p) in self.classes.iter().zip(q.iter_mut()) {
                    *p *= if c.signature & bit != 0 { scale_in } else { scale_out };
                }
            }
            if residual < tol {
                return Ok(q);
            }
        }
        if residual < 1e-3 {
            // Boundary solutions (classes forced to zero mass by equalities
            // among targets) make IPF converge sublinearly (~1/rounds); the
            // entropy error is O(residual), negligible for every downstream
            // use, so accept the near-converged point.
            return Ok(q);
        }
        Err(MaxEntError::DidNotConverge { residual })
    }

    /// Entropy (nats) of the full-space max-ent distribution given the class
    /// probabilities, over a universe of `universe_size` features:
    /// `H = −Σ q·ln q + Σ q·ln size + (F − n′)·ln 2`.
    pub fn entropy(&self, q: &[f64], universe_size: usize) -> f64 {
        assert!(universe_size >= self.n_projected(), "universe smaller than pattern span");
        let h_classes: f64 = -q.iter().map(|&p| xlogx(p)).sum::<f64>();
        let spread: f64 = self.classes.iter().zip(q).map(|(c, &p)| p * c.size.ln()).sum();
        h_classes + spread + (universe_size - self.n_projected()) as f64 * std::f64::consts::LN_2
    }
}

/// A general encoding: patterns with target marginals over a feature
/// universe, solved per connected component.
#[derive(Debug, Clone)]
pub struct GeneralEncoding {
    patterns: Vec<QueryVector>,
    targets: Vec<f64>,
    universe_size: usize,
}

impl GeneralEncoding {
    /// Build from pattern/marginal pairs over a universe of
    /// `universe_size` features.
    pub fn new(patterns: Vec<QueryVector>, targets: Vec<f64>, universe_size: usize) -> Self {
        assert_eq!(patterns.len(), targets.len(), "target per pattern required");
        GeneralEncoding { patterns, targets, universe_size }
    }

    /// Measure pattern marginals from (a subset of) a log.
    pub fn measure(
        log: &QueryLog,
        entries: &[usize],
        patterns: Vec<QueryVector>,
        universe_size: usize,
    ) -> Self {
        let total = log.total_for(entries).max(1) as f64;
        let targets = patterns.iter().map(|b| log.support_for(b, entries) as f64 / total).collect();
        GeneralEncoding::new(patterns, targets, universe_size)
    }

    /// The encoding's patterns.
    pub fn patterns(&self) -> &[QueryVector] {
        &self.patterns
    }

    /// Verbosity — number of patterns.
    pub fn verbosity(&self) -> usize {
        self.patterns.len()
    }

    /// Partition pattern indices into connected components by shared
    /// features.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.patterns.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut owner: HashMap<FeatureId, usize> = HashMap::new();
        for (i, p) in self.patterns.iter().enumerate() {
            for f in p.iter() {
                match owner.get(&f) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                    None => {
                        owner.insert(f, i);
                    }
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }

    /// Entropy (nats) of the max-ent distribution: component entropies plus
    /// `ln 2` per unconstrained feature.
    pub fn entropy(&self) -> Result<f64, MaxEntError> {
        let mut covered = 0usize;
        let mut h = 0.0;
        for comp in self.components() {
            let pats: Vec<QueryVector> = comp.iter().map(|&i| self.patterns[i].clone()).collect();
            let tgts: Vec<f64> = comp.iter().map(|&i| self.targets[i]).collect();
            let cs = ClassSystem::build(&pats)?;
            let q = cs.maxent(&tgts)?;
            // Component entropy in its own projected space (no universe
            // padding — we add the global padding once below).
            h += cs.entropy(&q, cs.n_projected());
            covered += cs.n_projected();
        }
        assert!(covered <= self.universe_size, "patterns exceed universe");
        Ok(h + (self.universe_size - covered) as f64 * std::f64::consts::LN_2)
    }

    /// Reproduction Error against (a subset of) a log, both sides projected
    /// onto the universe: `e(E) = H(ρ_E) − H(ρ*|universe)`.
    ///
    /// `universe` must contain every pattern feature; the empirical entropy
    /// is computed on queries projected onto `universe`.
    pub fn reproduction_error(
        &self,
        log: &QueryLog,
        entries: &[usize],
        universe: &QueryVector,
    ) -> Result<f64, MaxEntError> {
        assert_eq!(universe.len(), self.universe_size, "universe size mismatch");
        Ok(self.entropy()? - projected_entropy(log, entries, universe))
    }
}

/// Empirical entropy of the log distribution projected onto a feature
/// universe (queries truncated to `universe`, then re-aggregated).
pub fn projected_entropy(log: &QueryLog, entries: &[usize], universe: &QueryVector) -> f64 {
    let total = log.total_for(entries);
    if total == 0 {
        return 0.0;
    }
    let mut agg: HashMap<QueryVector, u64> = HashMap::new();
    for &i in entries {
        let (v, c) = &log.entries()[i];
        *agg.entry(v.intersection(universe)).or_insert(0) += c;
    }
    let t = total as f64;
    -agg.values().map(|&c| xlogx(c as f64 / t)).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_math::binary_entropy;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    #[test]
    fn single_pattern_class_sizes() {
        // One pattern of 2 features: classes {contains} size 1, {not} size 3.
        let cs = ClassSystem::build(&[qv(&[0, 1])]).unwrap();
        assert_eq!(cs.n_projected(), 2);
        let mut sizes: Vec<(u32, f64)> =
            cs.classes().iter().map(|c| (c.signature, c.size)).collect();
        sizes.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        assert_eq!(sizes, vec![(0, 3.0), (1, 1.0)]);
    }

    #[test]
    fn overlapping_patterns_class_sizes() {
        // b0 = {0,1}, b1 = {1,2} over n' = 3 (8 projected queries):
        // both ⊇: {0,1,2} → 1; only b0: {0,1} → 1; only b1: {1,2} → 1;
        // neither: remaining 5.
        let cs = ClassSystem::build(&[qv(&[0, 1]), qv(&[1, 2])]).unwrap();
        let mut sizes: Vec<(u32, f64)> =
            cs.classes().iter().map(|c| (c.signature, c.size)).collect();
        sizes.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        assert_eq!(sizes, vec![(0, 5.0), (1, 1.0), (2, 1.0), (3, 1.0)]);
        let total: f64 = cs.classes().iter().map(|c| c.size).sum();
        assert_eq!(total, 8.0);
    }

    #[test]
    fn nested_patterns_empty_class_dropped() {
        // b1 ⊆ b0 means "contains b0 but not b1" is empty.
        let cs = ClassSystem::build(&[qv(&[0, 1]), qv(&[0])]).unwrap();
        assert!(cs.class_index(0b01).is_none(), "impossible class must be dropped");
        assert!(cs.class_index(0b11).is_some());
    }

    #[test]
    fn signature_of_matches_containment() {
        let cs = ClassSystem::build(&[qv(&[0, 1]), qv(&[2])]).unwrap();
        assert_eq!(cs.signature_of(&qv(&[0, 1, 2])), 0b11);
        assert_eq!(cs.signature_of(&qv(&[0, 1])), 0b01);
        assert_eq!(cs.signature_of(&qv(&[2, 7])), 0b10);
        assert_eq!(cs.signature_of(&qv(&[0])), 0);
    }

    #[test]
    fn maxent_single_pattern_matches_closed_form() {
        // One pattern, target θ: classes get θ and 1−θ; entropy over the
        // projected space is h(θ) + θ·ln1 + (1−θ)·ln3.
        let cs = ClassSystem::build(&[qv(&[0, 1])]).unwrap();
        let q = cs.maxent(&[0.25]).unwrap();
        let idx_in = cs.class_index(1).unwrap();
        let idx_out = cs.class_index(0).unwrap();
        assert!((q[idx_in] - 0.25).abs() < 1e-9);
        assert!((q[idx_out] - 0.75).abs() < 1e-9);
        let h = cs.entropy(&q, 2);
        let expect = binary_entropy(0.25) + 0.75 * 3f64.ln();
        assert!((h - expect).abs() < 1e-9);
    }

    #[test]
    fn maxent_satisfies_overlapping_constraints() {
        let cs = ClassSystem::build(&[qv(&[0, 1]), qv(&[1, 2])]).unwrap();
        let targets = [0.4, 0.3];
        let q = cs.maxent(&targets).unwrap();
        for (j, &t) in targets.iter().enumerate() {
            let m: f64 = cs
                .classes()
                .iter()
                .zip(&q)
                .filter(|(c, _)| c.signature & (1 << j) != 0)
                .map(|(_, &p)| p)
                .sum();
            assert!((m - t).abs() < 1e-8, "constraint {j}: {m} vs {t}");
        }
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(q.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn maxent_extreme_targets() {
        let cs = ClassSystem::build(&[qv(&[0])]).unwrap();
        let q1 = cs.maxent(&[1.0]).unwrap();
        let idx_in = cs.class_index(1).unwrap();
        assert!((q1[idx_in] - 1.0).abs() < 1e-9);
        let q0 = cs.maxent(&[0.0]).unwrap();
        assert!(q0[idx_in].abs() < 1e-12);
    }

    #[test]
    fn maxent_entropy_uniform_when_half() {
        // Pattern = single feature at θ = 0.5 over universe 1: uniform, ln 2.
        let cs = ClassSystem::build(&[qv(&[0])]).unwrap();
        let q = cs.maxent(&[0.5]).unwrap();
        assert!((cs.entropy(&q, 1) - std::f64::consts::LN_2).abs() < 1e-9);
        // Padding features add ln 2 each.
        assert!((cs.entropy(&q, 3) - 3.0 * std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn too_many_patterns_rejected() {
        let patterns: Vec<QueryVector> = (0..21).map(|i| qv(&[i])).collect();
        assert!(matches!(
            ClassSystem::build(&patterns),
            Err(MaxEntError::TooManyPatterns { count: 21, .. })
        ));
    }

    #[test]
    fn components_split_disjoint_patterns() {
        let enc = GeneralEncoding::new(
            vec![qv(&[0, 1]), qv(&[1, 2]), qv(&[5, 6]), qv(&[9])],
            vec![0.1, 0.2, 0.3, 0.4],
            12,
        );
        let comps = enc.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
        assert_eq!(comps[2], vec![3]);
    }

    #[test]
    fn general_entropy_matches_naive_for_singletons() {
        // Encoding of singleton patterns = naive encoding: entropy must be
        // the sum of binary entropies (plus ln 2 padding for the
        // unconstrained universe feature).
        let enc = GeneralEncoding::new(vec![qv(&[0]), qv(&[1])], vec![0.25, 0.7], 3);
        let h = enc.entropy().unwrap();
        let expect = binary_entropy(0.25) + binary_entropy(0.7) + std::f64::consts::LN_2;
        assert!((h - expect).abs() < 1e-9);
    }

    #[test]
    fn projected_entropy_marginalizes() {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 1);
        log.add_vector(qv(&[0, 2]), 1);
        let all = log.all_entry_indices();
        // Projected onto {0}: both queries collapse → entropy 0.
        assert_eq!(projected_entropy(&log, &all, &qv(&[0])), 0.0);
        // Projected onto {1}: {1} vs {} → ln 2.
        assert!((projected_entropy(&log, &all, &qv(&[1])) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn reproduction_error_zero_for_exact_encoding() {
        // Universe = {0}: log is Bernoulli(0.5) on feature 0; encoding with
        // pattern {0} at 0.5 reproduces it exactly → error 0.
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0]), 1);
        log.add_vector(qv(&[]), 1);
        let all = log.all_entry_indices();
        let enc = GeneralEncoding::measure(&log, &all, vec![qv(&[0])], 1);
        let e = enc.reproduction_error(&log, &all, &qv(&[0])).unwrap();
        assert!(e.abs() < 1e-9, "error = {e}");
    }

    #[test]
    fn adding_patterns_never_increases_error() {
        // Lemma 1: E1 ⊆ E2 ⇒ Ω_E2 ⊆ Ω_E1 ⇒ e(E2) ≤ e(E1).
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 3);
        log.add_vector(qv(&[0]), 2);
        log.add_vector(qv(&[1]), 1);
        log.add_vector(qv(&[]), 2);
        let all = log.all_entry_indices();
        let universe = qv(&[0, 1]);
        let e1 = GeneralEncoding::measure(&log, &all, vec![qv(&[0])], 2)
            .reproduction_error(&log, &all, &universe)
            .unwrap();
        let e2 = GeneralEncoding::measure(&log, &all, vec![qv(&[0]), qv(&[1])], 2)
            .reproduction_error(&log, &all, &universe)
            .unwrap();
        let e3 = GeneralEncoding::measure(&log, &all, vec![qv(&[0]), qv(&[1]), qv(&[0, 1])], 2)
            .reproduction_error(&log, &all, &universe)
            .unwrap();
        assert!(e2 <= e1 + 1e-9, "e2={e2} e1={e1}");
        assert!(e3 <= e2 + 1e-9, "e3={e3} e2={e2}");
        // Full pattern set identifies the distribution exactly.
        assert!(e3.abs() < 1e-6, "e3 = {e3}");
    }

    #[test]
    fn infeasible_target_detected() {
        // Nested patterns: "contains {0} but not {0,1}" feasible, but a
        // target demanding p(⊇{0,1}) > p(⊇{0}) is inconsistent; IPF cannot
        // satisfy it. We detect hard infeasibility (positive target on an
        // empty class).
        let cs = ClassSystem::build(&[qv(&[0]), qv(&[0])]).unwrap();
        // Identical patterns: classes 00 and 11 only; targets disagree.
        let result = cs.maxent(&[0.3, 0.7]);
        match result {
            Err(_) => {}
            Ok(q) => {
                // If IPF "converged", the shared marginal can't match both.
                let idx = cs.class_index(0b11).unwrap();
                assert!((q[idx] - 0.3).abs() > 1e-6 || (q[idx] - 0.7).abs() > 1e-6);
            }
        }
    }
}
