//! Human-readable rendering of pattern mixture summaries (paper §2.3.2,
//! Fig. 1, Fig. 10 / Appendix E).
//!
//! Each mixture component renders as a pseudo-SQL template whose elements
//! are annotated (and shaded) by their marginal frequency in the partition —
//! the "correlation-ignorant" visualization of Fig. 1a, repeated per cluster
//! as in Fig. 10. Features below a visibility threshold are omitted, mirroring
//! the paper's "features with marginal too small will be invisible".

use crate::mixture::NaiveMixtureEncoding;
use logr_feature::{Codebook, FeatureClass, FeatureId};

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct RenderConfig {
    /// Features with marginal below this are omitted (paper: "invisible").
    pub min_marginal: f64,
    /// Annotate each element with its percentage.
    pub show_percentages: bool,
    /// Shade elements with Unicode blocks by marginal quartile.
    pub shading: bool,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig { min_marginal: 0.05, show_percentages: true, shading: true }
    }
}

/// Shade glyph for a marginal (quartile buckets, Fig. 1a's grey levels).
fn shade(p: f64) -> &'static str {
    if p >= 0.95 {
        "█"
    } else if p >= 0.75 {
        "▓"
    } else if p >= 0.40 {
        "▒"
    } else {
        "░"
    }
}

/// Render one mixture component as an annotated pseudo-SQL template.
pub fn render_component(
    mixture: &NaiveMixtureEncoding,
    component_idx: usize,
    codebook: &Codebook,
    config: &RenderConfig,
) -> String {
    let component = &mixture.components()[component_idx];
    let encoding = &component.encoding;

    let mut by_class: Vec<(FeatureClass, Vec<(FeatureId, f64)>)> = vec![
        (FeatureClass::Select, Vec::new()),
        (FeatureClass::From, Vec::new()),
        (FeatureClass::Where, Vec::new()),
        (FeatureClass::GroupBy, Vec::new()),
        (FeatureClass::OrderBy, Vec::new()),
        (FeatureClass::Template, Vec::new()),
        (FeatureClass::Param, Vec::new()),
    ];
    for &f in encoding.support() {
        let p = encoding.marginal(f);
        if p < config.min_marginal {
            continue;
        }
        let class = codebook.feature(f).class;
        if let Some(slot) = by_class.iter_mut().find(|(c, _)| *c == class) {
            slot.1.push((f, p));
        }
    }
    for (_, items) in &mut by_class {
        items.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    }

    let annotate = |f: FeatureId, p: f64| -> String {
        let text = &codebook.feature(f).text;
        let mut out = String::new();
        if config.shading {
            out.push_str(shade(p));
        }
        out.push_str(text);
        if config.show_percentages && p < 0.995 {
            out.push_str(&format!(" [{:.0}%]", p * 100.0));
        }
        out
    };

    let mut lines = Vec::new();
    lines.push(format!(
        "-- cluster {} | {} queries ({:.1}% of log) | error {:.4} | verbosity {}",
        component_idx,
        component.total,
        component.weight * 100.0,
        component.error,
        encoding.verbosity(),
    ));
    let section = |label: &str, items: &[(FeatureId, f64)], sep: &str| -> Option<String> {
        if items.is_empty() {
            return None;
        }
        let rendered: Vec<String> = items.iter().map(|&(f, p)| annotate(f, p)).collect();
        Some(format!("{label} {}", rendered.join(sep)))
    };
    if let Some(s) = section("SELECT", &by_class[0].1, ", ") {
        lines.push(s);
    }
    if let Some(s) = section("FROM", &by_class[1].1, ", ") {
        lines.push(s);
    }
    if let Some(s) = section("WHERE", &by_class[2].1, " AND ") {
        lines.push(s);
    }
    if let Some(s) = section("GROUP BY", &by_class[3].1, ", ") {
        lines.push(s);
    }
    if let Some(s) = section("ORDER BY", &by_class[4].1, ", ") {
        lines.push(s);
    }
    // Template-mode sections (mined service logs): the component's
    // dominant message shapes and the parameter classes they carry.
    if let Some(s) = section("TEMPLATES", &by_class[5].1, "\n          ") {
        lines.push(s);
    }
    if let Some(s) = section("PARAMS", &by_class[6].1, ", ") {
        lines.push(s);
    }
    lines.join("\n")
}

/// Render the *correlation-aware* view of one component (Fig. 1b):
/// each refined pattern prints as a mini-query whose elements are
/// "highlighted together", annotated with the pattern's frequency in the
/// partition.
///
/// `patterns` are (pattern, frequency-in-partition) pairs — typically the
/// per-component output of [`crate::refine::refine_mixture`] with
/// frequencies re-measured, or any pattern encoding worth showing.
pub fn render_patterns(
    patterns: &[(logr_feature::QueryVector, f64)],
    codebook: &Codebook,
) -> String {
    let mut lines = Vec::with_capacity(patterns.len());
    for (pattern, freq) in patterns {
        let mut select = Vec::new();
        let mut from = Vec::new();
        let mut where_ = Vec::new();
        let mut templates = Vec::new();
        let mut params = Vec::new();
        for f in pattern.iter() {
            let feature = codebook.feature(f);
            match feature.class {
                FeatureClass::Select => select.push(feature.text.clone()),
                FeatureClass::From => from.push(feature.text.clone()),
                FeatureClass::Template => templates.push(feature.text.clone()),
                FeatureClass::Param => params.push(feature.text.clone()),
                _ => where_.push(feature.text.clone()),
            }
        }
        // Template-mode patterns print the mined message shape(s), not
        // pseudo-SQL.
        if !templates.is_empty() || !params.is_empty() {
            let mut q = templates.join(" | ");
            if q.is_empty() {
                q.push('…');
            }
            if !params.is_empty() {
                q.push_str(&format!(" ⟨{}⟩", params.join(", ")));
            }
            lines.push(format!("{} {q}  [{:.0}%]", shade(*freq), freq * 100.0));
            continue;
        }
        let mut q = String::from("SELECT ");
        if select.is_empty() {
            q.push('…');
        } else {
            q.push_str(&select.join(", "));
        }
        if !from.is_empty() {
            q.push_str(&format!(" FROM {}", from.join(", ")));
        }
        if !where_.is_empty() {
            q.push_str(&format!(" WHERE {}", where_.join(" AND ")));
        }
        lines.push(format!("{} {q}  [{:.0}%]", shade(*freq), freq * 100.0));
    }
    lines.join("\n")
}

/// Render a ranked list of (text, share) pairs with the same shading and
/// percentage annotations as mixture components — the building block
/// behind `logr`'s advisor reports (`Advice::render`), so every
/// DBA-facing surface annotates frequencies identically.
pub fn render_ranked(items: &[(String, f64)], config: &RenderConfig) -> String {
    let mut lines = Vec::with_capacity(items.len());
    for (text, share) in items {
        if *share < config.min_marginal {
            continue;
        }
        let mut line = String::new();
        if config.shading {
            line.push_str(shade(*share));
            line.push(' ');
        }
        line.push_str(text);
        if config.show_percentages {
            line.push_str(&format!("  [{:.1}%]", share * 100.0));
        }
        lines.push(line);
    }
    lines.join("\n")
}

/// Render a whole mixture, components ordered by descending weight
/// (Fig. 10's per-cluster layout).
pub fn render_mixture(
    mixture: &NaiveMixtureEncoding,
    codebook: &Codebook,
    config: &RenderConfig,
) -> String {
    let mut order: Vec<usize> = (0..mixture.k()).collect();
    order.sort_by(|&a, &b| {
        mixture.components()[b].weight.total_cmp(&mixture.components()[a].weight)
    });
    order
        .into_iter()
        .map(|i| render_component(mixture, i, codebook, config))
        .collect::<Vec<_>>()
        .join("\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_cluster::Clustering;
    use logr_feature::LogIngest;

    fn summary() -> (logr_feature::QueryLog, NaiveMixtureEncoding) {
        let mut ingest = LogIngest::new();
        for _ in 0..19 {
            ingest.ingest("SELECT id, body FROM messages WHERE status = ?");
        }
        ingest.ingest("SELECT id FROM messages WHERE status = ? AND kind = ?");
        for _ in 0..5 {
            ingest.ingest("SELECT balance FROM accounts WHERE owner = ?");
        }
        let (log, _) = ingest.finish();
        let clustering = Clustering::new(2, vec![0, 0, 1]);
        let mixture = NaiveMixtureEncoding::build(&log, &clustering);
        (log, mixture)
    }

    #[test]
    fn renders_clause_sections() {
        let (log, mixture) = summary();
        let text = render_component(&mixture, 0, log.codebook(), &RenderConfig::default());
        assert!(text.contains("SELECT"), "{text}");
        assert!(text.contains("FROM"), "{text}");
        assert!(text.contains("WHERE"), "{text}");
        assert!(text.contains("messages"), "{text}");
        assert!(text.contains("status = ?"), "{text}");
    }

    #[test]
    fn rare_features_are_invisible() {
        let (log, mixture) = summary();
        let config = RenderConfig { min_marginal: 0.2, ..Default::default() };
        let text = render_component(&mixture, 0, log.codebook(), &config);
        // `kind = ?` occurs in 1/20 messaging queries → hidden at 20%.
        assert!(!text.contains("kind = ?"), "{text}");
        let config_low = RenderConfig { min_marginal: 0.01, ..Default::default() };
        let text_low = render_component(&mixture, 0, log.codebook(), &config_low);
        assert!(text_low.contains("kind = ?"), "{text_low}");
    }

    #[test]
    fn percentages_annotate_fractional_marginals() {
        let (log, mixture) = summary();
        let config = RenderConfig { min_marginal: 0.01, shading: false, show_percentages: true };
        let text = render_component(&mixture, 0, log.codebook(), &config);
        assert!(text.contains("[95%]") || text.contains("[5%]"), "{text}");
        // Certain features carry no percentage tag.
        assert!(!text.contains("messages ["), "{text}");
    }

    #[test]
    fn shading_reflects_marginal_buckets() {
        assert_eq!(shade(1.0), "█");
        assert_eq!(shade(0.8), "▓");
        assert_eq!(shade(0.5), "▒");
        assert_eq!(shade(0.1), "░");
    }

    #[test]
    fn pattern_rendering_groups_by_clause() {
        use logr_feature::{Codebook, Feature, QueryVector};
        let mut cb = Codebook::new();
        let id = cb.intern(Feature::select("id"));
        let tbl = cb.intern(Feature::from_table("messages"));
        let atom = cb.intern(Feature::where_atom("status = ?"));
        let pattern = QueryVector::new(vec![id, tbl, atom]);
        let text = render_patterns(&[(pattern, 0.8)], &cb);
        assert!(text.contains("SELECT id FROM messages WHERE status = ?"), "{text}");
        assert!(text.contains("[80%]"), "{text}");
        // A pattern with no SELECT features gets the placeholder.
        let where_only = QueryVector::new(vec![tbl, atom]);
        let text2 = render_patterns(&[(where_only, 0.4)], &cb);
        assert!(text2.contains("SELECT …"), "{text2}");
    }

    #[test]
    fn template_features_render_their_own_sections() {
        use logr_feature::{Feature, QueryLog};
        let mut log = QueryLog::new();
        for _ in 0..10 {
            log.add_features(
                &[
                    Feature::template("connection from <*> port <*> established"),
                    Feature::param("ip"),
                    Feature::param("num"),
                ],
                1,
            );
        }
        let clustering = Clustering::new(1, vec![0]);
        let mixture = NaiveMixtureEncoding::build(&log, &clustering);
        let text = render_component(&mixture, 0, log.codebook(), &RenderConfig::default());
        assert!(text.contains("TEMPLATES"), "{text}");
        assert!(text.contains("connection from <*> port <*> established"), "{text}");
        assert!(text.contains("PARAMS"), "{text}");
        assert!(text.contains("ip"), "{text}");
        assert!(!text.contains("SELECT"), "{text}");
    }

    #[test]
    fn template_patterns_render_message_shapes() {
        use logr_feature::{Codebook, Feature, QueryVector};
        let mut cb = Codebook::new();
        let t = cb.intern(Feature::template("worker <*> heartbeat ok"));
        let p = cb.intern(Feature::param("num"));
        let text = render_patterns(&[(QueryVector::new(vec![t, p]), 0.9)], &cb);
        assert!(text.contains("worker <*> heartbeat ok"), "{text}");
        assert!(text.contains("⟨num⟩"), "{text}");
        assert!(!text.contains("SELECT"), "{text}");
    }

    #[test]
    fn ranked_list_shades_and_annotates() {
        let items = vec![
            ("messages".to_string(), 0.96),
            ("accounts".to_string(), 0.5),
            ("rare_table".to_string(), 0.01),
        ];
        let text = render_ranked(&items, &RenderConfig::default());
        assert!(text.contains("█ messages  [96.0%]"), "{text}");
        assert!(text.contains("▒ accounts  [50.0%]"), "{text}");
        assert!(!text.contains("rare_table"), "below min_marginal: {text}");
    }

    #[test]
    fn mixture_rendering_orders_by_weight() {
        let (log, mixture) = summary();
        let text = render_mixture(&mixture, log.codebook(), &RenderConfig::default());
        let msg_pos = text.find("messages").expect("messaging cluster rendered");
        let acct_pos = text.find("accounts").expect("accounts cluster rendered");
        // Messaging cluster has 20/25 queries — rendered first.
        assert!(msg_pos < acct_pos, "{text}");
        assert_eq!(text.matches("-- cluster").count(), 2);
    }
}
