//! Sampling the space Ω_E and the idealized loss measures (paper §3.3,
//! Appendix C).
//!
//! An encoding `E` admits a whole space Ω_E of query distributions. The
//! paper's two idealized measures are defined over that space:
//!
//! * **Deviation** `d(E) = E[DKL(ρ*‖P_E)]` — estimated here by Monte Carlo:
//!   draw random distributions from Ω_E (two-step sampling over pattern-
//!   equivalence classes + projection onto the constraint hyperplane,
//!   Algorithm 1 + Appendix C.2) and average the KL divergence from the true
//!   distribution;
//! * **Ambiguity** `I(E) = log |Ω_E|` under the uninformed prior — tracked
//!   through the *dimension* of the feasible affine subspace, a closed-form
//!   monotone proxy: containment `Ω_E1 ⊆ Ω_E2` implies
//!   `dim(Ω_E1) ≤ dim(Ω_E2)`.
//!
//! KL divergences are computed on the pattern-equivalence *quotient* space
//! (queries identified up to containment signature, uniform within class).
//! This is the same space the paper's own sampler manipulates, and it keeps
//! every sampled distribution absolutely continuous w.r.t. the true one on a
//! finite support.

use crate::maxent::ClassSystem;
use logr_feature::{QueryLog, QueryVector};
use logr_math::{sample_constrained, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Result of a Monte-Carlo Deviation estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationEstimate {
    /// Mean KL divergence over accepted samples (nats).
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Number of accepted samples.
    pub samples: usize,
}

/// The true log distribution quotiented by a class system: per projected
/// query vector, its class and probability.
#[derive(Debug, Clone)]
pub struct QuotientDistribution {
    /// `(class index, probability)` per distinct projected query.
    pub atoms: Vec<(usize, f64)>,
}

/// Project (a subset of) a log onto a class system's quotient space.
///
/// Queries are truncated to the patterns' feature span, aggregated, and
/// tagged with their containment signature class.
pub fn quotient_distribution(
    cs: &ClassSystem,
    log: &QueryLog,
    entries: &[usize],
) -> QuotientDistribution {
    let universe = QueryVector::new(cs.projected_features().to_vec());
    let total = log.total_for(entries).max(1) as f64;
    let mut agg: HashMap<QueryVector, f64> = HashMap::new();
    for &i in entries {
        let (v, c) = &log.entries()[i];
        *agg.entry(v.intersection(&universe)).or_insert(0.0) += *c as f64 / total;
    }
    let atoms = agg
        .into_iter()
        .map(|(v, p)| {
            let class = cs
                .class_index(cs.signature_of(&v))
                // lint:allow(no-panic-paths): the vector was just projected onto the class system's universe, so its signature indexes an existing class by construction
                .expect("projected log query must fall in a non-empty class");
            (class, p)
        })
        .collect();
    QuotientDistribution { atoms }
}

/// Draw one random distribution over the class system's classes from Ω_E
/// (Algorithm 1 + the Appendix C.2 projection).
///
/// `targets[j] = Some(θ)` constrains pattern `j`'s marginal to θ;
/// `None` leaves it unconstrained — that is how a *sub*-encoding's space is
/// sampled on the quotient of a richer class system, which is what makes
/// Deviations of `E1 ⊂ E2` directly comparable (Fig. 4a/b).
///
/// Returns per-class probabilities satisfying the active constraints within
/// `tol`, or `None` if the projection failed to reach feasibility (rare;
/// caller should redraw).
pub fn sample_distribution(
    cs: &ClassSystem,
    targets: &[Option<f64>],
    rng: &mut StdRng,
    tol: f64,
) -> Option<Vec<f64>> {
    let n = cs.classes().len();
    // Step 1–2 of Algorithm 1: uniform random probabilities over non-empty
    // classes, normalized.
    let mut start: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let total: f64 = start.iter().sum();
    for v in &mut start {
        *v /= total;
    }
    // Constraint matrix: one row per *active* pattern, plus normalization.
    let active: Vec<(usize, f64)> =
        targets.iter().enumerate().filter_map(|(j, t)| t.map(|v| (j, v))).collect();
    let m = active.len();
    let mut a = Matrix::zeros(m + 1, n);
    let mut b = vec![0.0; m + 1];
    for (row, &(j, theta)) in active.iter().enumerate() {
        for (i, class) in cs.classes().iter().enumerate() {
            if class.signature & (1 << j) != 0 {
                a[(row, i)] = 1.0;
            }
        }
        b[row] = theta;
    }
    for i in 0..n {
        a[(m, i)] = 1.0;
    }
    b[m] = 1.0;

    let (x, residual) = sample_constrained(&a, &b, &start, 200, tol).ok()?;
    if residual <= tol.max(1e-7) {
        Some(x)
    } else {
        None
    }
}

/// Monte-Carlo estimate of Deviation `d(E)` (§3.3) on the quotient space.
///
/// For each sample ρ, computes `DKL(ρ*‖ρ)` where the sampled distribution
/// spreads class mass uniformly within the class:
/// `DKL = Σ_y p(y) · ln(p(y) · size(class(y)) / q(class(y)))`.
pub fn estimate_deviation(
    cs: &ClassSystem,
    targets: &[Option<f64>],
    truth: &QuotientDistribution,
    n_samples: usize,
    seed: u64,
) -> DeviationEstimate {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kls = Vec::with_capacity(n_samples);
    let mut attempts = 0;
    while kls.len() < n_samples && attempts < n_samples * 4 {
        attempts += 1;
        let Some(q) = sample_distribution(cs, targets, &mut rng, 1e-9) else {
            continue;
        };
        let mut kl = 0.0;
        let mut finite = true;
        for &(class, p) in &truth.atoms {
            if p <= 0.0 {
                continue;
            }
            let density = q[class] / cs.classes()[class].size;
            if density <= 0.0 {
                finite = false;
                break;
            }
            kl += p * (p / density).ln();
        }
        if finite && kl.is_finite() {
            kls.push(kl);
        }
    }
    if kls.is_empty() {
        return DeviationEstimate { mean: f64::INFINITY, std_dev: 0.0, samples: 0 };
    }
    let mean = kls.iter().sum::<f64>() / kls.len() as f64;
    let var =
        kls.iter().map(|k| (k - mean) * (k - mean)).sum::<f64>() / (kls.len().max(2) - 1) as f64;
    DeviationEstimate { mean, std_dev: var.sqrt(), samples: kls.len() }
}

/// Dimension of the feasible affine subspace of Ω_E: the number of free
/// parameters left after the pattern constraints — a closed-form monotone
/// proxy for Ambiguity `I(E) = log |Ω_E|` (§3.3, Lemma 2).
///
/// Computed as `(#non-empty classes − 1) − rank(A)` where `A` stacks one
/// indicator row per pattern (the normalization constraint accounts for the
/// −1).
pub fn ambiguity_dimension(cs: &ClassSystem) -> usize {
    let n = cs.classes().len();
    let m = cs.patterns().len();
    if n == 0 {
        return 0;
    }
    // Row-reduce the m × n indicator matrix to find its rank relative to the
    // all-ones row (normalization).
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    rows.push(vec![1.0; n]);
    for j in 0..m {
        rows.push(
            cs.classes()
                .iter()
                .map(|c| if c.signature & (1 << j) != 0 { 1.0 } else { 0.0 })
                .collect(),
        );
    }
    let rank = matrix_rank(&mut rows);
    n - rank
}

/// Gaussian-elimination rank of a small dense row set.
fn matrix_rank(rows: &mut [Vec<f64>]) -> usize {
    let nrows = rows.len();
    if nrows == 0 {
        return 0;
    }
    let ncols = rows[0].len();
    let mut rank = 0;
    let mut col = 0;
    while rank < nrows && col < ncols {
        // Find pivot.
        let pivot =
            (rank..nrows).max_by(|&a, &b| rows[a][col].abs().total_cmp(&rows[b][col].abs()));
        let Some(p) = pivot else { break };
        if rows[p][col].abs() < 1e-9 {
            col += 1;
            continue;
        }
        rows.swap(rank, p);
        let lead = rows[rank][col];
        let (pivot_rows, tail_rows) = rows.split_at_mut(rank + 1);
        let pivot = &pivot_rows[rank];
        for row in tail_rows.iter_mut() {
            let f = row[col] / lead;
            if f != 0.0 {
                for (dst, &v) in row[col..ncols].iter_mut().zip(&pivot[col..ncols]) {
                    *dst -= f * v;
                }
            }
        }
        rank += 1;
        col += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    fn correlated_log() -> QueryLog {
        // Features 0,1 strongly correlated; 2 independent.
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 4);
        log.add_vector(qv(&[0, 1, 2]), 3);
        log.add_vector(qv(&[2]), 2);
        log.add_vector(qv(&[]), 1);
        log
    }

    #[test]
    fn sampled_distributions_satisfy_constraints() {
        let cs = ClassSystem::build(&[qv(&[0, 1]), qv(&[2])]).unwrap();
        let targets = [Some(0.7), Some(0.5)];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let q = sample_distribution(&cs, &targets, &mut rng, 1e-9).expect("feasible draw");
            assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            for (j, t) in targets.iter().enumerate() {
                let m: f64 = cs
                    .classes()
                    .iter()
                    .zip(&q)
                    .filter(|(c, _)| c.signature & (1 << j) != 0)
                    .map(|(_, &p)| p)
                    .sum();
                assert!((m - t.unwrap()).abs() < 1e-6, "constraint {j}");
            }
            assert!(q.iter().all(|&p| p >= -1e-12));
        }
    }

    #[test]
    fn single_pattern_quotient_is_fully_determined() {
        // One pattern over 2 classes + normalization: zero degrees of
        // freedom — every draw is the same point.
        let cs = ClassSystem::build(&[qv(&[0, 1])]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let a = sample_distribution(&cs, &[Some(0.5)], &mut rng, 1e-9).unwrap();
        let b = sample_distribution(&cs, &[Some(0.5)], &mut rng, 1e-9).unwrap();
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff < 1e-6, "determined quotient should not vary: {a:?} vs {b:?}");
        assert_eq!(ambiguity_dimension(&cs), 0);
    }

    #[test]
    fn samples_vary_across_draws() {
        // Two disjoint patterns: 4 classes, 3 constraints → 1 free dim.
        let cs = ClassSystem::build(&[qv(&[0, 1]), qv(&[2, 3])]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let t = [Some(0.5), Some(0.25)];
        let a = sample_distribution(&cs, &t, &mut rng, 1e-9).unwrap();
        let b = sample_distribution(&cs, &t, &mut rng, 1e-9).unwrap();
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "draws identical: {a:?}");
        assert!(ambiguity_dimension(&cs) >= 1);
    }

    #[test]
    fn inactive_constraints_widen_the_space() {
        // Sampling with the second constraint deactivated explores a larger
        // space: the second pattern's marginal varies across draws.
        let cs = ClassSystem::build(&[qv(&[0, 1]), qv(&[2])]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut marginals = Vec::new();
        for _ in 0..10 {
            let q = sample_distribution(&cs, &[Some(0.5), None], &mut rng, 1e-9).unwrap();
            let m: f64 = cs
                .classes()
                .iter()
                .zip(&q)
                .filter(|(c, _)| c.signature & 0b10 != 0)
                .map(|(_, &p)| p)
                .sum();
            marginals.push(m);
        }
        let min = marginals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = marginals.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.01, "unconstrained marginal did not vary: {marginals:?}");
    }

    #[test]
    fn quotient_distribution_aggregates() {
        let log = correlated_log();
        let cs = ClassSystem::build(&[qv(&[0, 1])]).unwrap();
        let qd = quotient_distribution(&cs, &log, &log.all_entry_indices());
        // Projected onto {0,1}: {0,1} (prob 0.7) and {} (prob 0.3).
        assert_eq!(qd.atoms.len(), 2);
        let total: f64 = qd.atoms.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_estimate_is_finite_and_positive() {
        let log = correlated_log();
        let all = log.all_entry_indices();
        let cs = ClassSystem::build(&[qv(&[0, 1]), qv(&[2])]).unwrap();
        let total = log.total_queries() as f64;
        let target = [
            Some(log.support(&qv(&[0, 1])) as f64 / total),
            Some(log.support(&qv(&[2])) as f64 / total),
        ];
        let truth = quotient_distribution(&cs, &log, &all);
        let d = estimate_deviation(&cs, &target, &truth, 50, 42);
        assert!(d.samples >= 40, "too many rejected samples: {}", d.samples);
        assert!(d.mean.is_finite());
        assert!(d.mean > 0.0);
    }

    #[test]
    fn containment_implies_lower_deviation_on_average() {
        // E2 ⊃ E1 ⇒ Ω_E2 ⊆ Ω_E1 ⇒ expected deviation shrinks (Fig. 4a/b).
        // Both spaces are sampled on E2's quotient so the KLs are
        // comparable; E1 is E2 with its second constraint deactivated.
        let log = correlated_log();
        let all = log.all_entry_indices();
        let total = log.total_queries() as f64;

        let p01 = log.support(&qv(&[0, 1])) as f64 / total;
        let p2 = log.support(&qv(&[2])) as f64 / total;

        let cs = ClassSystem::build(&[qv(&[0, 1]), qv(&[2])]).unwrap();
        let truth = quotient_distribution(&cs, &log, &all);
        let d1 = estimate_deviation(&cs, &[Some(p01), None], &truth, 80, 3);
        let d2 = estimate_deviation(&cs, &[Some(p01), Some(p2)], &truth, 80, 3);
        assert!(
            d2.mean <= d1.mean + 1e-9,
            "richer encoding deviates more: d2 {} vs d1 {}",
            d2.mean,
            d1.mean
        );
    }

    #[test]
    fn ambiguity_dimension_shrinks_with_patterns() {
        // On a fixed quotient, adding constraints can only shrink the
        // feasible dimension (Lemma 2's monotonicity).
        let cs2 = ClassSystem::build(&[qv(&[0, 1]), qv(&[2, 3])]).unwrap();
        let cs3 = ClassSystem::build(&[qv(&[0, 1]), qv(&[2, 3]), qv(&[0, 2])]).unwrap();
        let d2 = ambiguity_dimension(&cs2);
        let d3_quotient = ambiguity_dimension(&cs3);
        assert!(d2 >= 1, "two disjoint patterns leave freedom: {d2}");
        // cs3 has a finer quotient (more classes) but also more constraints;
        // the meaningful comparison holds per quotient: both are valid
        // dimensions, and cs2's sub-encoding on cs3's quotient has more
        // freedom than cs3 itself.
        let n3 = cs3.classes().len();
        assert!(d3_quotient < n3);
    }

    #[test]
    fn ambiguity_dimension_zero_for_fully_determined() {
        // One feature, one pattern: classes {1}, {0}; constraints fix both.
        let cs = ClassSystem::build(&[qv(&[0])]).unwrap();
        assert_eq!(ambiguity_dimension(&cs), 0);
    }

    #[test]
    fn rank_helper() {
        let mut rows = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![0.0, 1.0]];
        assert_eq!(matrix_rank(&mut rows), 2);
        let mut id = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(matrix_rank(&mut id), 2);
        let mut zero = vec![vec![0.0, 0.0]];
        assert_eq!(matrix_rank(&mut zero), 0);
    }
}
