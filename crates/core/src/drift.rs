//! Workload drift detection (paper §2 "Online Database Monitoring", §5).
//!
//! Two complementary monitors built on pattern mixture summaries:
//!
//! * [`feature_drift`] — compare a baseline log against a monitoring
//!   window: per-feature Jensen–Shannon divergence of the marginal
//!   profiles, plus the features that appeared or vanished. Cheap enough
//!   to run continuously — it only touches marginal vectors, never the
//!   logs themselves.
//! * [`query_typicality`] — score a single query against a baseline
//!   mixture: the per-feature geometric mean of its mixture probability,
//!   so scores are comparable across query lengths. Queries that straddle
//!   anti-correlated workloads (the §5 phantom queries) score near zero.
//! * [`novelty_scores`] — nearest-baseline-query distance for every
//!   distinct window query, on the dense popcount engine
//!   ([`logr_cluster::PointSet`]): the baseline is converted once, each
//!   window probe is one bitset, and each comparison one xor-popcount.

use crate::mixture::NaiveMixtureEncoding;
use logr_cluster::{Distance, PointSet};
use logr_feature::{BitVec, FeatureId, QueryLog, QueryVector};

/// Outcome of comparing a monitoring window against a baseline.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Mean per-feature Jensen–Shannon divergence (nats; 0 = identical),
    /// averaged over the **union** of baseline features and window-only
    /// (new) features — a new feature diverges from a baseline marginal of
    /// 0, so injections move `overall` even when every baseline marginal
    /// is unchanged.
    pub overall: f64,
    /// Features ranked by divergence, descending: `(baseline id, JS)`.
    pub per_feature: Vec<(FeatureId, f64)>,
    /// Window features never seen in the baseline (highest-signal events
    /// for injection detection).
    pub new_features: Vec<String>,
    /// Baseline features absent from the window.
    pub vanished_features: Vec<FeatureId>,
}

impl DriftReport {
    /// True when nothing moved beyond the tolerance.
    pub fn is_stable(&self, tolerance: f64) -> bool {
        self.overall <= tolerance && self.new_features.is_empty()
    }
}

/// Jensen–Shannon divergence between two Bernoulli marginals, in nats.
fn js_bernoulli(p: f64, q: f64) -> f64 {
    let m = 0.5 * (p + q);
    0.5 * (kl_bernoulli(p, m) + kl_bernoulli(q, m))
}

fn kl_bernoulli(p: f64, q: f64) -> f64 {
    let term = |a: f64, b: f64| {
        if a <= 0.0 {
            0.0
        } else {
            a * (a / b.max(1e-300)).ln()
        }
    };
    term(p, q) + term(1.0 - p, 1.0 - q)
}

/// Compare a monitoring window against a baseline log.
///
/// Window features are matched to baseline ids by feature identity
/// (class + canonical text), so the two logs may use different codebooks.
pub fn feature_drift(baseline: &QueryLog, window: &QueryLog) -> DriftReport {
    let base_marginals = baseline.marginals();
    let win_marginals = window.marginals();

    let mut per_feature: Vec<(FeatureId, f64)> = Vec::new();
    let mut vanished: Vec<FeatureId> = Vec::new();
    let mut matched_window_ids = vec![false; window.num_features()];

    for (base_id, feature) in baseline.codebook().iter() {
        let p = base_marginals[base_id.index()];
        let q = match window.codebook().get(feature) {
            Some(win_id) => {
                matched_window_ids[win_id.index()] = true;
                win_marginals[win_id.index()]
            }
            None => 0.0,
        };
        if p > 0.0 && q == 0.0 {
            vanished.push(base_id);
        }
        per_feature.push((base_id, js_bernoulli(p, q)));
    }

    // Window-only features drift from a baseline marginal of 0. They have
    // no baseline id to rank under `per_feature`, but their divergence must
    // count toward `overall`: a pure injection window that leaves every
    // baseline marginal untouched still shifted the workload.
    let mut new_features: Vec<String> = Vec::new();
    let mut new_divergence = 0.0;
    for (id, feature) in window.codebook().iter() {
        if !matched_window_ids[id.index()] && win_marginals[id.index()] > 0.0 {
            new_features.push(feature.to_string());
            new_divergence += js_bernoulli(0.0, win_marginals[id.index()]);
        }
    }

    let divergence_count = per_feature.len() + new_features.len();
    let overall = if divergence_count == 0 {
        0.0
    } else {
        (per_feature.iter().map(|&(_, d)| d).sum::<f64>() + new_divergence)
            / divergence_count as f64
    };
    per_feature.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    DriftReport { overall, per_feature, new_features, vanished_features: vanished }
}

/// Distance from every distinct window query to its nearest baseline
/// query, in window-entry order.
///
/// Window features are matched to baseline ids by feature identity (the
/// two logs may use different codebooks); window features the baseline has
/// never seen have no baseline bit to match, so they are added to the
/// symmetric difference of every comparison — an injected query whose
/// features are all unknown scores at least its own length (under every
/// metric: at least `metric.of_mismatches(len, n_baseline_features)`).
/// The normalizing universe is **fixed at the baseline's**: unknown
/// features inflate only the mismatch count `d`, never the denominator,
/// so more-unknown queries always score at least as high — not lower, as
/// a per-probe denominator would make them under `Distance::Hamming`.
/// Distances are computed on the dense engine: the baseline's distinct
/// queries are batch-converted to bitsets once, and each candidate pair
/// costs one xor-popcount.
///
/// Returns an empty vector when either log is empty.
pub fn novelty_scores(baseline: &QueryLog, window: &QueryLog, metric: Distance) -> Vec<f64> {
    if baseline.distinct_count() == 0 || window.distinct_count() == 0 {
        return Vec::new();
    }
    let points = PointSet::from_log(baseline);
    let nf = baseline.num_features();
    window
        .entries()
        .iter()
        .map(|(v, _)| {
            let mut probe = BitVec::zeros(nf);
            let mut unknown = 0usize;
            for id in v.iter() {
                match baseline.codebook().get(window.codebook().feature(id)) {
                    Some(base_id) => probe.set(base_id.index()),
                    None => unknown += 1,
                }
            }
            (0..points.len())
                .map(|i| {
                    let d = probe.xor_count(points.point(i)) + unknown;
                    metric.of_mismatches(d, nf)
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// Per-feature geometric-mean probability of a query under a baseline
/// mixture. 1.0 ≈ perfectly typical; 0 = impossible (contains a feature or
/// combination no component admits). The empty query scores 0 (nothing to
/// judge).
pub fn query_typicality(mixture: &NaiveMixtureEncoding, query: &QueryVector) -> f64 {
    if query.is_empty() {
        return 0.0;
    }
    let p = mixture.probability(query);
    if p <= 0.0 {
        return 0.0;
    }
    p.powf(1.0 / query.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_cluster::Clustering;
    use logr_feature::LogIngest;

    fn baseline_log() -> QueryLog {
        let mut ingest = LogIngest::new();
        for _ in 0..50 {
            ingest.ingest("SELECT id, body FROM messages WHERE status = ?");
            ingest.ingest("SELECT balance FROM accounts WHERE owner = ?");
        }
        ingest.finish().0
    }

    #[test]
    fn identical_windows_are_stable() {
        let base = baseline_log();
        let window = baseline_log();
        let report = feature_drift(&base, &window);
        assert!(report.overall < 1e-12, "overall {}", report.overall);
        assert!(report.new_features.is_empty());
        assert!(report.vanished_features.is_empty());
        assert!(report.is_stable(1e-9));
    }

    #[test]
    fn injected_workload_surfaces_new_features() {
        let base = baseline_log();
        let mut ingest = LogIngest::new();
        for _ in 0..50 {
            ingest.ingest("SELECT id, body FROM messages WHERE status = ?");
        }
        ingest.ingest("SELECT password_hash FROM credentials"); // injected
        let (window, _) = ingest.finish();

        let report = feature_drift(&base, &window);
        assert!(!report.is_stable(1e-9));
        assert!(
            report.new_features.iter().any(|f| f.contains("credentials")),
            "new features: {:?}",
            report.new_features
        );
        // The vanished accounts-workload features are reported too.
        assert!(!report.vanished_features.is_empty());
    }

    #[test]
    fn drift_magnitude_tracks_shift_size() {
        let base = baseline_log();
        // Small shift: 60/40 instead of 50/50.
        let mut small = LogIngest::new();
        for _ in 0..60 {
            small.ingest("SELECT id, body FROM messages WHERE status = ?");
        }
        for _ in 0..40 {
            small.ingest("SELECT balance FROM accounts WHERE owner = ?");
        }
        // Large shift: 95/5.
        let mut large = LogIngest::new();
        for _ in 0..95 {
            large.ingest("SELECT id, body FROM messages WHERE status = ?");
        }
        for _ in 0..5 {
            large.ingest("SELECT balance FROM accounts WHERE owner = ?");
        }
        let d_small = feature_drift(&base, &small.finish().0).overall;
        let d_large = feature_drift(&base, &large.finish().0).overall;
        assert!(d_small < d_large, "small {d_small} not below large {d_large}");
    }

    #[test]
    fn typicality_separates_phantoms() {
        use logr_feature::FeatureId;
        let qv = |ids: &[u32]| QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect());
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 10);
        log.add_vector(qv(&[2, 3]), 10);
        let mixture = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 1]));

        let typical = query_typicality(&mixture, &qv(&[0, 1]));
        let phantom = query_typicality(&mixture, &qv(&[0, 2]));
        assert!(typical > 0.5, "typical query scored {typical}");
        assert_eq!(phantom, 0.0, "cross-workload phantom must score 0");
        assert_eq!(query_typicality(&mixture, &QueryVector::empty()), 0.0);
    }

    #[test]
    fn typicality_length_normalized() {
        use logr_feature::FeatureId;
        let qv = |ids: &[u32]| QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect());
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1, 2, 3]), 10);
        let mixture = NaiveMixtureEncoding::single(&log);
        // Certain features: both the short prefix pattern and the full
        // query are fully typical regardless of length.
        let short = query_typicality(&mixture, &qv(&[0, 1, 2, 3]));
        assert!((short - 1.0).abs() < 1e-9, "got {short}");
    }

    #[test]
    fn novelty_scores_flag_injected_queries() {
        let base = baseline_log();
        let mut ingest = LogIngest::new();
        ingest.ingest("SELECT id, body FROM messages WHERE status = ?"); // known
        ingest.ingest("SELECT password_hash FROM credentials"); // injected
        let (window, _) = ingest.finish();

        let scores = novelty_scores(&base, &window, Distance::Manhattan);
        assert_eq!(scores.len(), window.distinct_count());
        // The known query matches a baseline entry exactly; the injected
        // one is far from everything.
        assert_eq!(scores[0], 0.0, "known query should have a zero-distance match");
        assert!(scores[1] >= 2.0, "injected query scored {}", scores[1]);
    }

    #[test]
    fn injection_only_window_reports_positive_overall() {
        // Regression: `overall` used to average JS over *baseline* features
        // only, so a window whose baseline marginals are untouched but
        // which carries injected (window-only) features reported
        // `overall == 0` — stability then hinged entirely on the
        // `new_features` escape hatch.
        let mut b = LogIngest::new();
        for _ in 0..50 {
            b.ingest("SELECT a FROM t");
        }
        let (base, _) = b.finish();

        let mut w = LogIngest::new();
        for _ in 0..50 {
            w.ingest("SELECT a FROM t WHERE leak = ?"); // injected atom
        }
        let (window, _) = w.finish();

        let report = feature_drift(&base, &window);
        // Both baseline features (a, t) sit at marginal 1.0 in both logs…
        assert!(report.per_feature.iter().all(|&(_, d)| d < 1e-12));
        // …yet the injected feature must still move the mean: one new
        // feature at q = 1 contributes JS(0, 1) = ln 2 over 3 features.
        assert!(report.overall > 0.0, "injection-only window scored overall == 0");
        assert!(
            (report.overall - std::f64::consts::LN_2 / 3.0).abs() < 1e-9,
            "overall {} != ln2/3",
            report.overall
        );
        assert!(!report.is_stable(1e-9));
        assert_eq!(report.new_features.len(), 1);
    }

    #[test]
    fn all_unknown_query_scores_at_least_its_own_length() {
        // Regression: the normalizing universe must stay fixed at the
        // baseline's. The old per-probe denominator `nf + unknown` made
        // Hamming *shrink* as a query got more unknown features — an
        // all-unknown injection scored below its documented floor.
        let all_metrics = [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Minkowski(4.0),
            Distance::Hamming,
            Distance::Chebyshev,
            Distance::Canberra,
        ];
        let mut b = LogIngest::new();
        b.ingest("SELECT a FROM t");
        b.ingest("SELECT b FROM t");
        let (base, _) = b.finish();
        let nf = base.num_features();

        let mut w = LogIngest::new();
        w.ingest("SELECT a FROM t"); // in-baseline
        w.ingest("SELECT b FROM t"); // in-baseline
        w.ingest("SELECT x, y FROM secret"); // all three features unknown
        let (window, _) = w.finish();

        for metric in all_metrics {
            let scores = novelty_scores(&base, &window, metric);
            assert_eq!(scores.len(), 3);
            let injected = scores[2];
            // Documented floor: at least its own length, through the
            // metric kernel at the baseline universe.
            let floor = metric.of_mismatches(3, nf);
            assert!(
                injected >= floor,
                "{metric:?}: all-unknown query scored {injected} below its length floor {floor}"
            );
            // And at least every in-baseline window query.
            for (i, &s) in scores.iter().enumerate().take(2) {
                assert!(
                    injected >= s,
                    "{metric:?}: all-unknown query {injected} below in-baseline query {i} ({s})"
                );
            }
        }
    }

    #[test]
    fn novelty_empty_logs() {
        let base = baseline_log();
        assert!(novelty_scores(&base, &QueryLog::new(), Distance::Manhattan).is_empty());
        assert!(novelty_scores(&QueryLog::new(), &base, Distance::Manhattan).is_empty());
    }

    #[test]
    fn js_divergence_properties() {
        assert_eq!(js_bernoulli(0.5, 0.5), 0.0);
        assert!(js_bernoulli(0.1, 0.9) > js_bernoulli(0.4, 0.6));
        // Symmetric and bounded by ln 2.
        assert!((js_bernoulli(0.2, 0.7) - js_bernoulli(0.7, 0.2)).abs() < 1e-12);
        assert!(js_bernoulli(0.0, 1.0) <= std::f64::consts::LN_2 + 1e-12);
    }
}
