//! Reproduction Error (paper §4.1).
//!
//! `e(E) = H(ρ_E) − H(ρ*)`: the entropy surplus of the encoding's
//! maximum-entropy distribution over the true log distribution. For naive
//! encodings both terms have closed forms; Lemma 1 guarantees the measure
//! respects the containment order over encodings, and §7.1 validates that it
//! tracks Deviation.

use crate::encoding::NaiveEncoding;
use logr_feature::QueryLog;
use logr_math::xlogx;

/// Entropy of the empirical log distribution `H(ρ*)` in nats.
pub fn empirical_entropy(log: &QueryLog) -> f64 {
    empirical_entropy_for(log, &log.all_entry_indices())
}

/// Empirical entropy of a subset of log entries (one mixture component).
pub fn empirical_entropy_for(log: &QueryLog, entries: &[usize]) -> f64 {
    let total = log.total_for(entries);
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    -entries
        .iter()
        .map(|&i| {
            let c = log.entries()[i].1 as f64;
            xlogx(c / t)
        })
        .sum::<f64>()
}

/// Reproduction Error of the naive encoding of the whole log.
pub fn naive_error(log: &QueryLog) -> f64 {
    naive_error_for(log, &log.all_entry_indices())
}

/// Reproduction Error of the naive encoding of a log subset:
/// `e = Σᵢ h(pᵢ) − H(ρ*)`.
///
/// Non-negative up to floating-point slack: the independent-Bernoulli
/// distribution is the maximum-entropy member of the space containing ρ*.
pub fn naive_error_for(log: &QueryLog, entries: &[usize]) -> f64 {
    let encoding = NaiveEncoding::from_log_subset(log, entries);
    encoding.entropy() - empirical_entropy_for(log, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::{FeatureId, LogIngest, QueryVector};

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    #[test]
    fn entropy_of_uniform_log() {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0]), 1);
        log.add_vector(qv(&[1]), 1);
        log.add_vector(qv(&[2]), 1);
        log.add_vector(qv(&[3]), 1);
        assert!((empirical_entropy(&log) - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_degenerate_log_is_zero() {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 100);
        assert_eq!(empirical_entropy(&log), 0.0);
    }

    #[test]
    fn entropy_respects_multiplicities() {
        // p = (0.5, 0.25, 0.25).
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0]), 2);
        log.add_vector(qv(&[1]), 1);
        log.add_vector(qv(&[2]), 1);
        let expect = -(0.5f64.ln() * 0.5 + 0.25f64.ln() * 0.25 * 2.0);
        assert!((empirical_entropy(&log) - expect).abs() < 1e-12);
    }

    #[test]
    fn reproduction_error_nonnegative() {
        let mut ingest = LogIngest::new();
        ingest.ingest("SELECT id FROM Messages WHERE status = ?");
        ingest.ingest("SELECT id FROM Messages");
        ingest.ingest("SELECT sms_type FROM Messages");
        let (log, _) = ingest.finish();
        assert!(naive_error(&log) >= -1e-12);
    }

    #[test]
    fn independent_log_has_zero_error() {
        // Partition 1 of §5.1: {(1,0,1,1), (1,0,1,0)} — the only fractional
        // feature (status = ?) really is independent, so Error = 0.
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 2, 3]), 1);
        log.add_vector(qv(&[0, 2]), 1);
        let e = naive_error(&log);
        assert!(e.abs() < 1e-12, "error = {e}");
    }

    #[test]
    fn correlated_log_has_positive_error() {
        // Features 0 and 1 perfectly correlated: independence is wrong by
        // exactly one bit (ln 2).
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 1);
        log.add_vector(qv(&[]), 1);
        let e = naive_error(&log);
        assert!((e - std::f64::consts::LN_2).abs() < 1e-12, "error = {e}");
    }

    #[test]
    fn partitioning_single_cluster_matches_whole_log() {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 3);
        log.add_vector(qv(&[1, 2]), 2);
        let all = log.all_entry_indices();
        assert_eq!(naive_error(&log), naive_error_for(&log, &all));
        assert_eq!(empirical_entropy(&log), empirical_entropy_for(&log, &all));
    }

    #[test]
    fn perfect_partition_has_zero_error_components() {
        // §5.1: splitting the toy log into its two workloads zeroes Error.
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 2, 3]), 1); // id, Messages, status=?
        log.add_vector(qv(&[0, 2]), 1); // id, Messages
        log.add_vector(qv(&[1, 2]), 1); // sms_type, Messages
        let e1 = naive_error_for(&log, &[0, 1]);
        let e2 = naive_error_for(&log, &[2]);
        assert!(e1.abs() < 1e-12);
        assert!(e2.abs() < 1e-12);
        // While the unpartitioned log has positive error.
        assert!(naive_error(&log) > 0.1);
    }

    #[test]
    fn empty_subset_is_zero() {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0]), 1);
        assert_eq!(empirical_entropy_for(&log, &[]), 0.0);
        assert_eq!(naive_error_for(&log, &[]), 0.0);
    }
}
