//! The LogR compressor front end (paper §6).
//!
//! Ties the pipeline together: cluster the log's distinct queries, build the
//! naive mixture encoding, optionally refine with correlated patterns. The
//! "tunable parameter" of the paper's abstract is the
//! [`CompressionObjective`]: fix the cluster count, target an Error bound,
//! or cap Total Verbosity — the compressor walks K upward until the target
//! holds.

use crate::mixture::NaiveMixtureEncoding;
use crate::refine::{refine_mixture, RefineConfig, RefinedMixture};
use logr_cluster::{cluster_log, ClusterMethod, Clustering, Distance};
use logr_feature::{Feature, QueryLog, QueryVector};

/// What the compressor optimizes for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressionObjective {
    /// Use exactly this many clusters.
    FixedK(usize),
    /// Smallest K whose generalized Error is at most the bound
    /// (give up at `max_k`).
    MaxError {
        /// Error bound in nats.
        bound: f64,
        /// Largest K to try.
        max_k: usize,
    },
    /// Largest K whose Total Verbosity stays within the budget.
    MaxVerbosity {
        /// Verbosity budget (total patterns stored).
        budget: usize,
        /// Largest K to try.
        max_k: usize,
    },
}

/// LogR compression configuration.
#[derive(Debug, Clone, Copy)]
pub struct LogRConfig {
    /// Clustering strategy. The paper's take-away (§6.1.1): Hamming offers
    /// the best Error/runtime trade-off, KMeans the fastest runtime.
    pub method: ClusterMethod,
    /// The compactness/fidelity knob.
    pub objective: CompressionObjective,
    /// RNG seed (clustering init).
    pub seed: u64,
    /// Optional §6.4 refinement stage.
    pub refine: Option<RefineConfig>,
}

impl Default for LogRConfig {
    fn default() -> Self {
        LogRConfig {
            method: ClusterMethod::Spectral(Distance::Hamming),
            objective: CompressionObjective::FixedK(8),
            seed: 0,
            refine: None,
        }
    }
}

/// The LogR compressor.
#[derive(Debug, Clone, Default)]
pub struct LogR {
    config: LogRConfig,
}

impl LogR {
    /// Compressor with an explicit configuration.
    pub fn new(config: LogRConfig) -> Self {
        LogR { config }
    }

    /// Convenience: fixed-K compressor with the default (spectral Hamming)
    /// clustering.
    pub fn with_clusters(k: usize) -> Self {
        LogR::new(LogRConfig { objective: CompressionObjective::FixedK(k), ..Default::default() })
    }

    /// Compress a log into a pattern mixture summary.
    pub fn compress(&self, log: &QueryLog) -> LogRSummary {
        let clustering = resolve_objective(self.config.objective, log, |k| {
            cluster_log(log, k, self.config.method, self.config.seed)
        });
        let mixture = NaiveMixtureEncoding::build(log, &clustering);
        let refined = self.config.refine.as_ref().map(|cfg| refine_mixture(log, &mixture, cfg));
        LogRSummary { clustering, mixture, refined }
    }
}

/// The multiplicity-weighted dendrogram over a log's pre-materialized
/// condensed distance matrix — the single clustering every condensed-path
/// entry point cuts.
///
/// # Panics
/// Panics if the matrix size differs from the log's distinct count.
fn condensed_dendrogram(
    log: &QueryLog,
    dist: logr_cluster::CondensedMatrix,
) -> logr_cluster::Dendrogram {
    assert_eq!(
        dist.n(),
        log.distinct_count(),
        "condensed matrix must cover the log's distinct entries"
    );
    let weights: Vec<f64> = log.entries().iter().map(|&(_, c)| c as f64).collect();
    logr_cluster::hierarchical_cluster_condensed(dist, &weights)
}

/// Resolve a [`CompressionObjective`] to a clustering, given a producer of
/// candidate clusterings at a requested K (repeated clustering for the
/// batch path, dendrogram cuts for the condensed/streaming path). The
/// bound-seeking objectives walk K upward from 1 and stop at the first
/// candidate satisfying (MaxError) or the last candidate not violating
/// (MaxVerbosity) the target, giving up at `max_k`.
fn resolve_objective(
    objective: CompressionObjective,
    log: &QueryLog,
    mut cluster_at: impl FnMut(usize) -> Clustering,
) -> Clustering {
    match objective {
        CompressionObjective::FixedK(k) => cluster_at(k),
        CompressionObjective::MaxError { bound, max_k } => {
            let mut best = cluster_at(1);
            for k in 2..=max_k.max(1) {
                if NaiveMixtureEncoding::build(log, &best).error() <= bound {
                    break;
                }
                best = cluster_at(k);
            }
            best
        }
        CompressionObjective::MaxVerbosity { budget, max_k } => {
            let mut best = cluster_at(1);
            for k in 2..=max_k.max(1) {
                let candidate = cluster_at(k);
                if NaiveMixtureEncoding::build(log, &candidate).total_verbosity() > budget {
                    break;
                }
                best = candidate;
            }
            best
        }
    }
}

impl LogR {
    /// Compress a log whose pairwise distances over distinct entries are
    /// already materialized as a condensed matrix — the streaming/sharded
    /// path: a [`logr_cluster::ShardedPointSet`] merges its per-window
    /// shards through `condensed(metric)` and hands the result here, so no
    /// pairwise distance is ever recomputed. Clustering is hierarchical
    /// (the strategy that consumes condensed matrices directly), and every
    /// [`CompressionObjective`] resolves by cutting **one** dendrogram —
    /// the K sweep costs one clustering, not `max_k`.
    ///
    /// # Panics
    /// Panics if the matrix size differs from the log's distinct count.
    pub fn compress_condensed(
        &self,
        log: &QueryLog,
        dist: logr_cluster::CondensedMatrix,
    ) -> LogRSummary {
        let finish = |clustering: Clustering| self.finish_summary(log, clustering);
        if log.distinct_count() == 0 {
            return finish(Clustering::new(1, Vec::new()));
        }
        let dendrogram = condensed_dendrogram(log, dist);
        let clustering =
            resolve_objective(self.config.objective, log, |k| dendrogram.cut(k.max(1)));
        finish(clustering)
    }

    /// Multi-resolution compression over a pre-materialized condensed
    /// matrix: the streaming-side counterpart of
    /// [`LogR::compress_multiresolution`]. One dendrogram is built from
    /// the given distances (zero recomputed — the sharded history's
    /// merged matrix plugs in directly) and cut at every requested K, so
    /// the returned summaries are **nested** and the whole
    /// Error/Verbosity trade-off curve costs one clustering. The
    /// configured objective is ignored; each entry of `ks` is a fixed
    /// cut.
    ///
    /// # Panics
    /// Panics if the matrix size differs from the log's distinct count.
    pub fn compress_condensed_multiresolution(
        &self,
        log: &QueryLog,
        dist: logr_cluster::CondensedMatrix,
        ks: &[usize],
    ) -> Vec<LogRSummary> {
        if log.distinct_count() == 0 {
            return ks
                .iter()
                .map(|_| self.finish_summary(log, Clustering::new(1, Vec::new())))
                .collect();
        }
        let dendrogram = condensed_dendrogram(log, dist);
        ks.iter().map(|&k| self.finish_summary(log, dendrogram.cut(k.max(1)))).collect()
    }

    /// Encode (and optionally refine) one resolved clustering.
    fn finish_summary(&self, log: &QueryLog, clustering: Clustering) -> LogRSummary {
        let mixture = NaiveMixtureEncoding::build(log, &clustering);
        let refined = self.config.refine.as_ref().map(|cfg| refine_mixture(log, &mixture, cfg));
        LogRSummary { clustering, mixture, refined }
    }

    /// Multi-resolution compression via hierarchical clustering
    /// (§6.1.1's "more dynamic control over the Error/Verbosity
    /// tradeoff"): one dendrogram is built, then cut at every requested
    /// K — so the returned summaries are **nested** (each coarser summary
    /// merges whole clusters of the finer one), and the cost of the sweep
    /// is one clustering, not `|ks|`.
    pub fn compress_multiresolution(&self, log: &QueryLog, ks: &[usize]) -> Vec<LogRSummary> {
        use logr_cluster::{hierarchical_cluster_pointset, Distance, PointSet};
        let metric = match self.config.method {
            ClusterMethod::Hierarchical(d) | ClusterMethod::Spectral(d) => d,
            ClusterMethod::KMeansEuclidean => Distance::Euclidean,
        };
        if log.distinct_count() == 0 {
            return Vec::new();
        }
        // One dense conversion serves the single dendrogram build.
        let points = PointSet::from_log(log);
        let weights: Vec<f64> = log.entries().iter().map(|&(_, c)| c as f64).collect();
        let dendrogram = hierarchical_cluster_pointset(&points, &weights, metric);
        ks.iter()
            .map(|&k| {
                let clustering = dendrogram.cut(k.max(1));
                let mixture = NaiveMixtureEncoding::build(log, &clustering);
                let refined =
                    self.config.refine.as_ref().map(|cfg| refine_mixture(log, &mixture, cfg));
                LogRSummary { clustering, mixture, refined }
            })
            .collect()
    }
}

/// A compressed log: the clustering, the mixture encoding, and (optionally)
/// the refinement.
#[derive(Debug, Clone)]
pub struct LogRSummary {
    /// Partition of the log's distinct queries.
    pub clustering: Clustering,
    /// The naive mixture encoding.
    pub mixture: NaiveMixtureEncoding,
    /// §6.4 refinement output, if requested.
    pub refined: Option<RefinedMixture>,
}

impl LogRSummary {
    /// Generalized Reproduction Error (refined if refinement ran).
    pub fn error(&self) -> f64 {
        self.refined.as_ref().map_or_else(|| self.mixture.error(), |r| r.error)
    }

    /// Total Verbosity (refined if refinement ran).
    pub fn total_verbosity(&self) -> usize {
        self.refined.as_ref().map_or_else(|| self.mixture.total_verbosity(), |r| r.total_verbosity)
    }

    /// Estimate how many log queries contain all the given features
    /// (`est[Γ_b]`, §6.2). Features not in the codebook contribute zero
    /// support, so unknown features yield 0.
    pub fn estimate_count_features(&self, log: &QueryLog, features: &[Feature]) -> f64 {
        let mut ids = Vec::with_capacity(features.len());
        for f in features {
            match log.codebook().get(f) {
                Some(id) => ids.push(id),
                None => return 0.0,
            }
        }
        self.mixture.estimate_count(&QueryVector::new(ids))
    }

    /// Estimate a pattern's count from raw feature ids.
    pub fn estimate_count(&self, pattern: &QueryVector) -> f64 {
        self.mixture.estimate_count(pattern)
    }

    /// Estimated joint counts for every unordered pair drawn from `ids`
    /// (see [`NaiveMixtureEncoding::estimate_pair_counts`]).
    pub fn estimate_pair_counts(
        &self,
        ids: &[logr_feature::FeatureId],
    ) -> Vec<(logr_feature::FeatureId, logr_feature::FeatureId, f64)> {
        self.mixture.estimate_pair_counts(ids)
    }

    /// Conditional-marginal ranking of continuations of `given`
    /// (see [`NaiveMixtureEncoding::rank_continuations`]).
    pub fn rank_continuations(
        &self,
        given: &QueryVector,
        min_conditional: f64,
    ) -> Vec<(logr_feature::FeatureId, f64)> {
        self.mixture.rank_continuations(given, min_conditional)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::LogIngest;

    fn mixed_log() -> QueryLog {
        let mut ingest = LogIngest::new();
        for _ in 0..20 {
            ingest.ingest("SELECT id, body FROM messages WHERE status = ?");
            ingest.ingest("SELECT id FROM messages WHERE status = ? AND kind = ?");
            ingest.ingest("SELECT balance FROM accounts WHERE owner = ?");
            ingest.ingest("SELECT balance, branch FROM accounts WHERE owner = ? AND open = ?");
        }
        ingest.finish().0
    }

    #[test]
    fn fixed_k_compression() {
        let log = mixed_log();
        let summary = LogR::with_clusters(2).compress(&log);
        assert_eq!(summary.mixture.k(), 2);
        // Two feature-disjoint workloads at k=2 → near-perfect mixture.
        let single = NaiveMixtureEncoding::single(&log);
        assert!(summary.error() < single.error());
    }

    #[test]
    fn max_error_objective_reaches_bound() {
        let log = mixed_log();
        let config = LogRConfig {
            objective: CompressionObjective::MaxError { bound: 0.05, max_k: 8 },
            ..Default::default()
        };
        let summary = LogR::new(config).compress(&log);
        assert!(summary.error() <= 0.05 + 1e-9, "error {}", summary.error());
    }

    #[test]
    fn max_verbosity_objective_respects_budget() {
        let log = mixed_log();
        let single_verbosity = NaiveMixtureEncoding::single(&log).total_verbosity();
        let budget = single_verbosity + 4;
        let config = LogRConfig {
            objective: CompressionObjective::MaxVerbosity { budget, max_k: 8 },
            ..Default::default()
        };
        let summary = LogR::new(config).compress(&log);
        assert!(
            summary.total_verbosity() <= budget,
            "verbosity {} over budget {budget}",
            summary.total_verbosity()
        );
    }

    #[test]
    fn estimate_counts_by_feature() {
        let log = mixed_log();
        let summary = LogR::with_clusters(2).compress(&log);
        let est = summary.estimate_count_features(
            &log,
            &[Feature::from_table("messages"), Feature::where_atom("status = ?")],
        );
        // All 40 messaging queries touch messages+status.
        assert!((est - 40.0).abs() < 1.0, "est {est}");
        // Unknown feature → 0.
        assert_eq!(summary.estimate_count_features(&log, &[Feature::from_table("nope")]), 0.0);
    }

    #[test]
    fn refinement_reduces_or_preserves_error() {
        let log = mixed_log();
        let config = LogRConfig {
            objective: CompressionObjective::FixedK(2),
            refine: Some(RefineConfig::default()),
            ..Default::default()
        };
        let refined = LogR::new(config).compress(&log);
        let unrefined = LogR::with_clusters(2).compress(&log);
        assert!(refined.error() <= unrefined.error() + 1e-9);
        assert!(refined.refined.is_some());
    }

    #[test]
    fn multiresolution_summaries_are_nested_and_monotone() {
        let log = mixed_log();
        let compressor = LogR::new(LogRConfig {
            method: ClusterMethod::Hierarchical(Distance::Hamming),
            ..Default::default()
        });
        let ks = [1usize, 2, 4];
        let summaries = compressor.compress_multiresolution(&log, &ks);
        assert_eq!(summaries.len(), 3);
        // Verbosity grows, and each coarser clustering merges whole finer
        // clusters (nestedness from the shared dendrogram).
        for w in summaries.windows(2) {
            assert!(w[0].total_verbosity() <= w[1].total_verbosity());
            let coarse = &w[0].clustering;
            let fine = &w[1].clustering;
            let mut map = std::collections::HashMap::new();
            for i in 0..fine.len() {
                let entry = map.entry(fine.assignments[i]).or_insert(coarse.assignments[i]);
                assert_eq!(*entry, coarse.assignments[i], "summaries not nested");
            }
        }
        // The k=4 summary separates the workloads at least as well as k=1.
        assert!(summaries[2].error() <= summaries[0].error() + 1e-9);
    }

    #[test]
    fn condensed_path_matches_hierarchical_compression() {
        use logr_cluster::PointSet;
        let log = mixed_log();
        let config = LogRConfig {
            method: ClusterMethod::Hierarchical(Distance::Hamming),
            objective: CompressionObjective::FixedK(2),
            ..Default::default()
        };
        let direct = LogR::new(config).compress(&log);
        let dist = PointSet::from_log(&log).distances(Distance::Hamming);
        let condensed = LogR::new(config).compress_condensed(&log, dist);
        assert_eq!(direct.clustering, condensed.clustering);
        assert_eq!(direct.error().to_bits(), condensed.error().to_bits());
        // Objectives resolve on the same dendrogram: error bound holds.
        let bounded = LogR::new(LogRConfig {
            objective: CompressionObjective::MaxError { bound: 0.05, max_k: 8 },
            ..config
        })
        .compress_condensed(&log, PointSet::from_log(&log).distances(Distance::Hamming));
        assert!(bounded.error() <= 0.05 + 1e-9, "error {}", bounded.error());
        // Empty log degenerates cleanly.
        let empty = QueryLog::new();
        let s = LogR::new(config)
            .compress_condensed(&empty, PointSet::from_log(&empty).distances(Distance::Hamming));
        assert_eq!(s.mixture.k(), 0);
    }

    #[test]
    fn condensed_multiresolution_matches_per_k_cuts() {
        use logr_cluster::PointSet;
        let log = mixed_log();
        let config = LogRConfig {
            method: ClusterMethod::Hierarchical(Distance::Hamming),
            ..Default::default()
        };
        let compressor = LogR::new(config);
        let dist = || PointSet::from_log(&log).distances(Distance::Hamming);
        let sweep = compressor.compress_condensed_multiresolution(&log, dist(), &[1, 2, 4]);
        assert_eq!(sweep.len(), 3);
        // Each entry is bit-identical to a FixedK condensed compression —
        // one shared dendrogram serves both paths.
        for (summary, k) in sweep.iter().zip([1usize, 2, 4]) {
            let fixed =
                LogR::new(LogRConfig { objective: CompressionObjective::FixedK(k), ..config })
                    .compress_condensed(&log, dist());
            assert_eq!(summary.clustering, fixed.clustering, "k = {k}");
            assert_eq!(summary.error().to_bits(), fixed.error().to_bits(), "k = {k}");
        }
        // Nested: the coarser cut merges whole clusters of the finer one.
        for w in sweep.windows(2) {
            let mut map = std::collections::HashMap::new();
            for i in 0..w[1].clustering.len() {
                let entry = map
                    .entry(w[1].clustering.assignments[i])
                    .or_insert(w[0].clustering.assignments[i]);
                assert_eq!(*entry, w[0].clustering.assignments[i], "cuts not nested");
            }
        }
        // Empty log degenerates to one empty summary per requested K.
        let empty = QueryLog::new();
        let s = compressor.compress_condensed_multiresolution(
            &empty,
            PointSet::from_log(&empty).distances(Distance::Hamming),
            &[1, 2],
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].mixture.k(), 0);
    }

    #[test]
    fn kmeans_method_works_too() {
        let log = mixed_log();
        let config = LogRConfig {
            method: ClusterMethod::KMeansEuclidean,
            objective: CompressionObjective::FixedK(2),
            ..Default::default()
        };
        let summary = LogR::new(config).compress(&log);
        assert_eq!(summary.mixture.k(), 2);
    }
}
