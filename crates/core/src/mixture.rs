//! Pattern mixture encodings (paper §5).
//!
//! A mixture encoding stores one naive encoding per log partition, weighted
//! by the partition's share of the log. Generalized Reproduction Error is
//! the weighted sum of component errors (§5.2); Total Verbosity is the sum
//! of component verbosities; workload statistics mix component estimates
//! (§6.2).

use crate::encoding::NaiveEncoding;
use crate::error::{empirical_entropy_for, naive_error_for};
use logr_cluster::Clustering;
use logr_feature::{FeatureId, QueryLog, QueryVector};

/// One component of a mixture: a partition of the log with its naive
/// encoding.
#[derive(Debug, Clone)]
pub struct MixtureComponent {
    /// Indices into the log's distinct entries.
    pub entries: Vec<usize>,
    /// Total query count (with multiplicities) in this partition.
    pub total: u64,
    /// Share of the whole log: `wᵢ = |Lᵢ| / |L|`.
    pub weight: f64,
    /// The component's naive encoding.
    pub encoding: NaiveEncoding,
    /// The component's Reproduction Error `e(Sᵢ)`.
    pub error: f64,
    /// The component's empirical entropy `H(ρ*ᵢ)`.
    pub empirical_entropy: f64,
}

/// A naive mixture encoding: the simplified pattern-mixture family that LogR
/// compression searches over (§5.1, §6.1).
#[derive(Debug, Clone)]
pub struct NaiveMixtureEncoding {
    components: Vec<MixtureComponent>,
    total: u64,
}

impl NaiveMixtureEncoding {
    /// Build from a log and a clustering of its distinct entries.
    ///
    /// Empty clusters are dropped.
    ///
    /// # Panics
    /// Panics if the clustering length differs from the log's distinct
    /// count.
    pub fn build(log: &QueryLog, clustering: &Clustering) -> Self {
        assert_eq!(
            clustering.len(),
            log.distinct_count(),
            "clustering must cover the log's distinct entries"
        );
        let total = log.total_queries();
        let components = clustering
            .members()
            .into_iter()
            .filter(|entries| !entries.is_empty())
            .map(|entries| {
                let part_total = log.total_for(&entries);
                MixtureComponent {
                    weight: if total == 0 { 0.0 } else { part_total as f64 / total as f64 },
                    total: part_total,
                    encoding: NaiveEncoding::from_log_subset(log, &entries),
                    error: naive_error_for(log, &entries),
                    empirical_entropy: empirical_entropy_for(log, &entries),
                    entries,
                }
            })
            .collect();
        NaiveMixtureEncoding { components, total }
    }

    /// Single-component mixture (the plain naive encoding of the log).
    pub fn single(log: &QueryLog) -> Self {
        NaiveMixtureEncoding::build(log, &Clustering::trivial(log.distinct_count()))
    }

    /// The mixture components.
    pub fn components(&self) -> &[MixtureComponent] {
        &self.components
    }

    /// Number of (non-empty) components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Total queries in the encoded log.
    pub fn total_queries(&self) -> u64 {
        self.total
    }

    /// Generalized Reproduction Error: `Σᵢ wᵢ · e(Sᵢ)` (§5.2).
    pub fn error(&self) -> f64 {
        self.components.iter().map(|c| c.weight * c.error).sum()
    }

    /// Total Verbosity: `Σᵢ |Sᵢ|` (§5.2).
    pub fn total_verbosity(&self) -> usize {
        self.components.iter().map(|c| c.encoding.verbosity()).sum()
    }

    /// Mixture estimate of a pattern's occurrence count (§6.2):
    /// `est[Γ_b] = Σᵢ |Lᵢ| · Π_{f∈b} pᵢ(f)`.
    pub fn estimate_count(&self, pattern: &QueryVector) -> f64 {
        self.components.iter().map(|c| c.encoding.estimate_count(pattern, c.total)).sum()
    }

    /// Mixture estimate of a pattern's marginal probability.
    pub fn estimate_marginal(&self, pattern: &QueryVector) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.estimate_count(pattern) / self.total as f64
    }

    /// Mixture probability of drawing exactly `q`:
    /// `ρ_S(q) = Σᵢ wᵢ · ρ_{Sᵢ}(q)` (§5.2).
    pub fn probability(&self, q: &QueryVector) -> f64 {
        self.components.iter().map(|c| c.weight * c.encoding.probability(q)).sum()
    }

    /// Estimated joint occurrence count for every unordered pair drawn
    /// from `ids` — the frequency table materialized-view selection ranks
    /// join candidates by (paper §2: "the results of joins … are good
    /// candidates for materialization when they appear frequently").
    ///
    /// Each pair's estimate is exactly [`Self::estimate_count`] of the
    /// two-feature pattern, so per-cluster marginals keep anti-correlated
    /// workloads apart where a single naive encoding would hallucinate
    /// joins (§5). Pairs are enumerated in the given order (`i < j`);
    /// nothing is filtered or sorted here.
    pub fn estimate_pair_counts(&self, ids: &[FeatureId]) -> Vec<(FeatureId, FeatureId, f64)> {
        let mut pairs = Vec::with_capacity(ids.len().saturating_sub(1) * ids.len() / 2);
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                let est = self.estimate_count(&QueryVector::new(vec![a, b]));
                pairs.push((a, b, est));
            }
        }
        pairs
    }

    /// Conditional-marginal ranking of candidate continuations of `given`
    /// — the scoring loop of query recommenders like QueRIE and
    /// SnipSuggest (paper §1/§9.1) as library code: every feature `f` of
    /// the encoded universe not already in `given` is scored by
    /// `est[given ∪ {f}] / est[given]` and kept when **strictly** above
    /// `min_conditional`, descending (ties keep feature-id order).
    ///
    /// Empty when `est[given]` is zero — the fragment is unseen and the
    /// summary supports no conditioning.
    pub fn rank_continuations(
        &self,
        given: &QueryVector,
        min_conditional: f64,
    ) -> Vec<(FeatureId, f64)> {
        let base = self.estimate_count(given);
        if base <= 0.0 {
            return Vec::new();
        }
        let universe =
            self.components.iter().map(|c| c.encoding.marginals().len()).max().unwrap_or(0);
        let mut ranked = Vec::new();
        for i in 0..universe {
            let id = FeatureId(i as u32);
            if given.contains(id) {
                continue;
            }
            let mut ids: Vec<FeatureId> = given.iter().collect();
            ids.push(id);
            let conditional = self.estimate_count(&QueryVector::new(ids)) / base;
            if conditional > min_conditional {
                ranked.push((id, conditional));
            }
        }
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    /// The §5.1 toy log (features: 0 = id, 1 = sms_type, 2 = Messages,
    /// 3 = status=?).
    fn toy_log() -> QueryLog {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 2, 3]), 1);
        log.add_vector(qv(&[0, 2]), 1);
        log.add_vector(qv(&[1, 2]), 1);
        log
    }

    #[test]
    fn single_mixture_equals_naive_encoding() {
        let log = toy_log();
        let m = NaiveMixtureEncoding::single(&log);
        assert_eq!(m.k(), 1);
        assert_eq!(m.total_verbosity(), 4);
        assert!((m.error() - crate::error::naive_error(&log)).abs() < 1e-12);
    }

    #[test]
    fn section_5_1_partition_has_zero_error() {
        // Partition {q1, q2} | {q3} — the paper's worked example: Error = 0.
        let log = toy_log();
        let clustering = Clustering::new(2, vec![0, 0, 1]);
        let m = NaiveMixtureEncoding::build(&log, &clustering);
        assert_eq!(m.k(), 2);
        assert!(m.error().abs() < 1e-12, "error = {}", m.error());
        // Verbosity: partition 1 has features {0,2,3}, partition 2 {1,2}.
        assert_eq!(m.total_verbosity(), 5);
        // Weights 2/3 and 1/3.
        assert!((m.components()[0].weight - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.components()[1].weight - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn splitting_shared_features_raises_verbosity() {
        // Feature 2 (Messages) occurs in both partitions: splitting adds 1
        // to Total Verbosity (paper §6.1.1 observation).
        let log = toy_log();
        let single = NaiveMixtureEncoding::single(&log);
        let split = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1]));
        assert_eq!(split.total_verbosity(), single.total_verbosity() + 1);
    }

    #[test]
    fn best_partition_beats_single_encoding() {
        // The paper's §6.1 premise: a good partition reduces Error — but a
        // *bad* partition can raise it (cluster assignments are
        // non-monotonic, §6.1.1), so only the minimum is guaranteed.
        let log = toy_log();
        let single = NaiveMixtureEncoding::single(&log).error();
        let best = [vec![0, 0, 1], vec![0, 1, 0], vec![0, 1, 1]]
            .into_iter()
            .map(|a| NaiveMixtureEncoding::build(&log, &Clustering::new(2, a)).error())
            .fold(f64::INFINITY, f64::min);
        assert!(best <= single + 1e-9, "best 2-partition {best} vs single {single}");
        // And the workload-aligned split is exactly the best one.
        let aligned = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1]));
        assert!((aligned.error() - best).abs() < 1e-12);
    }

    #[test]
    fn estimate_count_mixes_partitions() {
        let log = toy_log();
        let m = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1]));
        // Pattern {status=?}: partition 1 estimates 2·(1/2) = 1; partition 2
        // has marginal 0 → total 1 = true count.
        assert!((m.estimate_count(&qv(&[3])) - 1.0).abs() < 1e-12);
        // Pattern {id, Messages}: partition 1: 2·1·1 = 2; partition 2: 0.
        assert!((m.estimate_count(&qv(&[0, 2])) - 2.0).abs() < 1e-12);
        // Pattern {Messages}: 2 + 1 = 3.
        assert!((m.estimate_count(&qv(&[2])) - 3.0).abs() < 1e-12);
        assert!((m.estimate_marginal(&qv(&[2])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_error_mixture_estimates_exactly() {
        // With zero generalized error, every pattern marginal within a
        // partition is exact for patterns the partitions determine.
        let log = toy_log();
        let m = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1]));
        for (pattern, true_count) in
            [(qv(&[0]), 2.0), (qv(&[1]), 1.0), (qv(&[2]), 3.0), (qv(&[3]), 1.0), (qv(&[0, 3]), 1.0)]
        {
            let est = m.estimate_count(&pattern);
            assert!(
                (est - true_count).abs() < 1e-9,
                "pattern {pattern:?}: est {est} vs true {true_count}"
            );
        }
    }

    #[test]
    fn probability_mixes_components() {
        let log = toy_log();
        let m = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1]));
        // q3 = {1,2} is partition 2's only query: ρ(q3) = w2·1 = 1/3.
        assert!((m.probability(&qv(&[1, 2])) - 1.0 / 3.0).abs() < 1e-12);
        // q1 = {0,2,3}: partition 1 gives 1/2 → w1·1/2 = 1/3 (true prob).
        assert!((m.probability(&qv(&[0, 2, 3])) - 1.0 / 3.0).abs() < 1e-12);
        // Cross-partition phantom {0,1,2} has probability 0 in both.
        assert_eq!(m.probability(&qv(&[0, 1, 2])), 0.0);
    }

    #[test]
    fn empty_clusters_dropped() {
        let log = toy_log();
        let m = NaiveMixtureEncoding::build(&log, &Clustering::new(5, vec![0, 0, 4]));
        assert_eq!(m.k(), 2);
        let w: f64 = m.components().iter().map(|c| c.weight).sum();
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_counts_match_pairwise_estimates() {
        let log = toy_log();
        let m = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1]));
        let ids = [FeatureId(0), FeatureId(1), FeatureId(2)];
        let pairs = m.estimate_pair_counts(&ids);
        assert_eq!(pairs.len(), 3);
        for &(a, b, est) in &pairs {
            let direct = m.estimate_count(&QueryVector::new(vec![a, b]));
            assert_eq!(est.to_bits(), direct.to_bits(), "pair ({a:?}, {b:?})");
        }
        // Enumeration order is i < j over the input slice.
        assert_eq!(pairs[0].0, FeatureId(0));
        assert_eq!(pairs[0].1, FeatureId(1));
        assert_eq!(pairs[2].0, FeatureId(1));
        assert_eq!(pairs[2].1, FeatureId(2));
        // Cross-partition phantom pair {id, sms_type} estimates 0.
        assert_eq!(pairs[0].2, 0.0);
    }

    #[test]
    fn continuations_rank_by_conditional() {
        let log = toy_log();
        let m = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 0, 1]));
        // Given {id}: Messages co-occurs always (p = 1), status=? half the
        // time (p = 1/2), sms_type never.
        let ranked = m.rank_continuations(&qv(&[0]), 0.0);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0, FeatureId(2));
        assert!((ranked[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(ranked[1].0, FeatureId(3));
        assert!((ranked[1].1 - 0.5).abs() < 1e-12);
        // Threshold is strict: at 0.5 the status=? continuation drops.
        assert_eq!(m.rank_continuations(&qv(&[0]), 0.5).len(), 1);
        // Unseen fragment → no conditioning possible.
        assert!(m.rank_continuations(&qv(&[0, 1]), 0.0).is_empty());
    }

    #[test]
    fn component_bookkeeping_consistent() {
        let log = toy_log();
        let m = NaiveMixtureEncoding::build(&log, &Clustering::new(2, vec![0, 1, 1]));
        let totals: u64 = m.components().iter().map(|c| c.total).sum();
        assert_eq!(totals, log.total_queries());
        for c in m.components() {
            assert!(c.error >= -1e-12);
            assert!(c.empirical_entropy >= 0.0);
            assert_eq!(c.total, log.total_for(&c.entries));
        }
    }
}
