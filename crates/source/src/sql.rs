//! The SQL featurizer: the paper's parse → anonymize → regularize →
//! Aligon-feature pipeline behind the [`Featurizer`] trait.
//!
//! Stateless: featurization of a statement depends on nothing but the
//! statement, so the journal is empty and replay is a no-op. The feature
//! order per branch is exactly `extract_features`' interning order (via
//! [`branch_features`]), which is what keeps stores built through this
//! path byte-identical to the historical `LogIngest` path.

use logr_feature::{anonymized_branches, branch_features, ExtractConfig};

use crate::{FeatureBranch, Featurizer, SourceError};

/// Stateless SQL featurizer. Unparseable statements yield no branches.
#[derive(Debug, Clone, Copy, Default)]
pub struct SqlFeaturizer {
    config: ExtractConfig,
}

impl SqlFeaturizer {
    /// Featurizer with an explicit extraction config.
    pub fn with_config(config: ExtractConfig) -> Self {
        SqlFeaturizer { config }
    }
}

impl Featurizer for SqlFeaturizer {
    fn kind(&self) -> &'static str {
        "sql"
    }

    fn featurize(&mut self, text: &str) -> Vec<FeatureBranch> {
        anonymized_branches(text)
            .iter()
            .map(|branch| FeatureBranch::new(branch_features(branch, self.config)))
            .collect()
    }

    fn export_journal(&self) -> Vec<u8> {
        Vec::new()
    }

    fn drain_events(&mut self) -> Vec<u8> {
        Vec::new()
    }

    fn replay(&mut self, bytes: &[u8]) -> Result<(), SourceError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(SourceError::CorruptJournal {
                detail: format!(
                    "sql featurizer is stateless but journal has {} bytes",
                    bytes.len()
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::{Feature, FeatureClass};

    #[test]
    fn branches_match_paper_example() {
        let mut f = SqlFeaturizer::default();
        let branches = f.featurize(
            "SELECT _id, sms_type, _time FROM Messages WHERE status = 1 AND transport_type = 'mms'",
        );
        assert_eq!(branches.len(), 1);
        let feats = &branches[0].features;
        assert_eq!(feats.len(), 6);
        assert!(feats.contains(&Feature::from_table("Messages")));
        assert!(feats.contains(&Feature::where_atom("status = ?")));
        assert!(feats.iter().all(|f| f.class != FeatureClass::Template));
    }

    #[test]
    fn garbage_yields_no_branches() {
        let mut f = SqlFeaturizer::default();
        assert!(f.featurize("DELETE FROM nope").is_empty());
        assert!(f.featurize("").is_empty());
    }

    #[test]
    fn union_yields_multiple_branches() {
        let mut f = SqlFeaturizer::default();
        let branches = f.featurize("SELECT a FROM t UNION SELECT b FROM u");
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn journal_is_empty_and_replay_rejects_bytes() {
        let mut f = SqlFeaturizer::default();
        f.featurize("SELECT a FROM t");
        assert!(f.export_journal().is_empty());
        assert!(f.drain_events().is_empty());
        assert!(f.replay(&[]).is_ok());
        assert!(f.replay(&[1, 2, 3]).is_err());
    }
}
