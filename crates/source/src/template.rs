//! Drain-style online template mining for free-form service logs.
//!
//! A record is tokenized on whitespace and routed through a fixed-depth
//! parse tree: level 0 keys on token count, the next `depth` levels key on
//! the leading tokens (digit-bearing tokens are routed as `<*>` so
//! variable-leading messages share a path). Internal nodes hold at most
//! `max_children` children; once full, unseen keys fall back to a `<*>`
//! child. Each leaf holds a group of templates sharing the routing path;
//! a record joins the template maximizing the fraction of exactly-equal
//! tokens when that fraction reaches the similarity threshold, otherwise
//! it seeds a new template. On a match, template positions whose token
//! disagrees are promoted to the `<*>` wildcard.
//!
//! Each record emits one [`FeatureBranch`]: a ⟨template, TEMPLATE⟩
//! feature carrying the template's *creation-time* pattern (stable across
//! later wildcard promotion, so feature identity never drifts) plus one
//! ⟨class, PARAM⟩ feature per variable position, where the class is a
//! coarse syntactic bucket of the concrete token (num, hex, ip, path,
//! uuid, id, str).
//!
//! # Persistence by replay
//!
//! Wildcard promotion makes mining order-sensitive, so the miner journals
//! every *distinct first-seen text* in arrival order and memoizes its
//! full feature result. [`Featurizer::replay`] re-mines the journal
//! through this same code path; since featurization is deterministic in
//! (journal prefix, text), the restored miner — tree, templates, memo —
//! is bit-identical to the live one, and every future record featurizes
//! exactly as it would have on the uninterrupted run.

use std::collections::HashMap;

use logr_feature::Feature;

use crate::config::TemplateConfig;
use crate::journal;
use crate::{FeatureBranch, Featurizer, SourceError};

/// The wildcard token.
pub const WILDCARD: &str = "<*>";

/// One position of a template's evolving pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Literal token, matched exactly.
    Word(String),
    /// Variable position, matches any token.
    Wildcard,
}

#[derive(Debug)]
struct Template {
    /// Evolving pattern; positions are promoted to `Wildcard` as
    /// disagreeing records join the template.
    tokens: Vec<Tok>,
    /// Creation-time pattern text — the stable identity emitted as the
    /// ⟨template, TEMPLATE⟩ feature. Never updated by promotion.
    text: String,
    /// Distinct texts that matched this template (diagnostics).
    distinct: u64,
}

/// Internal parse-tree node (levels 1..=depth key on masked tokens).
#[derive(Debug, Default)]
struct Node {
    children: HashMap<String, Node>,
    /// Template ids grouped at this leaf position.
    group: Vec<usize>,
}

/// Online Drain-style template miner. See the module docs.
#[derive(Debug)]
pub struct TemplateMiner {
    config: TemplateConfig,
    /// Level-0 routing: token count → subtree.
    root: HashMap<usize, Node>,
    templates: Vec<Template>,
    /// Distinct text → full feature result, pinned at first sight.
    memo: HashMap<String, Vec<FeatureBranch>>,
    /// Distinct first-seen texts in arrival order.
    journal: Vec<String>,
    /// Journal frames already handed out by `drain_events`.
    drained: usize,
}

/// Coarse syntactic class of a concrete parameter token.
fn classify(token: &str) -> Option<&'static str> {
    if token.is_empty() {
        return None;
    }
    let core = token.trim_matches(|c: char| matches!(c, ',' | ';' | ':' | '(' | ')' | '[' | ']'));
    let t = if core.is_empty() { token } else { core };
    let bytes = t.as_bytes();
    let digits = bytes.iter().filter(|b| b.is_ascii_digit()).count();
    if digits == 0 {
        return None;
    }
    let hex_chunks: Vec<&str> = t.split('-').collect();
    if hex_chunks.len() == 5
        && hex_chunks
            .iter()
            .zip([8usize, 4, 4, 4, 12])
            .all(|(c, n)| c.len() == n && c.bytes().all(|b| b.is_ascii_hexdigit()))
    {
        return Some("uuid");
    }
    if t.split('.').count() == 4
        && t.split('.').all(|p| !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()))
    {
        return Some("ip");
    }
    if bytes.iter().all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+')) {
        // 123, -7, 3.25, 2026-08-08 all bucket as numbers.
        return Some("num");
    }
    if t.contains('/') {
        return Some("path");
    }
    let hexish = t.strip_prefix("0x").unwrap_or(t);
    if hexish.len() >= 6 && hexish.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Some("hex");
    }
    Some("id")
}

/// Class label for a token in a wildcard position; tokens with no
/// syntactic signal (pure words promoted by disagreement) bucket as
/// plain strings.
fn param_class(token: &str) -> &'static str {
    classify(token).unwrap_or("str")
}

/// Routing key for a token at a prefix level: digit-bearing tokens route
/// as the wildcard so variable tokens share a path.
fn route_key(token: &str) -> &str {
    if classify(token).is_some() {
        WILDCARD
    } else {
        token
    }
}

impl TemplateMiner {
    /// Fresh miner with the given knobs.
    pub fn new(config: TemplateConfig) -> Self {
        TemplateMiner {
            config,
            root: HashMap::new(),
            templates: Vec::new(),
            memo: HashMap::new(),
            journal: Vec::new(),
            drained: 0,
        }
    }

    /// Creation-time pattern texts of all mined templates, in mining
    /// order.
    pub fn template_texts(&self) -> Vec<&str> {
        self.templates.iter().map(|t| t.text.as_str()).collect()
    }

    /// Number of mined templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Number of distinct texts seen (journal length).
    pub fn distinct_records(&self) -> usize {
        self.journal.len()
    }

    /// (creation-time pattern, distinct texts matched) per template, in
    /// mining order.
    pub fn template_stats(&self) -> Vec<(&str, u64)> {
        self.templates.iter().map(|t| (t.text.as_str(), t.distinct)).collect()
    }

    /// Walk (and grow) the tree for a token sequence; returns the path of
    /// routing keys from the length level to the leaf.
    fn leaf_path(&self, tokens: &[String]) -> Vec<String> {
        let levels = self.config.depth.min(tokens.len());
        let mut path = Vec::with_capacity(levels);
        let mut node = self.root.get(&tokens.len());
        for token in tokens.iter().take(levels) {
            let wanted = route_key(token);
            let key = match node {
                Some(n) => {
                    if n.children.contains_key(wanted)
                        || n.children.len() < self.config.max_children
                    {
                        wanted
                    } else {
                        // Node is full: unseen keys share the fallback child.
                        WILDCARD
                    }
                }
                // Subtree doesn't exist yet; it will be created along
                // `wanted` (child budget starts empty).
                None => wanted,
            };
            path.push(key.to_string());
            node = node.and_then(|n| n.children.get(key));
        }
        path
    }

    /// Leaf group for a routing path, creating nodes as needed.
    fn leaf_mut(&mut self, len: usize, path: &[String]) -> &mut Vec<usize> {
        let mut node = self.root.entry(len).or_default();
        for key in path {
            node = node.children.entry(key.clone()).or_default();
        }
        &mut node.group
    }

    /// Similarity of a template against a token sequence: fraction of
    /// positions with exactly-equal tokens (wildcards contribute 0), plus
    /// the wildcard count as a tie-break (more-general templates win).
    fn similarity(template: &Template, tokens: &[String]) -> (f64, usize) {
        let mut equal = 0usize;
        let mut wild = 0usize;
        for (t, tok) in template.tokens.iter().zip(tokens) {
            match t {
                Tok::Wildcard => wild += 1,
                Tok::Word(w) => {
                    if w == tok {
                        equal += 1;
                    }
                }
            }
        }
        (equal as f64 / tokens.len() as f64, wild)
    }

    /// Mine one not-yet-seen text; returns its feature branch. Empty /
    /// whitespace-only texts yield no branch.
    fn mine(&mut self, text: &str) -> Vec<FeatureBranch> {
        let tokens: Vec<String> = text.split_whitespace().map(str::to_string).collect();
        if tokens.is_empty() {
            return Vec::new();
        }
        let path = self.leaf_path(&tokens);
        let group = self.leaf_mut(tokens.len(), &path).clone();

        let mut best: Option<(usize, f64, usize)> = None;
        for &id in &group {
            if let Some(template) = self.templates.get(id) {
                let (sim, wild) = Self::similarity(template, &tokens);
                let better = match best {
                    None => true,
                    Some((_, bs, bw)) => sim > bs || (sim == bs && wild > bw),
                };
                if better {
                    best = Some((id, sim, wild));
                }
            }
        }

        let id = match best {
            Some((id, sim, _)) if sim >= self.config.similarity => {
                // Join: promote disagreeing positions to wildcards.
                if let Some(template) = self.templates.get_mut(id) {
                    for (t, tok) in template.tokens.iter_mut().zip(&tokens) {
                        if matches!(t, Tok::Word(w) if w != tok) {
                            *t = Tok::Wildcard;
                        }
                    }
                    template.distinct += 1;
                }
                id
            }
            _ => {
                // Seed: syntactic variables are wildcarded immediately and
                // define the creation-time pattern.
                let toks: Vec<Tok> =
                    tokens
                        .iter()
                        .map(|t| {
                            if classify(t).is_some() {
                                Tok::Wildcard
                            } else {
                                Tok::Word(t.clone())
                            }
                        })
                        .collect();
                let text = toks
                    .iter()
                    .zip(&tokens)
                    .map(|(t, tok)| match t {
                        Tok::Wildcard => WILDCARD,
                        Tok::Word(_) => tok.as_str(),
                    })
                    .collect::<Vec<_>>()
                    .join(" ");
                let id = self.templates.len();
                self.templates.push(Template { tokens: toks, text, distinct: 1 });
                self.leaf_mut(tokens.len(), &path).push(id);
                id
            }
        };

        let Some(template) = self.templates.get(id) else {
            return Vec::new();
        };
        let mut features = Vec::with_capacity(1 + tokens.len());
        features.push(Feature::template(template.text.clone()));
        for (t, tok) in template.tokens.iter().zip(&tokens) {
            if matches!(t, Tok::Wildcard) {
                features.push(Feature::param(param_class(tok)));
            }
        }
        vec![FeatureBranch::new(features)]
    }
}

impl Featurizer for TemplateMiner {
    fn kind(&self) -> &'static str {
        "template"
    }

    fn featurize(&mut self, text: &str) -> Vec<FeatureBranch> {
        if let Some(cached) = self.memo.get(text) {
            return cached.clone();
        }
        let branches = self.mine(text);
        self.journal.push(text.to_string());
        self.memo.insert(text.to_string(), branches.clone());
        branches
    }

    fn export_journal(&self) -> Vec<u8> {
        let mut out = Vec::new();
        journal::encode_into(&mut out, &self.journal);
        out
    }

    fn drain_events(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        journal::encode_into(&mut out, &self.journal[self.drained..]);
        self.drained = self.journal.len();
        out
    }

    fn replay(&mut self, bytes: &[u8]) -> Result<(), SourceError> {
        for text in journal::decode(bytes)? {
            // Idempotent: texts already replayed (or live-mined) are
            // memo hits and do not re-journal.
            self.featurize(&text);
        }
        self.drained = self.journal.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureClass;

    fn miner() -> TemplateMiner {
        TemplateMiner::new(TemplateConfig::default())
    }

    fn template_text(branches: &[FeatureBranch]) -> String {
        branches[0]
            .features
            .iter()
            .find(|f| f.class == FeatureClass::Template)
            .map(|f| f.text.clone())
            .unwrap()
    }

    fn param_classes(branches: &[FeatureBranch]) -> Vec<String> {
        branches[0]
            .features
            .iter()
            .filter(|f| f.class == FeatureClass::Param)
            .map(|f| f.text.clone())
            .collect()
    }

    #[test]
    fn same_shape_shares_a_template() {
        let mut m = miner();
        let a = m.featurize("connection from 10.0.0.1 port 443 established");
        let b = m.featurize("connection from 10.0.0.2 port 8080 established");
        assert_eq!(template_text(&a), "connection from <*> port <*> established");
        assert_eq!(template_text(&a), template_text(&b));
        assert_eq!(m.template_count(), 1);
        assert_eq!(param_classes(&a), vec!["ip", "num"]);
    }

    #[test]
    fn wildcard_promotion_on_word_disagreement() {
        let mut m = miner();
        m.featurize("session opened for alice from 10.0.0.1");
        let b = m.featurize("session opened for bob from 10.0.0.2");
        // Promotion happens, but the creation-time text stays stable.
        assert_eq!(template_text(&b), "session opened for alice from <*>");
        assert_eq!(param_classes(&b), vec!["str", "ip"]);
        assert_eq!(m.template_count(), 1);
    }

    #[test]
    fn dissimilar_messages_get_distinct_templates() {
        let mut m = miner();
        m.featurize("cache hit ratio 0.93 over 1000 requests");
        m.featurize("disk write failed on /dev/sda1 retry 3");
        assert_eq!(m.template_count(), 2);
    }

    #[test]
    fn memo_pins_first_result() {
        let mut m = miner();
        let first = m.featurize("job 12 finished ok");
        m.featurize("job 13 crashed hard"); // promotes position 2 and 3
        let again = m.featurize("job 12 finished ok");
        assert_eq!(first, again, "memo must pin the first-sight result");
        assert_eq!(m.distinct_records(), 2);
    }

    #[test]
    fn bounded_children_fall_back_to_wildcard() {
        let cfg = TemplateConfig { max_children: 2, ..TemplateConfig::default() };
        let mut m = TemplateMiner::new(cfg);
        m.featurize("alpha start now please");
        m.featurize("beta start now please");
        // Third distinct head token: node is full, routes via <*>.
        let c = m.featurize("gamma start now please");
        assert!(!template_text(&c).is_empty());
        assert_eq!(m.distinct_records(), 3);
    }

    #[test]
    fn classify_buckets() {
        assert_eq!(classify("123"), Some("num"));
        assert_eq!(classify("-3.25"), Some("num"));
        assert_eq!(classify("2026-08-08"), Some("num"));
        assert_eq!(classify("10.0.0.1"), Some("ip"));
        assert_eq!(classify("/var/log/app.1.log"), Some("path"));
        assert_eq!(classify("0xdeadbeef"), Some("hex"));
        assert_eq!(classify("a1b2c3d4"), Some("hex"));
        assert_eq!(classify("123e4567-e89b-12d3-a456-426614174000"), Some("uuid"));
        assert_eq!(classify("req-42"), Some("id"));
        assert_eq!(classify("hello"), None);
        assert_eq!(classify("established"), None);
    }

    #[test]
    fn replay_reproduces_miner_exactly() {
        let corpus = [
            "connection from 10.0.0.1 port 443 established",
            "connection from 10.0.0.9 port 80 established",
            "user alice logged in from 10.0.0.1",
            "disk write failed on /dev/sda1 retry 3",
            "user bob logged in from 10.0.0.7",
            "job 991 finished in 125 ms",
        ];
        let mut live = miner();
        for line in corpus {
            live.featurize(line);
        }
        let mut restored = miner();
        restored.replay(&live.export_journal()).unwrap();
        assert_eq!(restored.template_texts(), live.template_texts());
        assert_eq!(restored.distinct_records(), live.distinct_records());
        for line in corpus {
            assert_eq!(restored.featurize(line), live.featurize(line));
        }
        // And new records featurize identically post-replay.
        let novel = "connection from 10.9.9.9 port 7777 established";
        assert_eq!(restored.featurize(novel), live.featurize(novel));
        assert_eq!(restored.export_journal(), live.export_journal());
    }

    #[test]
    fn drained_increments_concatenate_to_full_journal() {
        let mut m = miner();
        m.featurize("alpha beta 1");
        m.featurize("gamma delta 2");
        let inc1 = m.drain_events();
        m.featurize("alpha beta 1"); // memo hit: no new journal entry
        m.featurize("epsilon zeta 3");
        let inc2 = m.drain_events();
        assert!(m.drain_events().is_empty());
        let mut joined = inc1;
        joined.extend_from_slice(&inc2);
        assert_eq!(joined, m.export_journal());
        let mut restored = miner();
        restored.replay(&joined).unwrap();
        assert_eq!(restored.template_texts(), m.template_texts());
    }

    #[test]
    fn replay_is_idempotent() {
        let mut m = miner();
        m.featurize("service up on port 8080");
        let journal = m.export_journal();
        let mut restored = miner();
        restored.replay(&journal).unwrap();
        restored.replay(&journal).unwrap();
        assert_eq!(restored.distinct_records(), 1);
        assert_eq!(restored.export_journal(), journal);
    }

    #[test]
    fn corrupt_journal_is_a_typed_error() {
        let mut m = miner();
        assert!(matches!(m.replay(&[0xFF, 0xFF]), Err(SourceError::CorruptJournal { .. })));
    }

    #[test]
    fn empty_text_yields_no_branches() {
        let mut m = miner();
        assert!(m.featurize("").is_empty());
        assert!(m.featurize("   ").is_empty());
        assert_eq!(m.template_count(), 0);
    }
}
