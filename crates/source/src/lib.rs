//! Pluggable log sources for LogR.
//!
//! The paper's pipeline is *record → anonymized feature branches → bag of
//! feature vectors*. Only the first hop is SQL-specific; everything
//! downstream (windows, drift, clustering, spill, analytics) operates on
//! feature vectors. This crate makes that first hop a trait so the same
//! engine summarizes free-form service logs:
//!
//! * [`Featurizer`] — the record → feature-branch mapping, with journal
//!   hooks so an online miner's state rides the engine's manifest and
//!   delta log and recovery stays bit-identical;
//! * [`SqlFeaturizer`] — the original path (parse → anonymize →
//!   regularize → Aligon features), now one implementation among several;
//! * [`TemplateMiner`] — a Drain-style fixed-depth parse tree that mines
//!   message templates online and emits ⟨template, TEMPLATE⟩ plus
//!   ⟨class, PARAM⟩ features for each record;
//! * [`LogSource`] / [`Record`] — a pull interface for feeding records
//!   from memory (files are read through the engine's VFS by callers).
//!
//! # Determinism contract
//!
//! A [`Featurizer`] must be a pure function of *(replayed journal, input
//! text)*: after [`Featurizer::replay`] of an exported journal, every
//! already-seen text must featurize exactly as it did live, and every new
//! text must featurize as it would have on the uninterrupted run. The
//! [`TemplateMiner`] achieves this by journaling first-seen texts and
//! memoizing their full feature result; replay re-mines the journal
//! through the same code path instead of deserializing derived state.

pub mod config;
mod journal;
pub mod sql;
pub mod template;

use std::fmt;

use logr_feature::Feature;

pub use config::{SourceConfig, TemplateConfig};
pub use sql::SqlFeaturizer;
pub use template::TemplateMiner;

/// Error raised when persisted featurizer state cannot be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The journal bytes are structurally invalid (truncated frame,
    /// non-UTF-8 text) or belong to a different featurizer kind.
    CorruptJournal {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::CorruptJournal { detail } => {
                write!(f, "corrupt featurizer journal: {detail}")
            }
        }
    }
}

impl std::error::Error for SourceError {}

/// One featurization branch: the features of a single conjunctive branch
/// of a record. SQL statements may regularize into several branches
/// (UNION arms); mined service-log records always produce exactly one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureBranch {
    /// Features in extraction order (interning order matters: the stream
    /// layer interns them in sequence to reproduce historical codebooks).
    pub features: Vec<Feature>,
}

impl FeatureBranch {
    /// Construct a branch from features in extraction order.
    pub fn new(features: Vec<Feature>) -> Self {
        FeatureBranch { features }
    }
}

/// Record → anonymized feature branches, with journaled state.
///
/// Stateless implementations (SQL) export an empty journal. Stateful
/// miners journal whatever inputs are needed to reproduce their state by
/// replay — see the crate docs for the determinism contract.
pub trait Featurizer: fmt::Debug + Send {
    /// Short stable identifier ("sql", "template") stored in the manifest
    /// so resume can verify the configured source matches the state.
    fn kind(&self) -> &'static str;

    /// Featurize one raw record. Unparseable / empty records yield no
    /// branches (the stream layer counts them as parse failures).
    fn featurize(&mut self, text: &str) -> Vec<FeatureBranch>;

    /// Export the full journal: replaying these bytes into a fresh
    /// featurizer of the same kind reproduces `self` exactly.
    fn export_journal(&self) -> Vec<u8>;

    /// Drain the journal increment accrued since the previous drain (or
    /// construction). Concatenating every drained increment, in order,
    /// yields the full journal — this is what lets miner state ride the
    /// engine's delta log with O(window) appends.
    fn drain_events(&mut self) -> Vec<u8>;

    /// Replay journal bytes (a full journal or a concatenation of drained
    /// increments appended to the already-replayed prefix). Idempotent for
    /// texts already seen.
    fn replay(&mut self, bytes: &[u8]) -> Result<(), SourceError>;
}

/// A raw record pulled from a [`LogSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Raw record text (a SQL statement or a service-log line).
    pub text: String,
    /// Multiplicity (pre-aggregated sources may carry counts > 1).
    pub count: u64,
    /// Event timestamp in milliseconds, if the source has one.
    pub ts_ms: Option<u64>,
}

impl Record {
    /// A single occurrence with no timestamp.
    pub fn new(text: impl Into<String>) -> Self {
        Record { text: text.into(), count: 1, ts_ms: None }
    }

    /// Attach an event timestamp.
    pub fn at(mut self, ts_ms: u64) -> Self {
        self.ts_ms = Some(ts_ms);
        self
    }

    /// Set the multiplicity.
    pub fn times(mut self, count: u64) -> Self {
        self.count = count;
        self
    }
}

/// A pull source of raw records. Object-safe so ingestion loops can hold
/// heterogeneous sources behind `Box<dyn LogSource>`.
pub trait LogSource: fmt::Debug {
    /// Next record, or `None` when the source is exhausted.
    fn next_record(&mut self) -> Option<Record>;
}

/// In-memory [`LogSource`] over a vector of records.
#[derive(Debug, Clone, Default)]
pub struct VecSource {
    records: std::collections::VecDeque<Record>,
}

impl VecSource {
    /// Source over pre-built records.
    pub fn new(records: impl IntoIterator<Item = Record>) -> Self {
        VecSource { records: records.into_iter().collect() }
    }

    /// Source over the non-blank lines of a text blob (one record per
    /// line, count 1, no timestamp). Callers that want file-backed
    /// sources read the bytes through the engine's VFS and pass the text
    /// here — this crate never touches the filesystem.
    pub fn from_lines(text: &str) -> Self {
        VecSource {
            records: text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(Record::new)
                .collect(),
        }
    }

    /// Remaining record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records remain.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl LogSource for VecSource {
    fn next_record(&mut self) -> Option<Record> {
        self.records.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_yields_in_order() {
        let mut s = VecSource::new([Record::new("a"), Record::new("b").times(3).at(7)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.next_record().unwrap().text, "a");
        let b = s.next_record().unwrap();
        assert_eq!((b.text.as_str(), b.count, b.ts_ms), ("b", 3, Some(7)));
        assert!(s.next_record().is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn from_lines_skips_blanks() {
        let mut s = VecSource::from_lines("one\n\n  \ntwo  \n");
        assert_eq!(s.len(), 2);
        assert_eq!(s.next_record().unwrap().text, "one");
        assert_eq!(s.next_record().unwrap().text, "two");
    }

    #[test]
    fn source_error_displays_detail() {
        let e = SourceError::CorruptJournal { detail: "truncated frame".into() };
        assert!(e.to_string().contains("truncated frame"));
    }
}
