//! Source configuration: which featurizer a stream runs, and the template
//! miner's tuning knobs. Everything here is `Copy` so the engine's
//! `StreamConfig` stays `Copy` and manifests encode a fixed-size blob.

use crate::sql::SqlFeaturizer;
use crate::template::TemplateMiner;
use crate::Featurizer;

/// Tuning knobs for the Drain-style [`TemplateMiner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateConfig {
    /// Number of token-prefix levels in the parse tree below the length
    /// level. Deeper trees split leaf groups more aggressively.
    pub depth: usize,
    /// Maximum children per internal tree node; once full, unseen keys
    /// route to the `<*>` fallback child.
    pub max_children: usize,
    /// Similarity threshold in (0, 1]: a record joins the leaf template
    /// maximizing the fraction of exactly-equal tokens iff that fraction
    /// reaches this threshold; otherwise it seeds a new template.
    pub similarity: f64,
}

impl Default for TemplateConfig {
    fn default() -> Self {
        TemplateConfig { depth: 2, max_children: 16, similarity: 0.5 }
    }
}

impl TemplateConfig {
    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.depth == 0 {
            return Err("template source: depth must be at least 1");
        }
        if self.depth > 8 {
            return Err("template source: depth must be at most 8");
        }
        if self.max_children < 2 {
            return Err("template source: max_children must be at least 2");
        }
        if !(self.similarity > 0.0 && self.similarity <= 1.0) {
            return Err("template source: similarity must be in (0, 1]");
        }
        Ok(())
    }
}

/// Which featurizer a stream runs. Stored in the engine manifest; on
/// resume the stored configuration wins, so a summary built by the
/// template miner can never be reopened through the SQL path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SourceConfig {
    /// Parse → anonymize → regularize → Aligon features (the paper's
    /// pipeline; the default).
    #[default]
    Sql,
    /// Drain-style online template mining for free-form service logs.
    Template(TemplateConfig),
}

impl SourceConfig {
    /// Template source with default knobs.
    pub fn template() -> Self {
        SourceConfig::Template(TemplateConfig::default())
    }

    /// Stable identifier matching [`Featurizer::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            SourceConfig::Sql => "sql",
            SourceConfig::Template(_) => "template",
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            SourceConfig::Sql => Ok(()),
            SourceConfig::Template(t) => t.validate(),
        }
    }

    /// Build a fresh featurizer for this configuration.
    // lint:allow(typed-errors): `Box<dyn Featurizer>` is the pluggable-source trait object, not an error type
    pub fn featurizer(&self) -> Box<dyn Featurizer> {
        match self {
            SourceConfig::Sql => Box::new(SqlFeaturizer::default()),
            SourceConfig::Template(t) => Box::new(TemplateMiner::new(*t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(SourceConfig::default(), SourceConfig::Sql);
        assert!(SourceConfig::default().validate().is_ok());
        assert!(SourceConfig::template().validate().is_ok());
    }

    #[test]
    fn bad_knobs_rejected() {
        let bad = [
            TemplateConfig { depth: 0, ..TemplateConfig::default() },
            TemplateConfig { depth: 9, ..TemplateConfig::default() },
            TemplateConfig { max_children: 1, ..TemplateConfig::default() },
            TemplateConfig { similarity: 0.0, ..TemplateConfig::default() },
            TemplateConfig { similarity: 1.5, ..TemplateConfig::default() },
            TemplateConfig { similarity: f64::NAN, ..TemplateConfig::default() },
        ];
        for cfg in bad {
            assert!(SourceConfig::Template(cfg).validate().is_err(), "{cfg:?} must fail");
        }
    }

    #[test]
    fn kinds_match_featurizers() {
        for cfg in [SourceConfig::Sql, SourceConfig::template()] {
            assert_eq!(cfg.kind(), cfg.featurizer().kind());
        }
    }
}
