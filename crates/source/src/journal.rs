//! Length-prefixed UTF-8 journal codec.
//!
//! A journal is a flat sequence of frames, each `[u32 LE byte-length]`
//! followed by that many UTF-8 bytes. Concatenating two valid journals
//! yields a valid journal, which is what lets drained increments ride the
//! engine's delta log and replay by simple byte append.

use crate::SourceError;

/// Append `texts` to `out` as journal frames.
pub(crate) fn encode_into(out: &mut Vec<u8>, texts: &[String]) {
    for text in texts {
        let bytes = text.as_bytes();
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
}

/// Decode a journal back into its texts.
pub(crate) fn decode(bytes: &[u8]) -> Result<Vec<String>, SourceError> {
    let mut texts = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let Some(header) = bytes.get(at..at + 4) else {
            return Err(SourceError::CorruptJournal {
                detail: format!("truncated frame header at byte {at}"),
            });
        };
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(header);
        let len = u32::from_le_bytes(len_bytes) as usize;
        at += 4;
        let Some(body) = bytes.get(at..at + len) else {
            return Err(SourceError::CorruptJournal {
                detail: format!("frame at byte {} claims {len} bytes past end", at - 4),
            });
        };
        let text = std::str::from_utf8(body).map_err(|_| SourceError::CorruptJournal {
            detail: format!("frame at byte {} is not UTF-8", at - 4),
        })?;
        texts.push(text.to_string());
        at += len;
    }
    Ok(texts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(texts: &[String]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_into(&mut out, texts);
        out
    }

    #[test]
    fn round_trips() {
        let texts = vec!["".to_string(), "hello world".to_string(), "héllo ⟨x⟩".to_string()];
        assert_eq!(decode(&encode(&texts)).unwrap(), texts);
        assert_eq!(decode(&[]).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn concatenation_is_append() {
        let a = encode(&["one".to_string()]);
        let b = encode(&["two".to_string(), "three".to_string()]);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        assert_eq!(
            decode(&joined).unwrap(),
            vec!["one".to_string(), "two".to_string(), "three".to_string()]
        );
    }

    #[test]
    fn truncation_and_bad_utf8_are_typed_errors() {
        let full = encode(&["hello".to_string()]);
        for cut in 1..full.len() {
            assert!(decode(&full[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(decode(&bad), Err(SourceError::CorruptJournal { .. })));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.push(b'x');
        assert!(decode(&bad).is_err());
    }
}
