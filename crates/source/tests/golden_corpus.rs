//! Golden-corpus acceptance for the Drain-style template miner: a
//! checked-in 500-line synthetic service log must mine to a pinned
//! template set with pinned distinct-text counts, and journal replay of
//! the same corpus must reproduce the miner bit-for-bit.
//!
//! The corpus (`data/service_500.log`) is frozen; regenerating it would
//! invalidate the pins below on purpose — the point is that mining is
//! deterministic across releases.

use logr_source::{Featurizer, LogSource, SourceConfig, TemplateConfig, TemplateMiner, VecSource};

const CORPUS: &str = include_str!("data/service_500.log");

fn mine(corpus: &str) -> TemplateMiner {
    let mut miner = TemplateMiner::new(TemplateConfig::default());
    let mut source = VecSource::from_lines(corpus);
    while let Some(record) = source.next_record() {
        let branches = miner.featurize(&record.text);
        assert_eq!(branches.len(), 1, "service lines featurize to one branch: {}", record.text);
    }
    miner
}

/// The pinned golden result: (creation-time template text, distinct
/// texts matched), in mining order.
const GOLDEN: &[(&str, u64)] = &[
    ("cache: evicted <*> keys from shard <*>", 58),
    ("auth: user <*> failed password from <*>", 47),
    ("net: connection reset by <*>", 50),
    ("db: slow query <*> ms on shard <*>", 56),
    ("disk: wrote segment <*> in <*> ms", 44),
    ("http: GET <*> -> <*> in <*> ms", 58),
    ("job: backup <*> completed in <*> s", 49),
    ("gc: pause <*> ms heap <*> mb", 54),
    ("auth: user <*> logged in from <*>", 45),
    ("http: POST <*> -> <*> in <*> ms", 38),
];

#[test]
fn golden_corpus_mines_to_the_pinned_template_set() {
    let miner = mine(CORPUS);
    let stats: Vec<(String, u64)> =
        miner.template_stats().into_iter().map(|(t, n)| (t.to_owned(), n)).collect();
    let golden: Vec<(String, u64)> = GOLDEN.iter().map(|(t, n)| ((*t).to_owned(), *n)).collect();
    assert_eq!(stats, golden, "template set or counts drifted from the golden pin");
    assert_eq!(miner.distinct_records() as u64, GOLDEN.iter().map(|(_, n)| n).sum::<u64>());
}

#[test]
fn journal_replay_reproduces_the_golden_miner_exactly() {
    let mined = mine(CORPUS);
    let journal = mined.export_journal();

    let mut replayed = TemplateMiner::new(TemplateConfig::default());
    replayed.replay(&journal).expect("journal replays clean");
    assert_eq!(replayed.template_stats(), mined.template_stats());
    assert_eq!(replayed.export_journal(), journal, "replay must reproduce the journal bytes");

    // Replay is idempotent and increment concatenation equals the full
    // journal — the properties the delta log depends on.
    replayed.replay(&journal).expect("second replay is a no-op");
    assert_eq!(replayed.template_stats(), mined.template_stats());
}

#[test]
fn golden_corpus_features_flow_through_the_config_seam() {
    let mut featurizer = SourceConfig::template().featurizer();
    let mut source = VecSource::from_lines(CORPUS);
    let mut total = 0usize;
    while let Some(record) = source.next_record() {
        total += featurizer.featurize(&record.text).len();
    }
    assert_eq!(total, 500, "every line must featurize");
    assert_eq!(featurizer.kind(), "template");
}
