//! Property: the mined template set is invariant under the concrete
//! parameter values. A corpus whose lines keep their shapes but draw
//! fresh numbers, IPs, user ids, and paths every run must always mine to
//! the same creation-time template texts — parameters are what templates
//! abstract over, so no choice of parameter may split or merge one.

use logr_source::{Featurizer, TemplateConfig, TemplateMiner};
use proptest::prelude::*;

/// One line of every shape, with the parameter draws spliced in. The
/// shapes match `data/service_500.log`; the values never do.
fn corpus(params: &Params) -> Vec<String> {
    let Params { user, octet, item, ms, shard, heap, seg } = params;
    vec![
        format!("auth: user u{user} logged in from 10.0.{octet}.{octet}"),
        format!("auth: user u{user} failed password from 203.0.113.{octet}"),
        format!("http: GET /api/v1/items/{item} -> 200 in {ms} ms"),
        format!("http: POST /api/v1/orders -> 201 in {ms} ms"),
        format!("db: slow query {ms} ms on shard {shard}"),
        format!("cache: evicted {item} keys from shard {shard}"),
        format!("gc: pause {ms} ms heap {heap} mb"),
        format!("disk: wrote segment /var/data/seg-{seg}.db in {ms} ms"),
        format!("net: connection reset by 10.1.{octet}.{octet}"),
        format!("job: backup {item:08x}-{ms:04x}-{shard:04x}-{user:04x}-{heap:012x} completed in {ms} s"),
    ]
}

#[derive(Debug, Clone)]
struct Params {
    user: u32,
    octet: u8,
    item: u32,
    ms: u32,
    shard: u8,
    heap: u32,
    seg: u32,
}

fn arb_params() -> impl Strategy<Value = Params> {
    (any::<u32>(), any::<u8>(), any::<u32>(), 0u32..0xffff, any::<u8>(), any::<u32>(), any::<u32>())
        .prop_map(|(user, octet, item, ms, shard, heap, seg)| Params {
            user,
            octet,
            item,
            ms,
            shard,
            heap,
            seg,
        })
}

fn template_texts(lines: &[String]) -> Vec<String> {
    let mut miner = TemplateMiner::new(TemplateConfig::default());
    for line in lines {
        miner.featurize(line);
    }
    miner.template_texts().into_iter().map(str::to_owned).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn template_set_is_invariant_under_parameter_values(a in arb_params(), b in arb_params()) {
        let mined_a = template_texts(&corpus(&a));
        let mined_b = template_texts(&corpus(&b));
        prop_assert_eq!(&mined_a, &mined_b, "parameter draws must not change the template set");
        // And repeating every line many times changes nothing either —
        // multiplicity is frequency, not shape.
        let repeated: Vec<String> =
            corpus(&a).into_iter().flat_map(|l| std::iter::repeat_n(l, 3)).collect();
        prop_assert_eq!(&mined_a, &template_texts(&repeated));
    }

    #[test]
    fn journal_replay_is_deterministic_for_any_draw(p in arb_params()) {
        let lines = corpus(&p);
        let mut miner = TemplateMiner::new(TemplateConfig::default());
        for line in &lines {
            miner.featurize(line);
        }
        let mut replayed = TemplateMiner::new(TemplateConfig::default());
        replayed.replay(&miner.export_journal()).expect("journal replays clean");
        prop_assert_eq!(replayed.template_stats(), miner.template_stats());
    }
}
