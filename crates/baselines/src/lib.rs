//! Baseline pattern summarizers for LogR's evaluation (paper §7.2, §8).
//!
//! The paper compares naive mixture encodings against two state-of-the-art
//! pattern-based summarizers. Neither ships usable source (Laserlight lives
//! inside a patched PostgreSQL available on request; MTV is a research
//! binary), so both are **reimplemented from their papers**:
//!
//! * [`laserlight`] — El Gebaly et al., *Interpretable and Informative
//!   Explanations of Outcomes* (PVLDB 8(1), 2014): greedy explanation
//!   tables over binary-augmented data, max-ent estimates by iterative
//!   scaling, candidate sampling with the paper's default sample size (16);
//! * [`mtv`] — Mampaey et al., *Summarizing Data Succinctly with the Most
//!   Informative Itemsets* (TKDD 6(4), 2012): BIC-scored greedy itemset
//!   selection over an exact max-ent model (via LogR's pattern-equivalence
//!   class systems), with the original's practical cap of 15 itemsets;
//! * [`mixtures`] — the LogR paper's §8.1.3 generalizations: run either
//!   summarizer per cluster (**Mixture Fixed**: a global pattern budget
//!   split by the Appendix D.3 weights; **Mixture Scaled**: one pattern per
//!   naive-encoding feature), combining errors per §5.2.

pub mod laserlight;
pub mod mixtures;
pub mod mtv;

pub use laserlight::{laserlight_error_of_naive, Laserlight, LaserlightConfig, LaserlightSummary};
pub use mixtures::{
    laserlight_mixture_fixed, laserlight_mixture_scaled, mixture_weights_d3, mtv_mixture_fixed,
    mtv_mixture_scaled, MixtureRun,
};
pub use mtv::{mtv_error_of_naive, Mtv, MtvConfig, MtvSummary};
