//! MTV: most informative itemsets (Mampaey, Vreeken, Tatti — TKDD 2012;
//! reimplemented for the LogR evaluation).
//!
//! MTV summarizes binary transaction data with a small itemset collection
//! `C`, scored by BIC: the negative log-likelihood of the data under the
//! max-ent model constrained by the itemsets' frequencies, plus a
//! `|C|/2 · ln|D|` verbosity penalty. For moment-matched max-ent models the
//! log-likelihood is `−|D| · H(model)`, so the error we report is
//!
//! ```text
//! MTV error = |D| · H(ρ̂) + ½ · |C| · ln |D|
//! ```
//!
//! (the LogR paper's §8.1.1 formula, written with the entropy-sign
//! convention that makes the measure decrease as the model improves).
//!
//! Max-ent inference runs on LogR's pattern-equivalence class systems,
//! decomposed by connected components — which also reproduces the
//! original's practical limitation: inference cost explodes with
//! overlapping itemsets, and the original binary *quits with an error above
//! 15 patterns* (LogR §7.2.2). We enforce the same cap.

#[cfg(test)]
use logr_core::maxent::GeneralEncoding;
use logr_core::maxent::{ClassSystem, MaxEntError};
use logr_feature::{FeatureId, LabeledDataset, QueryVector};
use logr_math::binary_entropy;
use std::collections::HashMap;
use std::fmt;

/// The original implementation's pattern cap (LogR §7.2.2).
pub const MTV_PATTERN_CAP: usize = 15;

/// MTV failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum MtvError {
    /// Asked for more patterns than the (replicated) cap — the original
    /// "quits with error message if requested to mine over 15 patterns".
    TooManyPatterns {
        /// Requested count.
        requested: usize,
    },
    /// Max-ent inference failed.
    Inference(MaxEntError),
}

impl fmt::Display for MtvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtvError::TooManyPatterns { requested } => write!(
                f,
                "MTV: refusing to mine {requested} patterns (cap {MTV_PATTERN_CAP}, \
                 max-ent inference becomes intractable)"
            ),
            MtvError::Inference(e) => write!(f, "MTV: max-ent inference failed: {e}"),
        }
    }
}

impl std::error::Error for MtvError {}

impl From<MaxEntError> for MtvError {
    fn from(e: MaxEntError) -> Self {
        MtvError::Inference(e)
    }
}

/// MTV configuration.
#[derive(Debug, Clone, Copy)]
pub struct MtvConfig {
    /// Itemsets to mine (must be ≤ [`MTV_PATTERN_CAP`]).
    pub n_patterns: usize,
    /// Minimum support threshold for candidates (LogR §D.2 uses 0.05).
    pub min_support: f64,
    /// Maximum itemset size.
    pub max_itemset_size: usize,
    /// Candidates evaluated per greedy step (support-ranked).
    pub candidate_limit: usize,
}

impl MtvConfig {
    /// Defaults matching the LogR paper's experiment settings.
    pub fn new(n_patterns: usize) -> Self {
        MtvConfig { n_patterns, min_support: 0.05, max_itemset_size: 3, candidate_limit: 150 }
    }
}

/// A mined MTV summary.
#[derive(Debug, Clone)]
pub struct MtvSummary {
    /// Selected itemsets with their supports, in selection order.
    pub itemsets: Vec<(QueryVector, f64)>,
    /// Final MTV error (BIC).
    pub error: f64,
    /// Model entropy (nats) of the final max-ent model.
    pub model_entropy: f64,
    /// BIC after each greedy step (index 0 = empty collection).
    pub error_trajectory: Vec<f64>,
}

/// The MTV miner.
pub struct Mtv {
    config: MtvConfig,
}

impl Mtv {
    /// Miner with the given configuration.
    pub fn new(config: MtvConfig) -> Self {
        Mtv { config }
    }

    /// Mine the most informative itemsets of the dataset (labels ignored —
    /// MTV summarizes the transactions themselves).
    pub fn summarize(&self, data: &LabeledDataset) -> Result<MtvSummary, MtvError> {
        if self.config.n_patterns > MTV_PATTERN_CAP {
            return Err(MtvError::TooManyPatterns { requested: self.config.n_patterns });
        }
        let total = data.total();
        if total == 0 {
            return Ok(MtvSummary {
                itemsets: Vec::new(),
                error: 0.0,
                model_entropy: 0.0,
                error_trajectory: vec![0.0],
            });
        }
        let n = total as f64;
        let nf = data.n_features();
        let penalty_per_pattern = 0.5 * n.ln();

        let candidates = self.mine_candidates(data);
        let mut selected: Vec<QueryVector> = Vec::new();
        // Connected components of the selected itemsets, kept incrementally:
        // evaluating a candidate only re-solves the (small) component it
        // touches — the same locality the class-system decomposition gives —
        // instead of the whole model.
        let mut components: Vec<MtvComponent> = Vec::new();
        let mut current_entropy = nf as f64 * std::f64::consts::LN_2; // uniform model
        let mut error_trajectory = vec![n * current_entropy];

        // Inference blow-up guard: a candidate that would chain overlapping
        // itemsets into a component larger than this is skipped — the same
        // practical limit that makes the original refuse large collections.
        const MAX_COMPONENT: usize = 8;

        // Lazy-greedy caching: a candidate's entropy delta depends only on
        // the components it bridges, so it stays valid until a selection
        // merges a component sharing features with it. `None` = needs
        // (re)evaluation; `Some(f64::INFINITY)` = permanently skipped.
        let mut deltas: Vec<Option<f64>> = vec![None; candidates.len()];

        while selected.len() < self.config.n_patterns {
            for (ci, cand) in candidates.iter().enumerate() {
                if deltas[ci].is_some() {
                    continue;
                }
                if selected.contains(cand) {
                    deltas[ci] = Some(f64::INFINITY);
                    continue;
                }
                deltas[ci] = Some(
                    evaluate_candidate(data, cand, &components, MAX_COMPONENT)
                        .unwrap_or(f64::INFINITY),
                );
            }
            let Some((best_ci, best_delta)) = deltas
                .iter()
                .enumerate()
                .filter_map(|(i, d)| d.map(|v| (i, v)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
            else {
                break;
            };
            // BIC gain: likelihood improvement minus the verbosity penalty.
            let gain = -n * best_delta - penalty_per_pattern;
            if !gain.is_finite() || gain <= 0.0 {
                break;
            }
            let winner = candidates[best_ci].clone();
            // Re-solve the winner's merge to update the component list.
            let bridged = bridged_components(&winner, &components);
            let mut merged_patterns: Vec<QueryVector> =
                bridged.iter().flat_map(|&i| components[i].patterns.iter().cloned()).collect();
            merged_patterns.push(winner.clone());
            let Ok(merged) = MtvComponent::solve(data, merged_patterns) else { break };

            selected.push(winner);
            let mut keep = Vec::with_capacity(components.len());
            for (i, comp) in components.drain(..).enumerate() {
                if !bridged.contains(&i) {
                    keep.push(comp);
                }
            }
            // Invalidate candidates touching the merged component's span.
            let merged_span: QueryVector =
                merged.patterns.iter().fold(QueryVector::empty(), |acc, p| acc.union(p));
            for (ci, cand) in candidates.iter().enumerate() {
                if cand.intersection_size(&merged_span) > 0 {
                    deltas[ci] = None;
                }
            }
            deltas[best_ci] = Some(f64::INFINITY);
            keep.push(merged);
            components = keep;
            current_entropy += best_delta;
            error_trajectory
                .push(n * current_entropy + penalty_per_pattern * selected.len() as f64);
        }

        let itemsets = selected.iter().map(|p| (p.clone(), data.support(p) as f64 / n)).collect();
        Ok(MtvSummary {
            itemsets,
            error: n * current_entropy + penalty_per_pattern * selected.len() as f64,
            model_entropy: current_entropy,
            error_trajectory,
        })
    }

    /// Frequent itemsets (pairs, extended to requested size) above the
    /// support threshold, most frequent first.
    fn mine_candidates(&self, data: &LabeledDataset) -> Vec<QueryVector> {
        let total = data.total() as f64;
        let min_count = (self.config.min_support * total).ceil() as u64;
        let mut pair_support: HashMap<(FeatureId, FeatureId), u64> = HashMap::new();
        for r in data.rows() {
            let ids = r.vector.ids();
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    *pair_support.entry((a, b)).or_insert(0) += r.weight;
                }
            }
        }
        let mut pairs: Vec<((FeatureId, FeatureId), u64)> =
            pair_support.into_iter().filter(|&(_, c)| c >= min_count).collect();
        pairs.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        pairs.truncate(self.config.candidate_limit);

        let mut out: Vec<QueryVector> =
            pairs.iter().map(|&((a, b), _)| QueryVector::new(vec![a, b])).collect();

        if self.config.max_itemset_size >= 3 {
            let mut seen: HashMap<QueryVector, ()> = HashMap::new();
            for &((a, b), _) in pairs.iter().take(32) {
                let base = QueryVector::new(vec![a, b]);
                let mut ext: HashMap<FeatureId, u64> = HashMap::new();
                for r in data.rows() {
                    if r.vector.contains_all(&base) {
                        for f in r.vector.iter() {
                            if f != a && f != b {
                                *ext.entry(f).or_insert(0) += r.weight;
                            }
                        }
                    }
                }
                let mut exts: Vec<(FeatureId, u64)> =
                    ext.into_iter().filter(|&(_, c)| c >= min_count).collect();
                exts.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
                for (f, _) in exts.into_iter().take(3) {
                    let t = QueryVector::new(vec![a, b, f]);
                    if seen.insert(t.clone(), ()).is_none() {
                        out.push(t);
                    }
                }
            }
        }
        out.truncate(self.config.candidate_limit);
        out
    }
}

/// One solved connected component of the model's itemsets.
struct MtvComponent {
    patterns: Vec<QueryVector>,
    /// Entropy over the component's own projected space, nats.
    entropy_proj: f64,
    /// Features the component covers.
    covered: usize,
}

impl MtvComponent {
    fn solve(data: &LabeledDataset, patterns: Vec<QueryVector>) -> Result<Self, MaxEntError> {
        let total = data.total().max(1) as f64;
        let targets: Vec<f64> = patterns.iter().map(|p| data.support(p) as f64 / total).collect();
        let cs = ClassSystem::build(&patterns)?;
        let q = cs.maxent(&targets)?;
        let entropy_proj = cs.entropy(&q, cs.n_projected());
        Ok(MtvComponent { patterns, entropy_proj, covered: cs.n_projected() })
    }
}

/// Indices of components sharing features with the candidate.
fn bridged_components(cand: &QueryVector, components: &[MtvComponent]) -> Vec<usize> {
    components
        .iter()
        .enumerate()
        .filter(|(_, comp)| comp.patterns.iter().any(|p| p.intersection_size(cand) > 0))
        .map(|(i, _)| i)
        .collect()
}

/// Entropy delta of adding `cand`: swap its bridged components for the
/// merged solve, adjusting uniform padding for newly covered features.
/// `None` when the merge would exceed the component cap or inference fails.
fn evaluate_candidate(
    data: &LabeledDataset,
    cand: &QueryVector,
    components: &[MtvComponent],
    max_component: usize,
) -> Option<f64> {
    let bridged = bridged_components(cand, components);
    let merged_count = 1 + bridged.iter().map(|&i| components[i].patterns.len()).sum::<usize>();
    if merged_count > max_component {
        return None;
    }
    let mut merged_patterns: Vec<QueryVector> =
        bridged.iter().flat_map(|&i| components[i].patterns.iter().cloned()).collect();
    merged_patterns.push(cand.clone());
    let merged = MtvComponent::solve(data, merged_patterns).ok()?;
    let old_proj: f64 = bridged.iter().map(|&i| components[i].entropy_proj).sum();
    let old_covered: usize = bridged.iter().map(|&i| components[i].covered).sum();
    Some(
        merged.entropy_proj
            - old_proj
            - (merged.covered - old_covered) as f64 * std::f64::consts::LN_2,
    )
}

/// Entropy of the max-ent model constrained by the itemsets' supports, over
/// a `universe_size`-feature space (uniform on unconstrained features).
/// Used by tests as the non-incremental reference.
#[cfg(test)]
fn model_entropy(
    data: &LabeledDataset,
    itemsets: &[QueryVector],
    universe_size: usize,
) -> Result<f64, MaxEntError> {
    let total = data.total().max(1) as f64;
    let targets: Vec<f64> = itemsets.iter().map(|p| data.support(p) as f64 / total).collect();
    GeneralEncoding::new(itemsets.to_vec(), targets, universe_size).entropy()
}

/// MTV error of the *naive encoding* (LogR §8.1.1): model entropy is the
/// sum of feature entropies; verbosity is the number of supported features.
pub fn mtv_error_of_naive(data: &LabeledDataset) -> f64 {
    let n = data.total() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let marginals = data.marginals();
    let h: f64 = marginals.iter().map(|&p| binary_entropy(p)).sum();
    let verbosity = marginals.iter().filter(|&&p| p > 0.0).count();
    n * h + 0.5 * verbosity as f64 * n.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    /// Features 0,1 perfectly correlated; 2,3 noise.
    fn correlated_data() -> LabeledDataset {
        let mut d = LabeledDataset::new(4);
        d.push(qv(&[0, 1, 2]), true, 25);
        d.push(qv(&[0, 1]), false, 25);
        d.push(qv(&[2]), true, 25);
        d.push(qv(&[3]), false, 25);
        d
    }

    #[test]
    fn cap_replicates_original_behavior() {
        let d = correlated_data();
        let result = Mtv::new(MtvConfig::new(16)).summarize(&d);
        assert!(matches!(result, Err(MtvError::TooManyPatterns { requested: 16 })));
    }

    #[test]
    fn finds_the_correlated_itemset() {
        let d = correlated_data();
        let s = Mtv::new(MtvConfig::new(5)).summarize(&d).unwrap();
        assert!(!s.itemsets.is_empty());
        assert!(
            s.itemsets.iter().any(|(p, _)| p.contains_all(&qv(&[0, 1]))),
            "itemsets: {:?}",
            s.itemsets
        );
    }

    #[test]
    fn error_trajectory_nonincreasing_in_likelihood_terms() {
        let d = correlated_data();
        let s = Mtv::new(MtvConfig::new(5)).summarize(&d).unwrap();
        // BIC can tick up with the penalty, but the greedy only accepts
        // positive-gain steps, so the trajectory decreases.
        for w in s.error_trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "{:?}", s.error_trajectory);
        }
    }

    #[test]
    fn more_itemsets_reduce_model_entropy() {
        let d = correlated_data();
        let s1 = Mtv::new(MtvConfig::new(1)).summarize(&d).unwrap();
        let s4 = Mtv::new(MtvConfig::new(4)).summarize(&d).unwrap();
        assert!(s4.model_entropy <= s1.model_entropy + 1e-9);
    }

    #[test]
    fn naive_error_formula() {
        let mut d = LabeledDataset::new(2);
        d.push(qv(&[0]), true, 2);
        d.push(qv(&[1]), false, 2);
        // marginals (0.5, 0.5): H = 2·ln2; verbosity 2.
        let e = mtv_error_of_naive(&d);
        let expect = 4.0 * 2.0 * std::f64::consts::LN_2 + 0.5 * 2.0 * 4.0f64.ln();
        assert!((e - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_is_zero() {
        let d = LabeledDataset::new(4);
        let s = Mtv::new(MtvConfig::new(3)).summarize(&d).unwrap();
        assert_eq!(s.error, 0.0);
        assert_eq!(mtv_error_of_naive(&d), 0.0);
    }

    #[test]
    fn min_support_filters_candidates() {
        let mut d = LabeledDataset::new(4);
        d.push(qv(&[0, 1]), true, 99);
        d.push(qv(&[2, 3]), true, 1); // support 1% < 5% threshold
        let config = MtvConfig { min_support: 0.05, ..MtvConfig::new(5) };
        let s = Mtv::new(config).summarize(&d).unwrap();
        assert!(
            s.itemsets.iter().all(|(p, _)| !p.contains_all(&qv(&[2, 3]))),
            "rare itemset selected: {:?}",
            s.itemsets
        );
    }

    #[test]
    fn deterministic() {
        let d = correlated_data();
        let a = Mtv::new(MtvConfig::new(3)).summarize(&d).unwrap();
        let b = Mtv::new(MtvConfig::new(3)).summarize(&d).unwrap();
        assert_eq!(a.error, b.error);
    }

    #[test]
    fn incremental_entropy_matches_full_reference() {
        // The component-local greedy bookkeeping must agree with solving
        // the whole model from scratch on the final itemset collection.
        let d = correlated_data();
        let s = Mtv::new(MtvConfig::new(5)).summarize(&d).unwrap();
        let itemsets: Vec<QueryVector> = s.itemsets.iter().map(|(p, _)| p.clone()).collect();
        if !itemsets.is_empty() {
            let reference = model_entropy(&d, &itemsets, d.n_features()).unwrap();
            assert!(
                (s.model_entropy - reference).abs() < 1e-6,
                "incremental {} vs reference {reference}",
                s.model_entropy
            );
        }
    }
}
