//! Mixture generalizations of Laserlight and MTV (paper §8.1.3).
//!
//! The LogR paper generalizes both baselines to partitioned data: cluster
//! the rows, run the summarizer per cluster, and combine errors per §5.2.
//! Two pattern-budget regimes:
//!
//! * **Mixture Fixed** — a global pattern budget split across clusters with
//!   the Appendix D.3 weights `wᵢ ∝ (mᵢ/nᵢ)·e(E_Lᵢ)` (distinct rows ×
//!   naive reproduction error, normalized by the cluster's feature count) —
//!   comparable to the classical algorithms;
//! * **Mixture Scaled** — each cluster gets one pattern per feature of its
//!   naive encoding (so total verbosity matches the naive mixture
//!   encoding) — comparable to LogR's naive mixtures. MTV's replicated
//!   15-pattern cap clamps its per-cluster budget, mirroring §8.1.4's
//!   "not strictly on equal footing" caveat.
//!
//! Both combined-error conventions are reported: the additive total
//! (`Σᵢ errᵢ`, the true mixture-model loss) and the §5.2 literal weighted
//! average (`Σᵢ (|Dᵢ|/|D|)·errᵢ`).

use crate::laserlight::{Laserlight, LaserlightConfig};
use crate::mtv::{Mtv, MtvConfig, MtvError, MTV_PATTERN_CAP};
use logr_cluster::{kmeans_binary, Clustering, KMeansConfig};
use logr_core::error::naive_error;
use logr_feature::{LabeledDataset, QueryVector};

/// Result of a per-cluster baseline run.
#[derive(Debug, Clone)]
pub struct MixtureRun {
    /// Number of non-empty clusters.
    pub k: usize,
    /// Patterns mined per cluster.
    pub patterns_per_cluster: Vec<usize>,
    /// Per-cluster errors (each summarizer's own measure).
    pub cluster_errors: Vec<f64>,
    /// Row count per cluster.
    pub cluster_totals: Vec<u64>,
    /// `Σᵢ errᵢ` — the mixture model's total loss.
    pub combined_sum: f64,
    /// `Σᵢ (|Dᵢ|/|D|)·errᵢ` — the §5.2 weighted average.
    pub combined_weighted: f64,
}

impl MixtureRun {
    fn from_parts(errors: Vec<f64>, totals: Vec<u64>, patterns: Vec<usize>) -> Self {
        let grand: u64 = totals.iter().sum();
        let combined_sum = errors.iter().sum();
        let combined_weighted = if grand == 0 {
            0.0
        } else {
            errors.iter().zip(&totals).map(|(e, &t)| e * t as f64 / grand as f64).sum()
        };
        MixtureRun {
            k: errors.len(),
            patterns_per_cluster: patterns,
            cluster_errors: errors,
            cluster_totals: totals,
            combined_sum,
            combined_weighted,
        }
    }
}

/// Cluster a labeled dataset's rows (labels excluded from the distance) with
/// weighted k-means.
pub fn cluster_dataset(data: &LabeledDataset, k: usize, seed: u64) -> Clustering {
    if data.distinct() == 0 {
        return Clustering::new(1, Vec::new());
    }
    if k <= 1 || data.distinct() == 1 {
        return Clustering::trivial(data.distinct());
    }
    let points: Vec<&QueryVector> = data.rows().iter().map(|r| &r.vector).collect();
    let weights: Vec<f64> = data.rows().iter().map(|r| r.weight as f64).collect();
    kmeans_binary(&points, &weights, data.n_features(), KMeansConfig::new(k, seed)).0
}

/// Appendix D.3 pattern-budget weights: `wᵢ ∝ (mᵢ/nᵢ)·e(E_Lᵢ)`, normalized.
///
/// `mᵢ` = distinct rows, `nᵢ` = features occurring in the cluster,
/// `e(E_Lᵢ)` = the cluster's naive-encoding Reproduction Error. Degenerate
/// all-zero weights fall back to uniform.
pub fn mixture_weights_d3(data: &LabeledDataset, clustering: &Clustering) -> Vec<f64> {
    let groups: Vec<Vec<usize>> =
        clustering.members().into_iter().filter(|g| !g.is_empty()).collect();
    let mut weights = Vec::with_capacity(groups.len());
    for group in &groups {
        let cluster = data.subset(group);
        let log = cluster.to_query_log();
        let m = cluster.distinct() as f64;
        let n = cluster.marginals().iter().filter(|&&p| p > 0.0).count().max(1) as f64;
        let e = naive_error(&log);
        weights.push((m / n) * e);
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        let uniform = 1.0 / weights.len().max(1) as f64;
        weights.iter_mut().for_each(|w| *w = uniform);
    } else {
        weights.iter_mut().for_each(|w| *w /= total);
    }
    weights
}

/// Split an integer budget by weights, at least one pattern per cluster.
fn split_budget(total: usize, weights: &[f64]) -> Vec<usize> {
    let k = weights.len();
    if k == 0 {
        return Vec::new();
    }
    let mut out: Vec<usize> =
        weights.iter().map(|w| ((total as f64) * w).floor() as usize).collect();
    // Distribute the remainder to the heaviest clusters; floor ≥ 1 each.
    let mut assigned: usize = out.iter().sum();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
    let mut idx = 0;
    while assigned < total {
        out[order[idx % k]] += 1;
        assigned += 1;
        idx += 1;
    }
    for o in &mut out {
        if *o == 0 {
            *o = 1;
        }
    }
    out
}

/// Laserlight **Mixture Fixed**: a global pattern budget split by the D.3
/// weights (paper Fig. 8).
pub fn laserlight_mixture_fixed(
    data: &LabeledDataset,
    k: usize,
    total_patterns: usize,
    seed: u64,
) -> MixtureRun {
    let clustering = cluster_dataset(data, k, seed);
    let weights = mixture_weights_d3(data, &clustering);
    let budgets = split_budget(total_patterns, &weights);
    run_laserlight_per_cluster(data, &clustering, &budgets, seed)
}

/// Laserlight **Mixture Scaled**: per-cluster budget = the cluster's naive
/// verbosity (paper Fig. 9a).
pub fn laserlight_mixture_scaled(data: &LabeledDataset, k: usize, seed: u64) -> MixtureRun {
    let clustering = cluster_dataset(data, k, seed);
    let budgets = naive_verbosities(data, &clustering);
    run_laserlight_per_cluster(data, &clustering, &budgets, seed)
}

/// MTV **Mixture Fixed** (paper's omitted-but-analogous Fig. 8 variant).
pub fn mtv_mixture_fixed(
    data: &LabeledDataset,
    k: usize,
    total_patterns: usize,
    seed: u64,
) -> Result<MixtureRun, MtvError> {
    let clustering = cluster_dataset(data, k, seed);
    let weights = mixture_weights_d3(data, &clustering);
    let budgets: Vec<usize> = split_budget(total_patterns, &weights)
        .into_iter()
        .map(|b| b.min(MTV_PATTERN_CAP))
        .collect();
    run_mtv_per_cluster(data, &clustering, &budgets)
}

/// MTV **Mixture Scaled**, clamped to the 15-pattern cap (paper Fig. 9b and
/// the §8.1.4 equal-footing caveat).
pub fn mtv_mixture_scaled(
    data: &LabeledDataset,
    k: usize,
    seed: u64,
) -> Result<MixtureRun, MtvError> {
    let clustering = cluster_dataset(data, k, seed);
    let budgets: Vec<usize> =
        naive_verbosities(data, &clustering).into_iter().map(|b| b.min(MTV_PATTERN_CAP)).collect();
    run_mtv_per_cluster(data, &clustering, &budgets)
}

/// Per-cluster naive-encoding verbosity (# features occurring).
fn naive_verbosities(data: &LabeledDataset, clustering: &Clustering) -> Vec<usize> {
    clustering
        .members()
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| data.subset(&g).marginals().iter().filter(|&&p| p > 0.0).count().max(1))
        .collect()
}

fn run_laserlight_per_cluster(
    data: &LabeledDataset,
    clustering: &Clustering,
    budgets: &[usize],
    seed: u64,
) -> MixtureRun {
    let groups: Vec<Vec<usize>> =
        clustering.members().into_iter().filter(|g| !g.is_empty()).collect();
    let mut errors = Vec::with_capacity(groups.len());
    let mut totals = Vec::with_capacity(groups.len());
    let mut patterns = Vec::with_capacity(groups.len());
    for (ci, group) in groups.iter().enumerate() {
        let cluster = data.subset(group);
        let budget = budgets.get(ci).copied().unwrap_or(1);
        let summary =
            Laserlight::new(LaserlightConfig::new(budget, seed ^ ci as u64)).summarize(&cluster);
        errors.push(summary.error);
        totals.push(cluster.total());
        patterns.push(summary.patterns.len());
    }
    MixtureRun::from_parts(errors, totals, patterns)
}

fn run_mtv_per_cluster(
    data: &LabeledDataset,
    clustering: &Clustering,
    budgets: &[usize],
) -> Result<MixtureRun, MtvError> {
    let groups: Vec<Vec<usize>> =
        clustering.members().into_iter().filter(|g| !g.is_empty()).collect();
    let mut errors = Vec::with_capacity(groups.len());
    let mut totals = Vec::with_capacity(groups.len());
    let mut patterns = Vec::with_capacity(groups.len());
    for (ci, group) in groups.iter().enumerate() {
        let cluster = data.subset(group);
        let budget = budgets.get(ci).copied().unwrap_or(1).min(MTV_PATTERN_CAP);
        let summary = Mtv::new(MtvConfig::new(budget)).summarize(&cluster)?;
        errors.push(summary.error);
        totals.push(cluster.total());
        patterns.push(summary.itemsets.len());
    }
    Ok(MixtureRun::from_parts(errors, totals, patterns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    /// Two feature-disjoint sub-populations with their own label rules.
    fn two_population_data() -> LabeledDataset {
        let mut d = LabeledDataset::new(8);
        d.push(qv(&[0, 1]), true, 20);
        d.push(qv(&[0, 2]), true, 20);
        d.push(qv(&[1, 2]), false, 20);
        d.push(qv(&[4, 5]), false, 20);
        d.push(qv(&[4, 6]), false, 20);
        d.push(qv(&[5, 6]), true, 20);
        d
    }

    #[test]
    fn d3_weights_normalized() {
        let d = two_population_data();
        let clustering = cluster_dataset(&d, 2, 3);
        let w = mixture_weights_d3(&d, &clustering);
        assert_eq!(w.len(), 2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn split_budget_reaches_total_and_floors() {
        let b = split_budget(10, &[0.8, 0.1, 0.1]);
        assert_eq!(b.len(), 3);
        assert!(b.iter().sum::<usize>() >= 10);
        assert!(b.iter().all(|&x| x >= 1));
        assert!(b[0] >= b[1]);
    }

    #[test]
    fn laserlight_fixed_improves_with_clusters() {
        let d = two_population_data();
        let k1 = laserlight_mixture_fixed(&d, 1, 6, 5);
        let k2 = laserlight_mixture_fixed(&d, 2, 6, 5);
        // Fig. 8a shape: partitioned runs do at least as well.
        assert!(
            k2.combined_sum <= k1.combined_sum + 1e-6,
            "k2 {} vs k1 {}",
            k2.combined_sum,
            k1.combined_sum
        );
        assert_eq!(k1.k, 1);
        assert_eq!(k2.k, 2);
    }

    #[test]
    fn laserlight_scaled_budgets_match_verbosity() {
        let d = two_population_data();
        let clustering = cluster_dataset(&d, 2, 5);
        let verbosities = naive_verbosities(&d, &clustering);
        let run = laserlight_mixture_scaled(&d, 2, 5);
        assert_eq!(run.patterns_per_cluster.len(), verbosities.len());
        for (mined, &budget) in run.patterns_per_cluster.iter().zip(&verbosities) {
            assert!(*mined <= budget, "mined {mined} over budget {budget}");
        }
    }

    #[test]
    fn mtv_scaled_respects_cap() {
        let d = two_population_data();
        let run = mtv_mixture_scaled(&d, 2, 5).unwrap();
        assert!(run.patterns_per_cluster.iter().all(|&p| p <= MTV_PATTERN_CAP));
        assert_eq!(run.k, 2);
    }

    #[test]
    fn mtv_fixed_runs_and_combines() {
        let d = two_population_data();
        let run = mtv_mixture_fixed(&d, 2, 8, 5).unwrap();
        assert_eq!(run.cluster_errors.len(), run.k);
        assert!(run.combined_sum > 0.0);
        assert!(run.combined_weighted <= run.combined_sum + 1e-9);
    }

    #[test]
    fn weighted_error_at_k1_equals_total() {
        let d = two_population_data();
        let run = laserlight_mixture_fixed(&d, 1, 4, 2);
        assert!((run.combined_weighted - run.combined_sum).abs() < 1e-9);
    }

    #[test]
    fn cluster_totals_partition_the_data() {
        let d = two_population_data();
        let run = laserlight_mixture_fixed(&d, 3, 6, 1);
        assert_eq!(run.cluster_totals.iter().sum::<u64>(), d.total());
    }
}
