//! Laserlight: greedy informative explanation tables
//! (El Gebaly et al., PVLDB 2014; reimplemented for the LogR evaluation).
//!
//! Input: binary feature vectors `t` augmented with a binary outcome
//! `v(t)`. Output: a list of patterns whose max-ent label estimates
//! `u_E(t)` best predict the outcome. The LogR paper evaluates it with the
//! log-loss measure (§8.1.1):
//!
//! ```text
//! Σ_t  v(t)·ln(v(t)/u_E(t)) + (1 − v(t))·ln((1 − v(t))/(1 − u_E(t)))
//! ```
//!
//! which for 0/1 labels is `−ln u_E(t)` on positive rows and
//! `−ln(1 − u_E(t))` on negative rows.
//!
//! The estimate model is the max-ent / logistic log-linear form
//! `u(t) = σ(Σ_{p ∋ t} λ_p)` fitted by cyclic iterative scaling: each
//! pattern's λ is adjusted so the model's average estimate over matching
//! rows equals the observed label rate — the same inference the original
//! describes. Candidate patterns are sampled per the original's heuristic
//! (default sample size 16, Appendix D.1 of the LogR paper): random rows
//! generalized by intersecting with other random rows.

use logr_feature::{LabeledDataset, QueryVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Laserlight configuration.
#[derive(Debug, Clone, Copy)]
pub struct LaserlightConfig {
    /// Number of patterns to mine.
    pub n_patterns: usize,
    /// Candidate sample size per greedy step (paper default: 16).
    pub sample_size: usize,
    /// Iterative-scaling sweeps per refit.
    pub fit_sweeps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LaserlightConfig {
    /// Default configuration with the paper's sample size.
    pub fn new(n_patterns: usize, seed: u64) -> Self {
        LaserlightConfig { n_patterns, sample_size: 16, fit_sweeps: 40, seed }
    }
}

/// A mined summary: patterns with their observed label rates, and the
/// fitted per-row estimates.
#[derive(Debug, Clone)]
pub struct LaserlightSummary {
    /// Mined patterns with observed label rates, in selection order.
    pub patterns: Vec<(QueryVector, f64)>,
    /// Log-loss error of the final model (the LogR paper's measure).
    pub error: f64,
    /// Error after each greedy step (index 0 = empty summary).
    pub error_trajectory: Vec<f64>,
}

/// The Laserlight miner.
pub struct Laserlight {
    config: LaserlightConfig,
}

impl Laserlight {
    /// Miner with the given configuration.
    pub fn new(config: LaserlightConfig) -> Self {
        Laserlight { config }
    }

    /// Mine a summary of the dataset.
    pub fn summarize(&self, data: &LabeledDataset) -> LaserlightSummary {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let rows = data.rows();
        let mut patterns: Vec<QueryVector> = vec![QueryVector::empty()]; // root: matches all
        let mut model = Model::fit(data, &patterns, self.config.fit_sweeps);
        let mut error_trajectory = vec![model.log_loss(data)];

        while patterns.len() <= self.config.n_patterns && !rows.is_empty() {
            // Candidate generation: sample rows; generalize by intersecting
            // with a second random row (their "common generalization"), and
            // keep the raw row pattern too.
            let mut candidates: Vec<QueryVector> = Vec::with_capacity(self.config.sample_size * 2);
            for _ in 0..self.config.sample_size {
                let a = &rows[rng.gen_range(0..rows.len())].vector;
                let b = &rows[rng.gen_range(0..rows.len())].vector;
                let meet = a.intersection(b);
                if !meet.is_empty() {
                    candidates.push(meet);
                }
                candidates.push(a.clone());
            }
            candidates.retain(|c| !patterns.contains(c));
            if candidates.is_empty() {
                break;
            }
            // Score candidates by weighted information gain:
            // n_p · KL(observed rate ‖ model average) over matching rows.
            let best = candidates
                .into_iter()
                .filter_map(|c| {
                    let gain = model.gain(data, &c)?;
                    Some((c, gain))
                })
                .max_by(|a, b| a.1.total_cmp(&b.1));
            let Some((pattern, gain)) = best else { break };
            if gain <= 1e-12 {
                // Nothing informative left in this sample; try again with a
                // fresh sample a bounded number of times.
                if error_trajectory.len() > self.config.n_patterns * 4 {
                    break;
                }
                error_trajectory.push(*error_trajectory.last().expect("non-empty"));
                continue;
            }
            patterns.push(pattern);
            model = Model::fit(data, &patterns, self.config.fit_sweeps);
            error_trajectory.push(model.log_loss(data));
        }

        let mined: Vec<(QueryVector, f64)> = patterns
            .iter()
            .skip(1) // drop the root
            .map(|p| (p.clone(), data.label_rate_within(p).unwrap_or(0.0)))
            .collect();
        LaserlightSummary { patterns: mined, error: model.log_loss(data), error_trajectory }
    }
}

/// Log-linear label model over patterns.
struct Model {
    /// Per-row estimate `u(t)`, aligned with `data.rows()`.
    estimates: Vec<f64>,
}

impl Model {
    /// Fit λ's by cyclic iterative scaling on the log-odds.
    fn fit(data: &LabeledDataset, patterns: &[QueryVector], sweeps: usize) -> Model {
        let rows = data.rows();
        let mut lambdas = vec![0.0f64; patterns.len()];
        // Membership lists.
        let members: Vec<Vec<usize>> = patterns
            .iter()
            .map(|p| {
                rows.iter()
                    .enumerate()
                    .filter(|(_, r)| r.vector.contains_all(p))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        let targets: Vec<f64> = patterns
            .iter()
            .map(|p| data.label_rate_within(p).unwrap_or(data.label_rate()))
            .collect();
        let mut scores: Vec<f64> = vec![0.0; rows.len()];

        for _ in 0..sweeps {
            let mut worst = 0.0f64;
            for (j, member) in members.iter().enumerate() {
                if member.is_empty() {
                    continue;
                }
                let (mut num, mut den) = (0.0, 0.0);
                for &i in member {
                    let u = sigmoid(scores[i]);
                    num += rows[i].weight as f64 * u;
                    den += rows[i].weight as f64;
                }
                let avg = (num / den).clamp(1e-9, 1.0 - 1e-9);
                let target = targets[j].clamp(1e-9, 1.0 - 1e-9);
                let delta = (target / (1.0 - target)).ln() - (avg / (1.0 - avg)).ln();
                // Damped update keeps overlapping patterns stable.
                let delta = 0.7 * delta;
                lambdas[j] += delta;
                for &i in member {
                    scores[i] += delta;
                }
                worst = worst.max((avg - target).abs());
            }
            if worst < 1e-9 {
                break;
            }
        }
        Model { estimates: scores.iter().map(|&s| sigmoid(s)).collect() }
    }

    /// Log-loss of the current estimates (the LogR-paper Laserlight error).
    fn log_loss(&self, data: &LabeledDataset) -> f64 {
        data.rows()
            .iter()
            .zip(&self.estimates)
            .map(|(r, &u)| {
                let u = u.clamp(1e-9, 1.0 - 1e-9);
                let loss = if r.label { -u.ln() } else { -(1.0 - u).ln() };
                r.weight as f64 * loss
            })
            .sum()
    }

    /// Information gain of adding a candidate: `n_p · KL(rate ‖ avg)`.
    fn gain(&self, data: &LabeledDataset, candidate: &QueryVector) -> Option<f64> {
        let mut matched = 0.0;
        let mut pos = 0.0;
        let mut model_avg = 0.0;
        for (r, &u) in data.rows().iter().zip(&self.estimates) {
            if r.vector.contains_all(candidate) {
                let w = r.weight as f64;
                matched += w;
                if r.label {
                    pos += w;
                }
                model_avg += w * u;
            }
        }
        if matched == 0.0 {
            return None;
        }
        let rate = (pos / matched).clamp(1e-9, 1.0 - 1e-9);
        let avg = (model_avg / matched).clamp(1e-9, 1.0 - 1e-9);
        let kl = rate * (rate / avg).ln() + (1.0 - rate) * ((1.0 - rate) / (1.0 - avg)).ln();
        Some(matched * kl)
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Laserlight error of the *naive encoding* (paper §8.1.1): the naive
/// encoding predicts the global label rate everywhere, so the error is
/// `−|D|·(u·ln u + (1−u)·ln(1−u))` with `u` the label rate.
pub fn laserlight_error_of_naive(data: &LabeledDataset) -> f64 {
    let u = data.label_rate();
    if u <= 0.0 || u >= 1.0 {
        return 0.0;
    }
    -(data.total() as f64) * (u * u.ln() + (1.0 - u) * (1.0 - u).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    /// Label is exactly "contains feature 0".
    fn determined_data() -> LabeledDataset {
        let mut d = LabeledDataset::new(4);
        d.push(qv(&[0, 1]), true, 10);
        d.push(qv(&[0, 2]), true, 10);
        d.push(qv(&[1, 2]), false, 10);
        d.push(qv(&[3]), false, 10);
        d
    }

    #[test]
    fn naive_error_formula() {
        let d = determined_data();
        // u = 0.5 → error = |D|·ln 2.
        let e = laserlight_error_of_naive(&d);
        assert!((e - 40.0 * std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn naive_error_zero_for_pure_labels() {
        let mut d = LabeledDataset::new(2);
        d.push(qv(&[0]), true, 5);
        assert_eq!(laserlight_error_of_naive(&d), 0.0);
    }

    #[test]
    fn mining_reduces_error_below_naive() {
        let d = determined_data();
        let summary = Laserlight::new(LaserlightConfig::new(4, 7)).summarize(&d);
        let naive = laserlight_error_of_naive(&d);
        assert!(summary.error < naive * 0.5, "summary error {} vs naive {naive}", summary.error);
        assert!(!summary.patterns.is_empty());
    }

    #[test]
    fn error_trajectory_trends_down() {
        // The greedy step maximizes an information-gain *estimate*; after an
        // approximate refit the exact log-loss may tick up slightly, so we
        // assert the trend, not strict monotonicity.
        let d = determined_data();
        let summary = Laserlight::new(LaserlightConfig::new(4, 3)).summarize(&d);
        let first = summary.error_trajectory[0];
        let last = *summary.error_trajectory.last().unwrap();
        assert!(last < first * 0.1, "no overall improvement: {:?}", summary.error_trajectory);
        for w in summary.error_trajectory.windows(2) {
            assert!(w[1] <= w[0] * 1.25 + 1e-6, "error jumped: {:?}", summary.error_trajectory);
        }
    }

    #[test]
    fn finds_the_determining_pattern() {
        let d = determined_data();
        let summary = Laserlight::new(LaserlightConfig::new(6, 11)).summarize(&d);
        // Some selected pattern must pin down feature 0 (the label rule).
        let has_f0 =
            summary.patterns.iter().any(|(p, rate)| p.contains(FeatureId(0)) && *rate > 0.99);
        assert!(has_f0, "patterns: {:?}", summary.patterns);
    }

    #[test]
    fn more_patterns_never_hurt() {
        let d = determined_data();
        let e2 = Laserlight::new(LaserlightConfig::new(2, 5)).summarize(&d).error;
        let e6 = Laserlight::new(LaserlightConfig::new(6, 5)).summarize(&d).error;
        assert!(e6 <= e2 + 1e-6, "e6 {e6} vs e2 {e2}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = determined_data();
        let a = Laserlight::new(LaserlightConfig::new(3, 9)).summarize(&d);
        let b = Laserlight::new(LaserlightConfig::new(3, 9)).summarize(&d);
        assert_eq!(a.error, b.error);
        assert_eq!(a.patterns.len(), b.patterns.len());
    }

    #[test]
    fn handles_empty_dataset() {
        let d = LabeledDataset::new(4);
        let summary = Laserlight::new(LaserlightConfig::new(3, 0)).summarize(&d);
        assert_eq!(summary.error, 0.0);
        assert!(summary.patterns.is_empty());
    }
}
