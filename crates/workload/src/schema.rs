//! Relational schema models backing the SQL generators.
//!
//! A [`Schema`] is a set of tables with named columns; generators draw
//! tables/columns from it to emit realistic query text whose feature
//! universe is controlled by the pool sizes.

use rand::rngs::StdRng;
use rand::Rng;

/// A table with its columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (possibly schema-qualified).
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
}

impl Table {
    /// Build a table with columns `prefix0..prefixN` plus common id/time
    /// columns.
    pub fn synthetic(name: &str, prefix: &str, n_columns: usize) -> Table {
        let mut columns = vec!["id".to_string(), "created_at".to_string()];
        columns.extend((0..n_columns.saturating_sub(2)).map(|i| format!("{prefix}_{i}")));
        Table { name: name.to_string(), columns }
    }

    /// A random column name.
    pub fn random_column(&self, rng: &mut StdRng) -> &str {
        &self.columns[rng.gen_range(0..self.columns.len())]
    }

    /// A random subset of `k` distinct columns (order preserved).
    pub fn random_columns(&self, k: usize, rng: &mut StdRng) -> Vec<&str> {
        let k = k.min(self.columns.len());
        let mut picked: Vec<usize> = Vec::with_capacity(k);
        while picked.len() < k {
            let c = rng.gen_range(0..self.columns.len());
            if !picked.contains(&c) {
                picked.push(c);
            }
        }
        picked.sort_unstable();
        picked.into_iter().map(|i| self.columns[i].as_str()).collect()
    }
}

/// A collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// The tables.
    pub tables: Vec<Table>,
}

impl Schema {
    /// A random table.
    pub fn random_table(&self, rng: &mut StdRng) -> &Table {
        &self.tables[rng.gen_range(0..self.tables.len())]
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Total number of columns across tables.
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }
}

/// The Google+-style Android messaging schema behind the PocketData
/// workload (tables taken from the paper's Fig. 10 visualizations).
pub fn messaging_schema() -> Schema {
    let specs: &[(&str, &[&str])] = &[
        (
            "messages",
            &[
                "_id",
                "sms_type",
                "_time",
                "status",
                "transport_type",
                "timestamp",
                "text",
                "sms_raw_sender",
                "message_id",
                "expiration_timestamp",
                "conversation_id",
                "sender_id",
                "attachment_id",
                "read_state",
                "delivery_state",
                "sms_error_code",
                "subject",
                "priority",
                "retry_count",
                "media_type",
            ],
        ),
        (
            "conversations",
            &[
                "conversation_id",
                "conversation_status",
                "conversation_pending_leave",
                "conversation_notification_level",
                "chat_watermark",
                "latest_message_id",
                "unread_count",
                "is_muted",
                "archive_status",
                "group_name",
                "created_ts",
                "updated_ts",
                "icon_url",
                "participant_count",
            ],
        ),
        (
            "conversation_participants_view",
            &[
                "conversation_id",
                "participants_type",
                "first_name",
                "chat_id",
                "blocked",
                "active",
                "profile_id",
                "display_name",
                "avatar_url",
                "last_seen",
            ],
        ),
        (
            "message_notifications_view",
            &[
                "status",
                "timestamp",
                "conversation_id",
                "chat_watermark",
                "message_id",
                "sms_type",
                "notification_level",
                "seen",
                "alert_status",
                "sound_uri",
            ],
        ),
        (
            "messages_view",
            &[
                "status",
                "timestamp",
                "expiration_timestamp",
                "sms_raw_sender",
                "message_id",
                "text",
                "conversation_id",
                "sender_name",
                "attachment_count",
            ],
        ),
        (
            "suggested_contacts",
            &[
                "suggestion_type",
                "name",
                "chat_id",
                "profile_id",
                "score",
                "source",
                "last_contacted",
                "is_favorite",
            ],
        ),
        (
            "participants",
            &[
                "participant_id",
                "profile_id",
                "first_name",
                "full_name",
                "participant_type",
                "batch_gebi_tag",
                "blocked",
                "in_users_table",
            ],
        ),
        (
            "account_settings",
            &["setting_key", "setting_value", "account_id", "sync_state", "updated_at"],
        ),
    ];
    Schema {
        tables: specs
            .iter()
            .map(|(name, cols)| Table {
                name: name.to_string(),
                columns: cols.iter().map(|c| c.to_string()).collect(),
            })
            .collect(),
    }
}

/// A multi-application banking schema: `n_schemas × tables_per_schema`
/// tables named `s<i>.t<j>`, with varied column counts.
pub fn banking_schema(n_schemas: usize, tables_per_schema: usize, rng: &mut StdRng) -> Schema {
    let domains =
        ["acct", "txn", "cust", "loan", "card", "branch", "ledger", "audit", "risk", "fx"];
    let mut tables = Vec::with_capacity(n_schemas * tables_per_schema);
    for s in 0..n_schemas {
        for t in 0..tables_per_schema {
            let domain = domains[(s + t) % domains.len()];
            let n_cols = rng.gen_range(8..=24);
            tables.push(Table::synthetic(
                &format!("{domain}_db{s}.{domain}_{t}"),
                &format!("{domain}{t}"),
                n_cols,
            ));
        }
    }
    Schema { tables }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn messaging_schema_has_paper_tables() {
        let s = messaging_schema();
        for name in ["messages", "conversations", "suggested_contacts"] {
            assert!(s.table(name).is_some(), "missing {name}");
        }
        assert!(s.total_columns() > 60);
    }

    #[test]
    fn synthetic_table_columns() {
        let t = Table::synthetic("x.y", "c", 5);
        assert_eq!(t.columns.len(), 5);
        assert!(t.columns.contains(&"id".to_string()));
    }

    #[test]
    fn random_columns_distinct_and_bounded() {
        let t = Table::synthetic("t", "c", 10);
        let mut rng = StdRng::seed_from_u64(1);
        let cols = t.random_columns(4, &mut rng);
        assert_eq!(cols.len(), 4);
        let mut dedup = cols.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        // Requesting more than available clamps.
        assert_eq!(t.random_columns(99, &mut rng).len(), 10);
    }

    #[test]
    fn banking_schema_scales() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = banking_schema(5, 4, &mut rng);
        assert_eq!(s.tables.len(), 20);
        assert!(s.tables.iter().all(|t| t.columns.len() >= 8));
        // Schema-qualified names.
        assert!(s.tables[0].name.contains('.'));
    }
}
