//! Synthetic workload and dataset generators for the LogR reproduction.
//!
//! The paper evaluates on two proprietary SQL logs (PocketData-Google+ and
//! a US bank's production log) and two ML datasets we cannot redistribute
//! (FIMI Mushroom, IPUMS Census Income). Every generator here reproduces
//! the published summary statistics (Tables 1 and 2) and the *structural*
//! properties the algorithms are sensitive to — distinct-query counts,
//! feature-universe sizes, multiplicity skew, cluster/anti-correlation
//! structure — from a fixed seed, so every experiment is deterministic.
//! DESIGN.md §3 documents each substitution.
//!
//! * [`zipf`] — Zipf multiplicity fitting (hits a target maximum
//!   multiplicity at a given total);
//! * [`schema`] — relational schema models used to emit realistic SQL text;
//! * [`pocketdata`] — the stable, machine-generated Android messaging
//!   workload (Table 1, left column);
//! * [`usbank`] — the diverse human+machine banking workload, with literal
//!   constants injected to exercise constant removal (Table 1, right);
//! * [`mushroom`] — categorical mushroom-like rows with a latent edibility
//!   class (Table 2);
//! * [`income`] — census-like rows with 9 one-hot attribute groups
//!   (mutually anti-correlated within a group) and an income label
//!   (Table 2).

pub mod income;
pub mod mushroom;
pub mod pocketdata;
pub mod schema;
pub mod usbank;
pub mod zipf;

pub use income::{generate_income, IncomeConfig};
pub use mushroom::{generate_mushroom, MushroomConfig};
pub use pocketdata::{generate_pocketdata, PocketDataConfig};
pub use usbank::{generate_usbank, UsBankConfig};

use logr_feature::{IngestStats, LogIngest, QueryLog};

/// A synthetic SQL log: distinct statements with multiplicities.
///
/// Keeping the log in (template, count) form makes paper-scale totals
/// (hundreds of thousands to millions of queries) free: every algorithm in
/// the workspace is multiplicity-weighted.
#[derive(Debug, Clone)]
pub struct SyntheticLog {
    /// Distinct SQL statements with their occurrence counts.
    pub statements: Vec<(String, u64)>,
}

impl SyntheticLog {
    /// Total queries including multiplicities.
    pub fn total(&self) -> u64 {
        self.statements.iter().map(|&(_, c)| c).sum()
    }

    /// Number of distinct statements.
    pub fn distinct(&self) -> usize {
        self.statements.len()
    }

    /// Run the full ingestion pipeline (parse → anonymize → regularize →
    /// featurize) and return the feature log plus Table 1 statistics.
    pub fn ingest(&self) -> (QueryLog, IngestStats) {
        let mut ingest = LogIngest::new();
        for (sql, count) in &self.statements {
            ingest.ingest_with_count(sql, *count);
        }
        ingest.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_log_totals() {
        let log = SyntheticLog {
            statements: vec![("SELECT a FROM t".into(), 3), ("SELECT b FROM t".into(), 2)],
        };
        assert_eq!(log.total(), 5);
        assert_eq!(log.distinct(), 2);
        let (qlog, stats) = log.ingest();
        assert_eq!(qlog.total_queries(), 5);
        assert_eq!(stats.distinct_raw, 2);
    }
}
