//! Mushroom-like categorical dataset (paper Table 2, MTV's evaluation
//! data).
//!
//! The FIMI Mushroom dataset: 8,124 tuples, 21 categorical attributes
//! one-hot encoded into 95 distinct features, binary class = edibility.
//! The generator reproduces row count, attribute/feature counts, and the
//! property MTV exploits: several attributes are strongly class-correlated
//! (odor being the classic near-perfect predictor), so informative itemsets
//! exist.

use logr_feature::{FeatureId, LabeledDataset, QueryVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute cardinalities (21 attributes, summing to 95 one-hot features,
/// mirroring Table 2).
pub const MUSHROOM_CARDINALITIES: [usize; 21] =
    [6, 4, 10, 2, 9, 2, 2, 2, 8, 2, 5, 4, 4, 6, 6, 1, 4, 3, 5, 6, 4];

/// Mushroom generator configuration. Defaults reproduce Table 2.
#[derive(Debug, Clone, Copy)]
pub struct MushroomConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of rows.
    pub rows: u64,
    /// P(edible).
    pub edible_rate: f64,
}

impl Default for MushroomConfig {
    fn default() -> Self {
        MushroomConfig { seed: 0x3054, rows: 8_124, edible_rate: 0.518 }
    }
}

impl MushroomConfig {
    /// A small configuration for fast tests.
    pub fn small(seed: u64) -> Self {
        MushroomConfig { seed, rows: 400, edible_rate: 0.518 }
    }
}

/// Generate the synthetic mushroom dataset.
pub fn generate_mushroom(config: &MushroomConfig) -> LabeledDataset {
    let n_features: usize = MUSHROOM_CARDINALITIES.iter().sum();
    let offsets: Vec<usize> = MUSHROOM_CARDINALITIES
        .iter()
        .scan(0usize, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();

    let mut names = Vec::with_capacity(n_features);
    for (a, &card) in MUSHROOM_CARDINALITIES.iter().enumerate() {
        for v in 0..card {
            names.push(format!("attr{a}={v}"));
        }
    }

    let mut data = LabeledDataset::new(n_features).with_feature_names(names);
    let mut rng = StdRng::seed_from_u64(config.seed);

    for _ in 0..config.rows {
        let edible = rng.gen_bool(config.edible_rate);
        let mut ids = Vec::with_capacity(MUSHROOM_CARDINALITIES.len());
        for (a, &card) in MUSHROOM_CARDINALITIES.iter().enumerate() {
            let value = draw_value(a, card, edible, &mut rng);
            ids.push(FeatureId((offsets[a] + value) as u32));
        }
        data.push(QueryVector::new(ids), edible, 1);
    }
    data
}

/// Class-conditional categorical draw. Attribute 4 plays "odor": nearly
/// deterministic given the class; attributes 0, 8 and 17 are moderately
/// predictive; the rest are class-independent with a Zipf-ish skew.
fn draw_value(attr: usize, cardinality: usize, edible: bool, rng: &mut StdRng) -> usize {
    if cardinality == 1 {
        return 0;
    }
    match attr {
        4 => {
            // Odor: edible mushrooms mostly value 0 ("none"), poisonous
            // mostly values 1–3 ("foul" family) — ~97% separable.
            if edible {
                if rng.gen_bool(0.97) {
                    0
                } else {
                    rng.gen_range(1..cardinality)
                }
            } else if rng.gen_bool(0.97) {
                rng.gen_range(1..4.min(cardinality))
            } else {
                0
            }
        }
        0 | 8 | 17 => {
            // Moderate predictors: the class shifts the skew.
            let bias = if edible { 0 } else { 1 };
            let first = (rng.gen_range(0..cardinality) + bias) % cardinality;
            if rng.gen_bool(0.6) {
                first
            } else {
                rng.gen_range(0..cardinality)
            }
        }
        _ => {
            // Class-independent, skewed toward low values.
            let r: f64 = rng.gen();
            ((r * r * cardinality as f64) as usize).min(cardinality - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_sum_to_95() {
        assert_eq!(MUSHROOM_CARDINALITIES.iter().sum::<usize>(), 95);
        assert_eq!(MUSHROOM_CARDINALITIES.len(), 21);
    }

    #[test]
    fn default_matches_table_2() {
        let d = generate_mushroom(&MushroomConfig::default());
        assert_eq!(d.total(), 8_124);
        assert_eq!(d.n_features(), 95);
        // Every row sets exactly one feature per attribute.
        for r in d.rows() {
            assert_eq!(r.vector.len(), 21);
        }
        let rate = d.label_rate();
        assert!((rate - 0.518).abs() < 0.03, "edible rate {rate}");
    }

    #[test]
    fn odor_is_predictive() {
        let d = generate_mushroom(&MushroomConfig::small(3));
        // Feature id of attr4=0: offset = 6+4+10+2 = 22.
        let odor_none = QueryVector::new(vec![FeatureId(22)]);
        let rate = d.label_rate_within(&odor_none).expect("odor=none occurs");
        assert!(rate > 0.85, "odor=none should skew edible: {rate}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_mushroom(&MushroomConfig::small(5));
        let b = generate_mushroom(&MushroomConfig::small(5));
        assert_eq!(a.rows().len(), b.rows().len());
        assert_eq!(a.total(), b.total());
        for (x, y) in a.rows().iter().zip(b.rows()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn feature_names_attached() {
        let d = generate_mushroom(&MushroomConfig::small(1));
        assert_eq!(d.feature_name(FeatureId(0)), "attr0=0");
        assert_eq!(d.feature_name(FeatureId(6)), "attr1=0");
    }

    #[test]
    fn one_hot_anticorrelation_within_attribute() {
        // No row carries two values of the same attribute.
        let d = generate_mushroom(&MushroomConfig::small(9));
        let a0: Vec<FeatureId> = (0..6).map(FeatureId).collect();
        for r in d.rows() {
            let hits = a0.iter().filter(|&&f| r.vector.contains(f)).count();
            assert!(hits <= 1, "two values of attribute 0 in one row");
        }
    }
}
