//! PocketData-Google+ workload generator (paper Table 1, left column).
//!
//! The real dataset is the SQLite query log of the Google+ Android app
//! across 11 phones: a *stable, exclusively machine-generated* workload —
//! a fixed set of parameterized statements fired at wildly skewed rates.
//! The generator reproduces:
//!
//! * 605 distinct statements (all using `?` placeholders, so distinct
//!   with and without constants coincide, as in Table 1);
//! * ≈135 of them already conjunctive, the rest rewritable (IN lists,
//!   ORs, BETWEENs — all within the regularizer's reach);
//! * 629,582 total queries, max multiplicity ≈48,651 (fitted Zipf);
//! * a feature universe in the several-hundreds with ≈15 features/query;
//! * the Fig. 10 cluster structure: eight task groups over the messaging
//!   schema, each a family of variations on one base query.

use crate::schema::{messaging_schema, Schema, Table};
use crate::zipf::fit_multiplicities;
use crate::SyntheticLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// PocketData generator configuration. Defaults reproduce Table 1.
#[derive(Debug, Clone, Copy)]
pub struct PocketDataConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total queries (with multiplicities).
    pub total_queries: u64,
    /// Distinct statements to generate.
    pub distinct_queries: usize,
    /// How many of the distinct statements are already conjunctive.
    pub conjunctive_queries: usize,
    /// Target maximum multiplicity.
    pub max_multiplicity: u64,
}

impl Default for PocketDataConfig {
    fn default() -> Self {
        PocketDataConfig {
            seed: 0x0C4E7,
            total_queries: 629_582,
            distinct_queries: 605,
            conjunctive_queries: 135,
            max_multiplicity: 48_651,
        }
    }
}

impl PocketDataConfig {
    /// A small configuration for fast tests.
    pub fn small(seed: u64) -> Self {
        PocketDataConfig {
            seed,
            total_queries: 2_000,
            distinct_queries: 60,
            conjunctive_queries: 14,
            max_multiplicity: 300,
        }
    }
}

/// The eight task groups of the Fig. 10 visualization (and three more the
/// paper says it omitted for space): each picks a table family and emits
/// variations of one base query.
struct TaskGroup {
    table: &'static str,
    join: Option<&'static str>,
    base_predicates: &'static [&'static str],
    optional_predicates: &'static [&'static str],
    order_by: Option<&'static str>,
    limit: Option<u64>,
}

const GROUPS: &[TaskGroup] = &[
    // Fig 10a: active participants not in a chat.
    TaskGroup {
        table: "conversation_participants_view",
        join: None,
        base_predicates: &["conversation_id = ?", "active = ?"],
        optional_predicates: &["chat_id != ?", "blocked = ?", "participants_type = ?"],
        order_by: None,
        limit: None,
    },
    // Fig 10b: recent SMS sender info.
    TaskGroup {
        table: "messages_view",
        join: Some("conversations"),
        base_predicates: &[
            "conversation_id = ?",
            "conversations.conversation_id = conversation_id",
        ],
        optional_predicates: &[
            "expiration_timestamp > ?",
            "status != ?",
            "sms_raw_sender IS NOT NULL",
            "timestamp > ?",
        ],
        order_by: Some("timestamp DESC"),
        limit: Some(500),
    },
    // Fig 10c: recent messages in conversations of a type.
    TaskGroup {
        table: "message_notifications_view",
        join: Some("conversations"),
        base_predicates: &[
            "conversation_id = ?",
            "conversations.conversation_id = conversation_id",
        ],
        optional_predicates: &[
            "conversation_status != ?",
            "conversation_pending_leave != ?",
            "conversation_notification_level != ?",
            "timestamp > ?",
            "timestamp > chat_watermark",
        ],
        order_by: None,
        limit: None,
    },
    // Fig 10d: contact suggestions.
    TaskGroup {
        table: "suggested_contacts",
        join: None,
        base_predicates: &["chat_id != ?"],
        optional_predicates: &["name != ?", "score > ?", "is_favorite = ?"],
        order_by: Some("upper(name)"),
        limit: Some(10),
    },
    // Fig 10e: messages under type/status conditions.
    TaskGroup {
        table: "messages",
        join: None,
        base_predicates: &["sms_type = ?", "status = ?"],
        optional_predicates: &[
            "transport_type = ?",
            "timestamp >= ?",
            "read_state = ?",
            "delivery_state != ?",
        ],
        order_by: None,
        limit: None,
    },
    // Conversation list refresh.
    TaskGroup {
        table: "conversations",
        join: None,
        base_predicates: &["conversation_status = ?"],
        optional_predicates: &[
            "is_muted = ?",
            "archive_status = ?",
            "unread_count > ?",
            "latest_message_id IS NOT NULL",
        ],
        order_by: Some("updated_ts DESC"),
        limit: Some(50),
    },
    // Participant profile lookups.
    TaskGroup {
        table: "participants",
        join: None,
        base_predicates: &["profile_id = ?"],
        optional_predicates: &["blocked = ?", "participant_type = ?", "in_users_table = ?"],
        order_by: None,
        limit: None,
    },
    // Settings sync.
    TaskGroup {
        table: "account_settings",
        join: None,
        base_predicates: &["account_id = ?"],
        optional_predicates: &["setting_key = ?", "sync_state != ?"],
        order_by: None,
        limit: None,
    },
];

/// Generate the synthetic PocketData log.
pub fn generate_pocketdata(config: &PocketDataConfig) -> SyntheticLog {
    let schema = messaging_schema();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut seen: HashSet<String> = HashSet::with_capacity(config.distinct_queries);
    let mut statements: Vec<String> = Vec::with_capacity(config.distinct_queries);

    // First the conjunctive population, then the decorated remainder —
    // each group contributes round-robin so clusters stay balanced.
    let mut attempts = 0usize;
    let budget = config.distinct_queries * 200;
    while statements.len() < config.distinct_queries && attempts < budget {
        attempts += 1;
        let conjunctive = statements.len() < config.conjunctive_queries;
        let group = &GROUPS[attempts % GROUPS.len()];
        let sql = emit_query(group, &schema, conjunctive, &mut rng);
        if seen.insert(sql.clone()) {
            statements.push(sql);
        }
    }

    let counts =
        fit_multiplicities(statements.len(), config.total_queries, config.max_multiplicity);
    // Hottest templates are the short machine probes: assign descending
    // multiplicities in generation order (groups interleave, so heat
    // spreads across clusters like the real workload).
    SyntheticLog { statements: statements.into_iter().zip(counts).collect() }
}

fn emit_query(group: &TaskGroup, schema: &Schema, conjunctive: bool, rng: &mut StdRng) -> String {
    let table = schema.table(group.table).expect("group table in schema");
    let n_cols = rng.gen_range(6..=12);
    let cols = table.random_columns(n_cols, rng);

    let mut predicates: Vec<String> = group.base_predicates.iter().map(|p| p.to_string()).collect();
    for opt in group.optional_predicates {
        if rng.gen_bool(0.5) {
            predicates.push(opt.to_string());
        }
    }
    // Template-specific extra predicates: these are what give the real log
    // its several-hundred-atom vocabulary (Table 1: 863 features).
    for _ in 0..rng.gen_range(1..=3) {
        predicates.push(random_atom(table, rng));
    }
    if !conjunctive {
        predicates.push(non_conjunctive_atom(table, rng));
    }

    let mut sql = format!("SELECT {} FROM {}", cols.join(", "), group.table);
    if let Some(join) = group.join {
        sql.push_str(&format!(", {join}"));
    }
    sql.push_str(" WHERE ");
    sql.push_str(&predicates.join(" AND "));
    if let Some(order) = group.order_by {
        if rng.gen_bool(0.7) {
            sql.push_str(&format!(" ORDER BY {order}"));
        }
    }
    if let Some(limit) = group.limit {
        if rng.gen_bool(0.7) {
            sql.push_str(&format!(" LIMIT {limit}"));
        }
    }
    sql
}

/// A conjunctive atom over a random column of the table.
fn random_atom(table: &Table, rng: &mut StdRng) -> String {
    let col = table.random_column(rng);
    match rng.gen_range(0..7) {
        0 => format!("{col} = ?"),
        1 => format!("{col} != ?"),
        2 => format!("{col} > ?"),
        3 => format!("{col} >= ?"),
        4 => format!("{col} < ?"),
        5 => format!("{col} <= ?"),
        _ => format!("{col} IS NOT NULL"),
    }
}

/// A predicate requiring regularization: IN list, OR pair, or BETWEEN.
fn non_conjunctive_atom(table: &Table, rng: &mut StdRng) -> String {
    let col = table.random_column(rng);
    match rng.gen_range(0..3) {
        0 => {
            let n = rng.gen_range(2..=4);
            let marks = vec!["?"; n].join(", ");
            format!("{col} IN ({marks})")
        }
        1 => {
            let other = table.random_column(rng);
            format!("({col} = ? OR {other} = ?)")
        }
        _ => format!("{col} BETWEEN ? AND ?"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_hits_targets() {
        let config = PocketDataConfig::small(7);
        let log = generate_pocketdata(&config);
        assert_eq!(log.distinct(), 60);
        assert_eq!(log.total(), 2_000);
        let (qlog, stats) = log.ingest();
        assert_eq!(stats.parse_errors, 0, "generator must emit parseable SQL");
        assert_eq!(stats.unsupported, 0);
        // All statements use ? params: distinct raw == distinct anonymized.
        assert_eq!(stats.distinct_raw, stats.distinct_anonymized);
        assert_eq!(stats.distinct_rewritable, 60, "everything must be rewritable");
        assert!(qlog.total_queries() >= 2_000); // UNION branches can add
    }

    #[test]
    fn conjunctive_fraction_respected() {
        let config = PocketDataConfig::small(13);
        let log = generate_pocketdata(&config);
        let (_, stats) = log.ingest();
        // Exactly the configured prefix is conjunctive (±1 for collisions).
        assert!(
            (stats.distinct_conjunctive as i64 - 14).abs() <= 2,
            "conjunctive count {} far from 14",
            stats.distinct_conjunctive
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_pocketdata(&PocketDataConfig::small(3));
        let b = generate_pocketdata(&PocketDataConfig::small(3));
        assert_eq!(a.statements, b.statements);
        let c = generate_pocketdata(&PocketDataConfig::small(4));
        assert_ne!(a.statements, c.statements);
    }

    #[test]
    fn multiplicity_skew_matches_config() {
        let config = PocketDataConfig::small(5);
        let log = generate_pocketdata(&config);
        let max = log.statements.iter().map(|&(_, c)| c).max().unwrap();
        let rel = (max as f64 - 300.0).abs() / 300.0;
        assert!(rel < 0.1, "max multiplicity {max} far from 300");
    }

    #[test]
    fn paper_scale_structure() {
        // Full-size generation is cheap (only distinct templates are built).
        let log = generate_pocketdata(&PocketDataConfig::default());
        assert_eq!(log.distinct(), 605);
        assert_eq!(log.total(), 629_582);
    }

    #[test]
    fn features_per_query_in_paper_range() {
        let log = generate_pocketdata(&PocketDataConfig::small(11));
        let (qlog, _) = log.ingest();
        let avg = qlog.avg_features_per_query();
        assert!((8.0..22.0).contains(&avg), "avg features {avg} out of plausible range");
    }
}
