//! US-bank workload generator (paper Table 1, right column).
//!
//! The real log captures ~19 hours of query traffic across the majority of
//! databases at a major US bank: a *diverse mix of machine- and
//! human-generated* queries over many schemas, with literal constants baked
//! into the SQL (188,184 distinct strings collapse to 1,712 after constant
//! removal). The generator reproduces:
//!
//! * 1,712 parameterized templates — ~⅓ "application" templates drawn from
//!   per-app table pools (high feature overlap within an app), ~⅔
//!   "human" ad-hoc queries over random tables and joins (the long tail
//!   that makes US bank need more clusters than PocketData, Fig. 2);
//! * ≈1,494 of the templates conjunctive, the rest rewritable;
//! * constants: each template materializes as several literal variants
//!   (`const_variants_per_template`; the paper's ratio is ≈110 — availble
//!   behind [`UsBankConfig::paper_scale`] since it mostly costs parse time);
//! * 1,244,243 total queries with max multiplicity ≈208,742;
//! * a feature universe in the thousands (≈16.6 features/query).

use crate::schema::{banking_schema, Schema};
use crate::zipf::fit_multiplicities;
use crate::SyntheticLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// US-bank generator configuration. Defaults reproduce Table 1 shape with a
/// reduced constant-variant count (see [`UsBankConfig::paper_scale`]).
#[derive(Debug, Clone, Copy)]
pub struct UsBankConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total queries (with multiplicities).
    pub total_queries: u64,
    /// Distinct parameterized templates.
    pub distinct_templates: usize,
    /// Templates that are already conjunctive.
    pub conjunctive_templates: usize,
    /// Target maximum multiplicity (per template).
    pub max_multiplicity: u64,
    /// Literal-constant variants per template (Table 1's 188,184 distinct
    /// raw strings ≈ 110 per template).
    pub const_variants_per_template: usize,
    /// Number of database schemas.
    pub n_schemas: usize,
    /// Tables per schema.
    pub tables_per_schema: usize,
    /// Application count (machine-template pools).
    pub n_applications: usize,
}

impl Default for UsBankConfig {
    fn default() -> Self {
        UsBankConfig {
            seed: 0xBA2C,
            total_queries: 1_244_243,
            distinct_templates: 1_712,
            conjunctive_templates: 1_494,
            max_multiplicity: 208_742,
            const_variants_per_template: 8,
            n_schemas: 20,
            tables_per_schema: 9,
            n_applications: 40,
        }
    }
}

impl UsBankConfig {
    /// A small configuration for fast tests.
    pub fn small(seed: u64) -> Self {
        UsBankConfig {
            seed,
            total_queries: 5_000,
            distinct_templates: 120,
            conjunctive_templates: 100,
            max_multiplicity: 900,
            const_variants_per_template: 3,
            n_schemas: 6,
            tables_per_schema: 5,
            n_applications: 8,
        }
    }

    /// The paper's raw-distinct scale (≈110 constant variants/template ⇒
    /// ≈188k distinct strings). Parse time grows accordingly.
    pub fn paper_scale() -> Self {
        UsBankConfig { const_variants_per_template: 110, ..UsBankConfig::default() }
    }
}

/// Generate the synthetic US-bank log.
pub fn generate_usbank(config: &UsBankConfig) -> SyntheticLog {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = banking_schema(config.n_schemas, config.tables_per_schema, &mut rng);

    // Application pools: each app works a small set of tables.
    let app_pools: Vec<Vec<usize>> = (0..config.n_applications)
        .map(|_| {
            let size = rng.gen_range(2..=5);
            (0..size).map(|_| rng.gen_range(0..schema.tables.len())).collect()
        })
        .collect();

    let mut seen: HashSet<String> = HashSet::with_capacity(config.distinct_templates);
    let mut templates: Vec<String> = Vec::with_capacity(config.distinct_templates);
    let machine_target = config.distinct_templates / 3;
    let mut attempts = 0usize;
    let budget = config.distinct_templates * 300;
    while templates.len() < config.distinct_templates && attempts < budget {
        attempts += 1;
        // Spread the non-conjunctive quota evenly across the sequence.
        let nc_quota = config.distinct_templates - config.conjunctive_templates;
        let decorated = (templates.len() * nc_quota) % config.distinct_templates
            >= config.distinct_templates - nc_quota;
        let sql = if templates.len() < machine_target {
            let pool = &app_pools[attempts % app_pools.len()];
            emit_machine_template(&schema, pool, decorated, &mut rng)
        } else {
            emit_human_template(&schema, decorated, &mut rng)
        };
        if seen.insert(sql.clone()) {
            templates.push(sql);
        }
    }

    let counts = fit_multiplicities(templates.len(), config.total_queries, config.max_multiplicity);

    // Materialize constants: split each template's count across literal
    // variants (skewed 2:1 toward the first variant).
    let mut statements = Vec::with_capacity(templates.len() * config.const_variants_per_template);
    for (template, count) in templates.into_iter().zip(counts) {
        let n_variants = config.const_variants_per_template.max(1).min(count as usize).max(1);
        let share = count / n_variants as u64;
        let mut remaining = count;
        for v in 0..n_variants {
            let c = if v + 1 == n_variants { remaining } else { share.max(1).min(remaining) };
            if c == 0 {
                break;
            }
            remaining -= c;
            statements.push((substitute_constants(&template, &mut rng), c));
        }
    }
    SyntheticLog { statements }
}

fn emit_machine_template(
    schema: &Schema,
    pool: &[usize],
    decorated: bool,
    rng: &mut StdRng,
) -> String {
    let table = &schema.tables[pool[rng.gen_range(0..pool.len())]];
    let n_cols = rng.gen_range(6..=15);
    let cols = table.random_columns(n_cols, rng);
    let mut predicates = vec![format!("{} = ?", table.random_column(rng))];
    for _ in 0..rng.gen_range(2..=6) {
        predicates.push(simple_atom(table, rng));
    }
    if decorated {
        predicates.push(decorating_atom(table, rng));
    }
    format!("SELECT {} FROM {} WHERE {}", cols.join(", "), table.name, predicates.join(" AND "))
}

fn emit_human_template(schema: &Schema, decorated: bool, rng: &mut StdRng) -> String {
    let table = schema.random_table(rng);
    let n_cols = rng.gen_range(3..=12);
    let cols = table.random_columns(n_cols, rng);
    let mut sql = format!("SELECT {} FROM {}", cols.join(", "), table.name);

    let joined = rng.gen_bool(0.35);
    if joined {
        let other = schema.random_table(rng);
        if other.name != table.name {
            sql.push_str(&format!(
                " JOIN {} ON {}.id = {}.{}",
                other.name,
                table.name,
                other.name,
                other.random_column(rng)
            ));
        }
    }
    let mut predicates = Vec::new();
    for _ in 0..rng.gen_range(2..=6) {
        predicates.push(simple_atom(table, rng));
    }
    if decorated {
        predicates.push(decorating_atom(table, rng));
    }
    sql.push_str(&format!(" WHERE {}", predicates.join(" AND ")));
    if rng.gen_bool(0.3) {
        sql.push_str(&format!(" ORDER BY {} DESC", table.random_column(rng)));
    }
    if rng.gen_bool(0.2) {
        sql.push_str(&format!(" LIMIT {}", [10, 50, 100, 1000][rng.gen_range(0usize..4)]));
    }
    sql
}

fn simple_atom(table: &crate::schema::Table, rng: &mut StdRng) -> String {
    let col = table.random_column(rng);
    match rng.gen_range(0..6) {
        0 => format!("{col} = ?"),
        1 => format!("{col} != ?"),
        2 => format!("{col} > ?"),
        3 => format!("{col} >= ?"),
        4 => format!("{col} IS NOT NULL"),
        _ => format!("{col} <= ?"),
    }
}

fn decorating_atom(table: &crate::schema::Table, rng: &mut StdRng) -> String {
    let col = table.random_column(rng);
    match rng.gen_range(0..3) {
        0 => {
            let n = rng.gen_range(2..=5);
            format!("{col} IN ({})", vec!["?"; n].join(", "))
        }
        1 => {
            let other = table.random_column(rng);
            format!("({col} = ? OR {other} IS NULL)")
        }
        _ => format!("{col} BETWEEN ? AND ?"),
    }
}

/// Replace each `?` with a random literal (numbers, quoted strings, dates).
fn substitute_constants(template: &str, rng: &mut StdRng) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    for ch in template.chars() {
        if ch == '?' {
            match rng.gen_range(0..4) {
                0 => out.push_str(&format!("{}", rng.gen_range(0..100_000))),
                1 => out.push_str(&format!("'CUST{:05}'", rng.gen_range(0..100_000))),
                2 => out.push_str(&format!("{}", rng.gen_range(0..10))),
                _ => out.push_str(&format!(
                    "'2016-0{}-{:02}'",
                    rng.gen_range(1..10),
                    rng.gen_range(1..29)
                )),
            }
        } else {
            out.push(ch);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_parses_cleanly() {
        let log = generate_usbank(&UsBankConfig::small(3));
        let (_, stats) = log.ingest();
        assert_eq!(stats.parse_errors, 0, "generator must emit parseable SQL");
        assert_eq!(stats.unsupported, 0);
        assert_eq!(stats.total_statements, 5_000);
    }

    #[test]
    fn constants_collapse_to_templates() {
        let config = UsBankConfig::small(9);
        let log = generate_usbank(&config);
        let (_, stats) = log.ingest();
        // Raw distinct ≈ templates × variants; anonymized ≈ templates.
        assert!(stats.distinct_raw > stats.distinct_anonymized);
        let diff = (stats.distinct_anonymized as i64 - 120).abs();
        assert!(diff <= 6, "anonymized distinct {} far from 120", stats.distinct_anonymized);
        assert!(stats.features_with_const > stats.distinct_anonymized);
    }

    #[test]
    fn conjunctive_share_close_to_config() {
        let config = UsBankConfig::small(5);
        let log = generate_usbank(&config);
        let (_, stats) = log.ingest();
        let expected = 100.0 / 120.0;
        let actual = stats.distinct_conjunctive as f64 / stats.distinct_anonymized as f64;
        assert!(
            (actual - expected).abs() < 0.12,
            "conjunctive share {actual:.2} vs expected {expected:.2}"
        );
        assert_eq!(stats.distinct_rewritable, stats.distinct_anonymized);
    }

    #[test]
    fn totals_and_skew() {
        let config = UsBankConfig::small(1);
        let log = generate_usbank(&config);
        assert_eq!(log.total(), 5_000);
        let (_, stats) = log.ingest();
        let rel = (stats.max_multiplicity as f64 - 900.0).abs() / 900.0;
        assert!(rel < 0.15, "max multiplicity {} far from 900", stats.max_multiplicity);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_usbank(&UsBankConfig::small(2));
        let b = generate_usbank(&UsBankConfig::small(2));
        assert_eq!(a.statements, b.statements);
    }

    #[test]
    fn more_diverse_than_pocketdata() {
        // The Fig. 2 premise: US bank has a much larger feature universe
        // relative to its distinct count.
        let bank = generate_usbank(&UsBankConfig::small(4));
        let pocket = crate::pocketdata::generate_pocketdata(&crate::PocketDataConfig::small(4));
        let (bank_log, _) = bank.ingest();
        let (pocket_log, _) = pocket.ingest();
        let bank_ratio = bank_log.num_features() as f64 / bank_log.distinct_count() as f64;
        let pocket_ratio = pocket_log.num_features() as f64 / pocket_log.distinct_count() as f64;
        assert!(
            bank_ratio > pocket_ratio,
            "bank {bank_ratio:.2} should exceed pocket {pocket_ratio:.2}"
        );
    }
}
