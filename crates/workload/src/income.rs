//! Census-income-like dataset (paper Table 2, Laserlight's evaluation
//! data).
//!
//! IPUMS census rows: 9 categorical attribute groups one-hot encoded into
//! 783 features, binary class = income > $100k. The generator reproduces
//! the group structure Laserlight exploits (§8.1.2): features within a
//! group are *mutually anti-correlated* (exactly one per group fires), so
//! the 783 features reduce to 9 — the dimensionality-reduction property the
//! paper highlights. The label correlates with a few groups (education,
//! occupation, hours worked).
//!
//! The paper's 777,493 rows are available via [`IncomeConfig::paper_scale`];
//! the default is laptop-scaled (the baselines are superlinear in rows —
//! the original Laserlight run took ~6·10⁴ seconds, Fig. 7a).

use logr_feature::{FeatureId, LabeledDataset, QueryVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attribute-group cardinalities (9 groups, summing to 783 one-hot
/// features, mirroring Table 2).
pub const INCOME_GROUP_CARDINALITIES: [usize; 9] = [96, 52, 120, 107, 75, 130, 88, 65, 50];

/// Income generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct IncomeConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of rows.
    pub rows: u64,
}

impl Default for IncomeConfig {
    fn default() -> Self {
        IncomeConfig { seed: 0x1C0E, rows: 40_000 }
    }
}

impl IncomeConfig {
    /// A small configuration for fast tests.
    pub fn small(seed: u64) -> Self {
        IncomeConfig { seed, rows: 1_000 }
    }

    /// The paper's full row count.
    pub fn paper_scale() -> Self {
        IncomeConfig { rows: 777_493, ..IncomeConfig::default() }
    }
}

/// Generate the synthetic census-income dataset.
pub fn generate_income(config: &IncomeConfig) -> LabeledDataset {
    let n_features: usize = INCOME_GROUP_CARDINALITIES.iter().sum();
    let offsets: Vec<usize> = INCOME_GROUP_CARDINALITIES
        .iter()
        .scan(0usize, |acc, &c| {
            let o = *acc;
            *acc += c;
            Some(o)
        })
        .collect();

    let mut names = Vec::with_capacity(n_features);
    for (g, &card) in INCOME_GROUP_CARDINALITIES.iter().enumerate() {
        for v in 0..card {
            names.push(format!("g{g}={v}"));
        }
    }
    let mut data = LabeledDataset::new(n_features).with_feature_names(names);
    let mut rng = StdRng::seed_from_u64(config.seed);

    for _ in 0..config.rows {
        // Latent affluence drives both some attribute values and the label.
        let affluence: f64 = rng.gen();
        let mut ids = Vec::with_capacity(9);
        let mut score = -2.0;
        for (g, &card) in INCOME_GROUP_CARDINALITIES.iter().enumerate() {
            let value = match g {
                // Education (g1), occupation (g3), hours (g8): affluence
                // shifts the draw toward low indices.
                1 | 3 | 8 => {
                    let r: f64 = rng.gen::<f64>() * (1.2 - affluence);
                    ((r.clamp(0.0, 0.999)) * card as f64) as usize
                }
                _ => {
                    // Zipf-ish skew, class-independent.
                    let r: f64 = rng.gen();
                    ((r * r * card as f64) as usize).min(card - 1)
                }
            };
            ids.push(FeatureId((offsets[g] + value) as u32));
            if matches!(g, 1 | 3 | 8) {
                // Low indices of the predictive groups raise the label odds.
                score += 0.9 * (1.0 - value as f64 / card as f64);
            }
        }
        // A flat logistic keeps high label noise even given the predictive
        // groups — like the real census data, where income is genuinely
        // hard to predict and the naive encoding stays competitive with
        // hundreds of mined patterns (paper Fig. 6a).
        let p_high = 1.0 / (1.0 + (-1.3 * (score - 0.2)).exp());
        let label = rng.gen_bool(p_high.clamp(0.02, 0.98));
        data.push(QueryVector::new(ids), label, 1);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_sum_to_783() {
        assert_eq!(INCOME_GROUP_CARDINALITIES.iter().sum::<usize>(), 783);
        assert_eq!(INCOME_GROUP_CARDINALITIES.len(), 9);
    }

    #[test]
    fn rows_have_one_feature_per_group() {
        let d = generate_income(&IncomeConfig::small(1));
        assert_eq!(d.total(), 1_000);
        assert_eq!(d.n_features(), 783);
        for r in d.rows() {
            assert_eq!(r.vector.len(), 9, "exactly one value per group");
        }
    }

    #[test]
    fn group_anticorrelation() {
        let d = generate_income(&IncomeConfig::small(2));
        // Two features of group 0 never co-occur.
        for r in d.rows() {
            let hits = (0..96).filter(|&i| r.vector.contains(FeatureId(i))).count();
            assert_eq!(hits, 1);
        }
    }

    #[test]
    fn label_correlates_with_education() {
        let d = generate_income(&IncomeConfig::small(3));
        // g1 value 0 (offset 96) should skew positive vs g1's last value.
        let low = d.label_rate_within(&QueryVector::new(vec![FeatureId(96)]));
        let overall = d.label_rate();
        if let Some(low_rate) = low {
            assert!(
                low_rate > overall,
                "education=0 rate {low_rate} should exceed overall {overall}"
            );
        }
        assert!(overall > 0.05 && overall < 0.95, "degenerate labels: {overall}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_income(&IncomeConfig::small(7));
        let b = generate_income(&IncomeConfig::small(7));
        assert_eq!(a.rows().len(), b.rows().len());
        for (x, y) in a.rows().iter().zip(b.rows()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn mostly_distinct_rows_like_the_real_data() {
        // Table 2: all 777,493 tuples are distinct; at small scale most
        // rows should still be distinct given 9 high-cardinality groups.
        let d = generate_income(&IncomeConfig::small(11));
        assert!(d.distinct() as f64 > 0.9 * d.total() as f64);
    }
}
