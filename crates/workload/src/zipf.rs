//! Zipf multiplicity fitting.
//!
//! Both logs in the paper's Table 1 are heavily skewed (PocketData: max
//! multiplicity 48,651 of 629,582; US bank: 208,742 of 1.24M). Multiplicity
//! vectors here follow a Zipf law whose exponent is fitted so that the top
//! rank hits the published maximum at the published total.

/// Normalized Zipf weights `wᵢ ∝ 1/iˢ` for ranks `1..=n`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one rank");
    let mut w: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-s)).collect();
    let total: f64 = w.iter().sum();
    for v in &mut w {
        *v /= total;
    }
    w
}

/// Multiplicities for `n` ranks summing to exactly `total`, with the
/// largest rank close to `max_mult` (fitted by binary search on the Zipf
/// exponent), and every rank at least 1.
///
/// # Panics
/// Panics unless `n ≥ 1`, `total ≥ n` and `max_mult ≥ total / n`.
pub fn fit_multiplicities(n: usize, total: u64, max_mult: u64) -> Vec<u64> {
    assert!(n >= 1);
    assert!(total >= n as u64, "total must cover one query per rank");
    assert!(
        max_mult >= total / n as u64,
        "max multiplicity below the uniform share is unsatisfiable"
    );
    if n == 1 {
        return vec![total];
    }
    let target_share = max_mult as f64 / total as f64;
    // w₁(s) is increasing in s; binary search the exponent.
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if zipf_weights(n, mid)[0] < target_share {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let weights = zipf_weights(n, 0.5 * (lo + hi));

    // Integerize: floor + remainder to the top ranks, floor of 1 everywhere.
    let mut counts: Vec<u64> =
        weights.iter().map(|w| ((w * total as f64).floor() as u64).max(1)).collect();
    let mut assigned: u64 = counts.iter().sum();
    let mut rank = 0;
    while assigned < total {
        counts[rank % n] += 1;
        assigned += 1;
        rank += 1;
    }
    while assigned > total {
        // Trim from the tail without dropping below 1.
        if let Some(c) = counts.iter_mut().rev().find(|c| **c > 1) {
            *c -= 1;
            assigned -= 1;
        } else {
            break;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_normalized_and_decreasing() {
        let w = zipf_weights(100, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let w = zipf_weights(4, 0.0);
        for &v in &w {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_hits_total_exactly() {
        let counts = fit_multiplicities(605, 629_582, 48_651);
        assert_eq!(counts.len(), 605);
        assert_eq!(counts.iter().sum::<u64>(), 629_582);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn fit_max_is_close_to_target() {
        let counts = fit_multiplicities(605, 629_582, 48_651);
        let max = *counts.iter().max().unwrap();
        let rel = (max as f64 - 48_651.0).abs() / 48_651.0;
        assert!(rel < 0.05, "max {max} too far from 48651");
    }

    #[test]
    fn fit_usbank_scale() {
        let counts = fit_multiplicities(1712, 1_244_243, 208_742);
        assert_eq!(counts.iter().sum::<u64>(), 1_244_243);
        let max = *counts.iter().max().unwrap();
        let rel = (max as f64 - 208_742.0).abs() / 208_742.0;
        assert!(rel < 0.05, "max {max} too far from 208742");
    }

    #[test]
    fn single_rank_takes_everything() {
        assert_eq!(fit_multiplicities(1, 42, 42), vec![42]);
    }

    #[test]
    fn small_cases_consistent() {
        let counts = fit_multiplicities(3, 10, 6);
        assert_eq!(counts.iter().sum::<u64>(), 10);
        assert!(counts.iter().all(|&c| c >= 1));
    }
}
