//! Property tests: the synthetic SQL generators emit parseable,
//! regularizable statements for every seed, and their headline statistics
//! track the configuration.

use logr_workload::{generate_pocketdata, generate_usbank, PocketDataConfig, UsBankConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pocketdata_clean_for_any_seed(seed in any::<u64>()) {
        let config = PocketDataConfig {
            seed,
            total_queries: 800,
            distinct_queries: 40,
            conjunctive_queries: 10,
            max_multiplicity: 120,
        };
        let log = generate_pocketdata(&config);
        prop_assert_eq!(log.distinct(), 40);
        prop_assert_eq!(log.total(), 800);
        let (qlog, stats) = log.ingest();
        prop_assert_eq!(stats.parse_errors, 0, "seed {} emitted unparseable SQL", seed);
        prop_assert_eq!(stats.unsupported, 0);
        prop_assert_eq!(stats.distinct_rewritable, stats.distinct_anonymized);
        prop_assert!(qlog.total_queries() >= 800);
        prop_assert!(qlog.avg_features_per_query() > 5.0);
    }

    #[test]
    fn usbank_clean_for_any_seed(seed in any::<u64>()) {
        let config = UsBankConfig {
            seed,
            total_queries: 1_500,
            distinct_templates: 50,
            conjunctive_templates: 42,
            max_multiplicity: 300,
            const_variants_per_template: 2,
            n_schemas: 4,
            tables_per_schema: 4,
            n_applications: 5,
        };
        let log = generate_usbank(&config);
        prop_assert_eq!(log.total(), 1_500);
        let (_, stats) = log.ingest();
        prop_assert_eq!(stats.parse_errors, 0, "seed {} emitted unparseable SQL", seed);
        prop_assert_eq!(stats.unsupported, 0);
        // Constants collapse: strictly more raw strings than templates.
        prop_assert!(stats.distinct_raw > stats.distinct_anonymized);
        prop_assert_eq!(stats.distinct_rewritable, stats.distinct_anonymized);
    }
}
