//! Output plumbing: aligned text tables and CSV files under `results/`.
//!
//! Terminal output is the bench harness's contract, so it flows through
//! explicit stdout/stderr handles ([`emit`]) rather than `println!`
//! scattered through library code; files go through the workspace
//! [`Vfs`](logr_cluster::vfs::Vfs) layer like every other write.

use logr_cluster::vfs::default_vfs;
use std::fmt::Display;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Write one line to stdout through an explicit handle. Reporting is this
/// crate's contract (it renders the paper's tables), so the write is
/// deliberate — and a closed pipe (`bench | head`) is ignored, not a
/// panic.
pub fn emit(line: &str) {
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let _ = writeln!(lock, "{line}");
}

/// Write one line to stderr (warnings), same contract as [`emit`].
pub fn emit_warning(line: &str) {
    let stderr = std::io::stderr();
    let mut lock = stderr.lock();
    let _ = writeln!(lock, "{line}");
}

/// A simple aligned text table that doubles as a CSV writer.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringifies each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Append a row of pre-rendered strings.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// Print to stdout with aligned columns.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = self.write_text(&mut lock);
    }

    /// Render the aligned table to any writer ([`Table::print`] is this
    /// over a stdout lock).
    pub fn write_text(&self, out: &mut dyn Write) -> std::io::Result<()> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line_len: usize = widths.iter().sum::<usize>() + 3 * widths.len();
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(&widths) {
                line.push_str(&format!("{cell:>w$}   ", w = w));
            }
            line.trim_end().to_string()
        };
        writeln!(out, "\n== {} ==", self.title)?;
        writeln!(out, "{}", fmt_row(&self.headers))?;
        writeln!(out, "{}", "-".repeat(line_len.min(160)))?;
        for row in &self.rows {
            writeln!(out, "{}", fmt_row(row))?;
        }
        Ok(())
    }

    /// Write as CSV under `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let dir = results_dir();
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        if let Err(e) = default_vfs().write(&path, out.as_bytes()) {
            emit_warning(&format!("warning: could not write {}: {e}", path.display()));
        } else {
            emit(&format!("   → {}", path.display()));
        }
    }
}

/// The `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = default_vfs().create_dir_all(&dir);
    dir
}

/// Wall-clock time of a closure, in seconds.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Format a float compactly (4 significant decimals).
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || (v.abs() < 0.01 && v.abs() > 0.0) {
        format!("{v:.4e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[&1, &"x"]);
        t.row_strings(vec!["2".into(), "y,z".into()]);
        assert_eq!(t.rows.len(), 2);
        t.print(); // smoke: no panic
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.5000");
        assert!(f(12345.0).contains('e'));
        assert!(f(0.0001).contains('e'));
    }

    #[test]
    fn timing_returns_value() {
        let (v, secs) = time_it(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
