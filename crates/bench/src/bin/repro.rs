//! Reproduction driver: one subcommand per table/figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale quick|default|full]
//! experiments: table1 fig2 fig3 fig4 fig5 table2 fig6 fig7 fig8 fig9 fig10 all
//! ```

use logr_bench::{run_experiment, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut scale = Scale::Default;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("--scale requires a value (quick|default|full)");
                    std::process::exit(2);
                };
                match Scale::parse(value) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{value}' (quick|default|full)");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro <experiment> [--scale quick|default|full]\n\
                     experiments: table1 fig2 fig3 fig4 fig5 table2 fig6 fig7 fig8 fig9 fig10 all"
                );
                return;
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let experiment = experiment.unwrap_or_else(|| "all".to_string());
    println!("LogR reproduction harness — experiment '{experiment}' at {scale:?} scale");
    if let Err(e) = run_experiment(&experiment, scale) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
