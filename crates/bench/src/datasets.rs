//! Shared dataset construction for the harness, with a scale knob.

use logr_feature::{IngestStats, LabeledDataset, QueryLog};
use logr_workload::{
    generate_income, generate_mushroom, generate_pocketdata, generate_usbank, IncomeConfig,
    MushroomConfig, PocketDataConfig, UsBankConfig,
};

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sizes (seconds end-to-end).
    Quick,
    /// Laptop-friendly defaults: paper-scale query totals, reduced trial
    /// counts and sweep densities.
    Default,
    /// Paper-scale everything (larger constant-variant counts, row counts,
    /// trials). Expect long runtimes, as the paper's own were.
    Full,
}

impl Scale {
    /// Parse from a CLI flag.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Clustering trials to average (paper: 10).
    pub fn trials(self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Default => 3,
            Scale::Full => 10,
        }
    }

    /// Cluster-count sweep for Fig. 2/3/5 (paper: 1..30).
    pub fn k_sweep(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1, 2, 4, 6],
            Scale::Default => vec![1, 2, 3, 4, 6, 8, 10, 14, 18, 22, 26, 30],
            Scale::Full => (1..=30).collect(),
        }
    }
}

/// The PocketData-Google+ synthetic log + its ingest statistics.
pub fn pocketdata(scale: Scale) -> (QueryLog, IngestStats) {
    let config = match scale {
        Scale::Quick => PocketDataConfig::small(1),
        _ => PocketDataConfig::default(),
    };
    generate_pocketdata(&config).ingest()
}

/// The US-bank synthetic log + its ingest statistics.
pub fn usbank(scale: Scale) -> (QueryLog, IngestStats) {
    let config = match scale {
        Scale::Quick => UsBankConfig::small(1),
        Scale::Default => UsBankConfig::default(),
        Scale::Full => UsBankConfig::paper_scale(),
    };
    generate_usbank(&config).ingest()
}

/// The census-income synthetic dataset.
pub fn income(scale: Scale) -> LabeledDataset {
    let config = match scale {
        Scale::Quick => IncomeConfig::small(1),
        Scale::Default => IncomeConfig::default(),
        Scale::Full => IncomeConfig::paper_scale(),
    };
    generate_income(&config)
}

/// The mushroom synthetic dataset (always full size — it is small).
pub fn mushroom(scale: Scale) -> LabeledDataset {
    let config = match scale {
        Scale::Quick => MushroomConfig::small(1),
        _ => MushroomConfig::default(),
    };
    generate_mushroom(&config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn sweeps_grow_with_scale() {
        assert!(Scale::Quick.k_sweep().len() < Scale::Default.k_sweep().len());
        assert!(Scale::Default.k_sweep().len() <= Scale::Full.k_sweep().len());
        assert!(Scale::Quick.trials() <= Scale::Full.trials());
    }

    #[test]
    fn quick_datasets_materialize() {
        let (p, pstats) = pocketdata(Scale::Quick);
        assert!(p.total_queries() > 0);
        assert_eq!(pstats.parse_errors, 0);
        let (u, ustats) = usbank(Scale::Quick);
        assert!(u.total_queries() > 0);
        assert_eq!(ustats.parse_errors, 0);
        assert!(income(Scale::Quick).total() > 0);
        assert!(mushroom(Scale::Quick).total() > 0);
    }
}
