//! Figure 6: baseline error versus number of patterns on the baselines'
//! own datasets (§8.1.2), with the naive encoding as the reference.
//!
//! * (a) — Laserlight on Income: error falls with patterns, flattens after
//!   ~100, and the naive encoding beats it at equal verbosity;
//! * (b) — MTV on Mushroom: same shape, capped at 15 patterns.

use crate::datasets::{self, Scale};
use crate::report::{f, Table};
use logr_baselines::{
    laserlight_error_of_naive, mtv_error_of_naive, Laserlight, LaserlightConfig, Mtv, MtvConfig,
};

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let income = datasets::income(scale);
    let mushroom = datasets::mushroom(scale);
    let ll_max = match scale {
        Scale::Quick => 10,
        Scale::Default => 100,
        Scale::Full => 150,
    };

    // (a) Laserlight on Income: a single deep run provides the whole error
    // trajectory.
    let mut a = Table::new(
        "Figure 6a: Laserlight Error v. # patterns (Income)",
        &["n_patterns", "laserlight_error", "naive_reference"],
    );
    let naive_income = laserlight_error_of_naive(&income);
    let summary = Laserlight::new(LaserlightConfig::new(ll_max, 0)).summarize(&income);
    for (i, err) in summary.error_trajectory.iter().enumerate() {
        a.row_strings(vec![i.to_string(), f(*err), f(naive_income)]);
    }
    a.print();
    a.write_csv("fig6a");

    // (b) MTV on Mushroom, 1..=15 patterns.
    let mut b = Table::new(
        "Figure 6b: MTV Error v. # patterns (Mushroom)",
        &["n_patterns", "mtv_error", "naive_reference"],
    );
    let naive_mushroom = mtv_error_of_naive(&mushroom);
    let deep = Mtv::new(MtvConfig::new(15)).summarize(&mushroom).map_err(|e| e.to_string())?;
    for (i, err) in deep.error_trajectory.iter().enumerate() {
        b.row_strings(vec![i.to_string(), f(*err), f(naive_mushroom)]);
    }
    b.print();
    b.write_csv("fig6b");
    Ok(())
}
