//! Figure 4: validating the Reproduction Error metric (§7.1).
//!
//! * (a)/(b) — containment captures Deviation: over pairs of encodings
//!   `E2 ⊃ E1`, the Deviation difference `d(E1) − d(E2)` is positive for
//!   virtually all pairs, binned by the overlap proxy `d(E2 \ E1)`;
//! * (c)/(d) — Error correlates with Deviation across encodings of 1–3
//!   patterns;
//! * (e)/(f) — Error of a naive encoding extended by one pattern correlates
//!   (near-linearly, negatively) with the pattern's `corr_rank`.
//!
//! Encodings are built per §7.1: features with marginals in [0.01, 0.99]
//! form the universe; patterns combine 2–3 of them; encodings are subsets
//! of a shared pattern pool. **All Deviations are estimated on the pool's
//! single pattern-equivalence quotient** (an encoding = the subset of
//! active constraints), so the KL values are directly comparable — the
//! apples-to-apples discipline the paper gets for free by sampling the full
//! space. Deviation is Monte-Carlo (the paper used 10⁶ samples; the sample
//! count here scales with `--scale`).

use crate::datasets::{self, Scale};
use crate::report::{f, Table};
use logr_core::maxent::{ClassSystem, GeneralEncoding};
use logr_core::sampling::{estimate_deviation, quotient_distribution};
use logr_core::{corr_rank, refine::refined_component_error, NaiveEncoding};
use logr_feature::{FeatureId, QueryLog, QueryVector};

/// Shared pattern-pool size (the quotient has up to 2^POOL classes).
const POOL: usize = 8;

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let (pocket, _) = datasets::pocketdata(scale);
    let (bank, _) = datasets::usbank(scale);
    let samples = match scale {
        Scale::Quick => 40,
        Scale::Default => 150,
        Scale::Full => 1_000,
    };

    let mut ab = Table::new(
        "Figure 4a/b: containment captures Deviation (bins of d(E2\\E1))",
        &["dataset", "bin_d_diff", "pairs", "median_dev_drop", "q1", "q3", "frac_positive"],
    );
    let mut cd = Table::new(
        "Figure 4c/d: Error captures Deviation",
        &["dataset", "n_patterns", "error", "deviation"],
    );
    let mut ef = Table::new(
        "Figure 4e/f: Error captures corr_rank (naive + 1 pattern)",
        &["dataset", "n_features", "corr_rank", "error"],
    );

    for (name, log) in [("US bank", &bank), ("PocketData", &pocket)] {
        run_dataset(name, log, samples, &mut ab, &mut cd, &mut ef);
    }
    ab.print();
    ab.write_csv("fig4ab");
    cd.print();
    cd.write_csv("fig4cd");
    ef.print();
    ef.write_csv("fig4ef");
    Ok(())
}

fn run_dataset(
    name: &str,
    log: &QueryLog,
    samples: usize,
    ab: &mut Table,
    cd: &mut Table,
    ef: &mut Table,
) {
    let entries = log.all_entry_indices();
    // §7.1 feature selection: marginals within [0.01, 0.99]; keep the most
    // balanced dozen so the pattern pool stays informative.
    let marginals = log.marginals();
    let mut balanced: Vec<(usize, f64)> = marginals
        .iter()
        .enumerate()
        .filter(|&(_, &p)| (0.01..=0.99).contains(&p))
        .map(|(i, &p)| (i, (p - 0.5).abs()))
        .collect();
    balanced.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let universe_ids: Vec<FeatureId> =
        balanced.iter().take(12).map(|&(i, _)| FeatureId(i as u32)).collect();
    if universe_ids.len() < 4 {
        return;
    }
    let universe = QueryVector::new(universe_ids.clone());

    // Shared pattern pool: the most frequent co-occurring pairs/triples.
    let mut scored: Vec<(QueryVector, u64)> = Vec::new();
    for (ai, &a) in universe_ids.iter().enumerate() {
        for &b in &universe_ids[ai + 1..] {
            let p = QueryVector::new(vec![a, b]);
            let s = log.support(&p);
            if s > 0 {
                scored.push((p, s));
            }
        }
    }
    for chunk in universe_ids.chunks(3) {
        if chunk.len() == 3 {
            let p = QueryVector::new(chunk.to_vec());
            let s = log.support(&p);
            if s > 0 {
                scored.push((p, s));
            }
        }
    }
    scored.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    let pool: Vec<QueryVector> = scored.into_iter().take(POOL).map(|(p, _)| p).collect();
    if pool.len() < 3 {
        return;
    }

    // One quotient for everything.
    let Ok(cs) = ClassSystem::build(&pool) else { return };
    let truth = quotient_distribution(&cs, log, &entries);
    let total = log.total_queries().max(1) as f64;
    let targets: Vec<f64> = pool.iter().map(|p| log.support(p) as f64 / total).collect();

    // Encodings = subsets of the pool with 1..=3 patterns, as bitmasks.
    let mut encodings: Vec<u32> = Vec::new();
    for mask in 1u32..(1 << pool.len()) {
        let k = mask.count_ones();
        if (1..=3).contains(&k) {
            encodings.push(mask);
        }
    }

    // Deviation of each encoding on the shared quotient.
    let deviation_of = |mask: u32, seed: u64| -> f64 {
        let active: Vec<Option<f64>> = targets
            .iter()
            .enumerate()
            .map(|(j, &t)| if mask & (1 << j) != 0 { Some(t) } else { None })
            .collect();
        estimate_deviation(&cs, &active, &truth, samples, seed).mean
    };
    let deviations: Vec<f64> =
        encodings.iter().map(|&mask| deviation_of(mask, mask as u64)).collect();

    // (c)/(d): Error (max-ent over the §7.1 universe) vs Deviation.
    for (&mask, &dev) in encodings.iter().zip(&deviations) {
        if !dev.is_finite() {
            continue;
        }
        let pats: Vec<QueryVector> = pool
            .iter()
            .enumerate()
            .filter(|(j, _)| mask & (1 << *j) != 0)
            .map(|(_, p)| p.clone())
            .collect();
        let tgts: Vec<f64> = targets
            .iter()
            .enumerate()
            .filter(|(j, _)| mask & (1 << *j) != 0)
            .map(|(_, &t)| t)
            .collect();
        if let Ok(err) = GeneralEncoding::new(pats, tgts, universe.len())
            .reproduction_error(log, &entries, &universe)
        {
            cd.row_strings(vec![name.to_string(), mask.count_ones().to_string(), f(err), f(dev)]);
        }
    }

    // (a)/(b): immediate containment pairs E2 = E1 ∪ {b}, all measured on
    // the shared quotient; binned by d({b}).
    let index_of = |mask: u32| encodings.iter().position(|&m| m == mask);
    let mut pairs: Vec<(f64, f64)> = Vec::new(); // (d({b}), d(E1) − d(E2))
    for (i2, &mask2) in encodings.iter().enumerate() {
        if mask2.count_ones() < 2 {
            continue;
        }
        let d2 = deviations[i2];
        if !d2.is_finite() {
            continue;
        }
        for j in 0..pool.len() {
            let bit = 1u32 << j;
            if mask2 & bit == 0 {
                continue;
            }
            let mask1 = mask2 & !bit;
            let (Some(i1), Some(ib)) = (index_of(mask1), index_of(bit)) else { continue };
            let (d1, db) = (deviations[i1], deviations[ib]);
            if d1.is_finite() && db.is_finite() {
                pairs.push((db, d1 - d2));
            }
        }
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n_bins = 6usize;
    if !pairs.is_empty() {
        let per_bin = pairs.len().div_ceil(n_bins);
        for bin in pairs.chunks(per_bin) {
            let mut drops: Vec<f64> = bin.iter().map(|&(_, d)| d).collect();
            drops.sort_by(f64::total_cmp);
            let q = |frac: f64| drops[((drops.len() - 1) as f64 * frac) as usize];
            let positive = drops.iter().filter(|&&d| d > -1e-9).count() as f64 / drops.len() as f64;
            let bin_label = bin.iter().map(|&(x, _)| x).sum::<f64>() / bin.len() as f64;
            ab.row_strings(vec![
                name.to_string(),
                f(bin_label),
                bin.len().to_string(),
                f(q(0.5)),
                f(q(0.25)),
                f(q(0.75)),
                f(positive),
            ]);
        }
    }

    // (e)/(f): naive encoding extended by one pool pattern.
    let naive = NaiveEncoding::from_log(log);
    for p in &pool {
        let rank = corr_rank(log, &entries, p, &naive);
        if let Ok(err) = refined_component_error(log, &entries, &naive, &[(p.clone(), rank)]) {
            ef.row_strings(vec![name.to_string(), p.len().to_string(), f(rank), f(err)]);
        }
    }
}
