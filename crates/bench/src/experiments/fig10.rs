//! Figure 10 / Appendix E: interpretable visualization of the PocketData
//! naive mixture encoding under 8 clusters.
//!
//! Each cluster renders as a pseudo-SQL template whose elements are shaded
//! and annotated by marginal frequency; low-marginal features are omitted
//! ("invisible"), mirroring the paper's presentation.

use crate::datasets::{self, Scale};
use crate::report::{emit, results_dir};
use logr_cluster::vfs::default_vfs;
use logr_cluster::{cluster_log, ClusterMethod, Distance};
use logr_core::interpret::{render_mixture, render_patterns, RenderConfig};
use logr_core::refine::{refine_mixture, RefineConfig};
use logr_core::NaiveMixtureEncoding;

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let (pocket, _) = datasets::pocketdata(scale);
    let k = 8; // the paper's cluster count, "chosen for convenience of visualization"
    let clustering = cluster_log(&pocket, k, ClusterMethod::Spectral(Distance::Hamming), 1);
    let mixture = NaiveMixtureEncoding::build(&pocket, &clustering);
    let mut text = render_mixture(&mixture, pocket.codebook(), &RenderConfig::default());

    // Fig. 1b's correlation-aware companion view: the strongest correlated
    // pattern groups of the heaviest cluster, highlighted together.
    let refined = refine_mixture(&pocket, &mixture, &RefineConfig::default());
    let heaviest = (0..mixture.k())
        .max_by(|&a, &b| mixture.components()[a].weight.total_cmp(&mixture.components()[b].weight))
        .unwrap_or(0);
    let total = mixture.components()[heaviest].total.max(1) as f64;
    let scored: Vec<(logr_feature::QueryVector, f64)> = refined.added[heaviest]
        .iter()
        .map(|(p, _)| {
            let freq =
                pocket.support_for(p, &mixture.components()[heaviest].entries) as f64 / total;
            (p.clone(), freq)
        })
        .collect();
    if !scored.is_empty() {
        text.push_str("\n\n-- correlation-aware view (Fig. 1b), heaviest cluster:\n");
        text.push_str(&render_patterns(&scored, pocket.codebook()));
    }

    emit(&format!("\n== Figure 10: PocketData naive mixture encoding, {k} clusters =="));
    emit(&text);

    let path = results_dir().join("fig10.txt");
    default_vfs().write(&path, text.as_bytes()).map_err(|e| e.to_string())?;
    emit(&format!("   → {}", path.display()));
    Ok(())
}
