//! One module per reproduced table/figure. See DESIGN.md §5 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.

pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;

use logr_feature::QueryVector;
use logr_feature::{FeatureId, LabeledDataset, QueryLog};

/// Convert (a subset of) a query log into a labeled dataset for the
/// baselines, using the paper's Appendix D.1 recipe: restrict to the
/// `max_features` highest-entropy features (Laserlight's PostgreSQL
/// implementation caps at 100 arguments), and use the highest-entropy
/// feature as the binary outcome attribute.
pub fn log_to_labeled(
    log: &QueryLog,
    entries: &[usize],
    max_features: usize,
) -> Option<(LabeledDataset, FeatureId)> {
    use logr_math::binary_entropy;
    let marginals = log.marginals_for(entries);
    let mut ranked: Vec<(usize, f64)> = marginals
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p > 0.0 && p < 1.0)
        .map(|(i, &p)| (i, binary_entropy(p)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let label_feature = FeatureId(ranked.first()?.0 as u32);
    let kept: Vec<FeatureId> =
        ranked.iter().skip(1).take(max_features).map(|&(i, _)| FeatureId(i as u32)).collect();
    let keep_set = QueryVector::new(kept);

    let mut data = LabeledDataset::new(log.num_features());
    for &i in entries {
        let (v, c) = &log.entries()[i];
        let label = v.contains(label_feature);
        data.push(v.intersection(&keep_set), label, *c);
    }
    Some((data, label_feature))
}

/// Convert (a subset of) a query log into an unlabeled dataset (dummy
/// labels) for MTV, which summarizes the transactions themselves.
pub fn log_to_transactions(log: &QueryLog, entries: &[usize]) -> LabeledDataset {
    let mut data = LabeledDataset::new(log.num_features());
    for &i in entries {
        let (v, c) = &log.entries()[i];
        data.push(v.clone(), false, *c);
    }
    data
}
