//! Table 1: summary statistics of the two query-log datasets, computed by
//! running the full ingestion pipeline on the synthetic logs, side by side
//! with the paper's published values.

use crate::datasets::{self, Scale};
use crate::report::Table;

/// Paper values for (PocketData, US bank), by row.
const PAPER: &[(&str, u64, u64)] = &[
    ("# Queries", 629_582, 1_244_243),
    ("# Distinct queries", 605, 188_184),
    ("# Distinct queries (w/o const)", 605, 1_712),
    ("# Distinct conjunctive queries", 135, 1_494),
    ("# Distinct re-writable queries", 605, 1_712),
    ("Max query multiplicity", 48_651, 208_742),
    ("# Distinct features", 863, 144_708),
    ("# Distinct features (w/o const)", 863, 5_290),
];

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let (pocket_log, pocket) = datasets::pocketdata(scale);
    let (bank_log, bank) = datasets::usbank(scale);

    let measured: Vec<(u64, u64)> = vec![
        (pocket.parsed_selects, bank.parsed_selects),
        (pocket.distinct_raw as u64, bank.distinct_raw as u64),
        (pocket.distinct_anonymized as u64, bank.distinct_anonymized as u64),
        (pocket.distinct_conjunctive as u64, bank.distinct_conjunctive as u64),
        (pocket.distinct_rewritable as u64, bank.distinct_rewritable as u64),
        (pocket.max_multiplicity, bank.max_multiplicity),
        (pocket.features_with_const as u64, bank.features_with_const as u64),
        (pocket_log.num_features() as u64, bank_log.num_features() as u64),
    ];

    let mut table = Table::new(
        "Table 1: Summary of data sets (paper value | measured on synthetic)",
        &["Statistic", "PocketData (paper)", "PocketData", "US bank (paper)", "US bank"],
    );
    for ((name, p_paper, b_paper), (p_meas, b_meas)) in PAPER.iter().zip(measured) {
        table.row_strings(vec![
            name.to_string(),
            p_paper.to_string(),
            p_meas.to_string(),
            b_paper.to_string(),
            b_meas.to_string(),
        ]);
    }
    table.row_strings(vec![
        "Average features per query".into(),
        "14.78".into(),
        format!("{:.2}", pocket_log.avg_features_per_query()),
        "16.56".into(),
        format!("{:.2}", bank_log.avg_features_per_query()),
    ]);
    table.print();
    table.write_csv("table1");
    Ok(())
}
