//! Figure 2: Error (a), Total Verbosity (b) and runtime (c) versus the
//! number of clusters, for the four clustering configurations of §6.1
//! (spectral Minkowski-4 / Manhattan / Hamming, KMeans-Euclidean) on both
//! datasets — plus hierarchical-Hamming as the §6.1.1 monotonic extension.
//!
//! Paper claims to reproduce: more clusters ⇒ lower Error (a) and higher
//! Verbosity (b); KMeans orders of magnitude faster (c); Hamming converges
//! fastest on PocketData; US bank needs more clusters than PocketData.

use crate::datasets::{self, Scale};
use crate::report::{f, time_it, Table};
use logr_cluster::{cluster_log, ClusterMethod, Distance};
use logr_core::NaiveMixtureEncoding;
use logr_feature::QueryLog;

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let (pocket, _) = datasets::pocketdata(scale);
    let (bank, _) = datasets::usbank(scale);

    let mut table = Table::new(
        "Figure 2: Error / Verbosity / Runtime v. number of clusters",
        &["dataset", "method", "k", "error", "verbosity", "runtime_s"],
    );
    for (name, log) in [("PocketData", &pocket), ("USbank", &bank)] {
        sweep(name, log, scale, &mut table);
    }
    table.print();
    table.write_csv("fig2");
    Ok(())
}

fn sweep(name: &str, log: &QueryLog, scale: Scale, table: &mut Table) {
    let mut methods = ClusterMethod::paper_lineup().to_vec();
    methods.push(ClusterMethod::Hierarchical(Distance::Hamming));
    for method in methods {
        for &k in &scale.k_sweep() {
            let trials = scale.trials();
            let (mut err_sum, mut verb_sum, mut time_sum) = (0.0, 0.0, 0.0);
            for trial in 0..trials {
                let ((error, verbosity), secs) = time_it(|| {
                    let clustering = cluster_log(log, k, method, trial as u64);
                    let mixture = NaiveMixtureEncoding::build(log, &clustering);
                    (mixture.error(), mixture.total_verbosity())
                });
                err_sum += error;
                verb_sum += verbosity as f64;
                time_sum += secs;
            }
            let t = trials as f64;
            table.row_strings(vec![
                name.to_string(),
                method.label(),
                k.to_string(),
                f(err_sum / t),
                f(verb_sum / t),
                f(time_sum / t),
            ]);
        }
    }
}
