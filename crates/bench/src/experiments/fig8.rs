//! Figure 8: Laserlight Mixture Fixed versus classical Laserlight on the
//! Income dataset (§8.1.3).
//!
//! A fixed global budget of 100 patterns (where the paper observed the
//! error curve flattening, Fig. 6a) is split across clusters with the
//! Appendix D.3 weights. Paper claims to reproduce: both error and runtime
//! improve (roughly exponentially) as the data is partitioned.

use crate::datasets::{self, Scale};
use crate::report::{f, time_it, Table};
use logr_baselines::laserlight_mixture_fixed;

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let income = datasets::income(scale);
    let (budget, ks): (usize, Vec<usize>) = match scale {
        Scale::Quick => (12, vec![1, 2, 4]),
        _ => (100, vec![1, 2, 4, 6, 8, 10, 12, 14, 16, 18]),
    };

    let mut table = Table::new(
        "Figure 8: Laserlight Mixture Fixed v. Classical (Income)",
        &["k", "error_weighted", "error_total", "runtime_s"],
    );
    for &k in &ks {
        let (run, secs) = time_it(|| laserlight_mixture_fixed(&income, k, budget, 7));
        table.row_strings(vec![
            k.to_string(),
            f(run.combined_weighted),
            f(run.combined_sum),
            f(secs),
        ]);
    }
    table.print();
    table.write_csv("fig8");
    Ok(())
}
