//! Figure 7: baseline runtime versus number of patterns mined.
//!
//! Paper claim to reproduce: runtime grows superlinearly with the pattern
//! count for both Laserlight (Income) and MTV (Mushroom).

use crate::datasets::{self, Scale};
use crate::report::{f, time_it, Table};
use logr_baselines::{Laserlight, LaserlightConfig, Mtv, MtvConfig};

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let income = datasets::income(scale);
    let mushroom = datasets::mushroom(scale);
    let ll_counts: Vec<usize> = match scale {
        Scale::Quick => vec![2, 4, 6],
        Scale::Default => vec![10, 25, 50, 75, 100],
        Scale::Full => vec![10, 50, 100, 200, 400, 700],
    };
    let mtv_counts: Vec<usize> = match scale {
        Scale::Quick => vec![1, 2, 3],
        _ => vec![1, 3, 5, 8, 11, 15],
    };

    let mut a = Table::new(
        "Figure 7a: Laserlight run time v. # patterns (Income)",
        &["n_patterns", "runtime_s"],
    );
    for &n in &ll_counts {
        let (_, secs) = time_it(|| Laserlight::new(LaserlightConfig::new(n, 0)).summarize(&income));
        a.row_strings(vec![n.to_string(), f(secs)]);
    }
    a.print();
    a.write_csv("fig7a");

    let mut b = Table::new(
        "Figure 7b: MTV run time v. # patterns (Mushroom)",
        &["n_patterns", "runtime_s"],
    );
    for &n in &mtv_counts {
        let (result, secs) = time_it(|| Mtv::new(MtvConfig::new(n)).summarize(&mushroom));
        result.map_err(|e| e.to_string())?;
        b.row_strings(vec![n.to_string(), f(secs)]);
    }
    b.print();
    b.write_csv("fig7b");
    Ok(())
}
