//! Figure 9: naive mixture encoding versus Laserlight/MTV Mixture Scaled on
//! the Mushroom dataset (§8.1.4), evaluated under the baselines' own error
//! measures.
//!
//! Paper claims to reproduce: (a) both mixtures beat their unpartitioned
//! baselines; Laserlight Mixture Scaled wins at small K and the two
//! converge by ~6 clusters; (b) the naive mixture (marginally) outperforms
//! MTV Mixture Scaled throughout.

use crate::datasets::{self, Scale};
use crate::report::{f, Table};
use logr_baselines::{
    laserlight_error_of_naive, laserlight_mixture_scaled, mixtures::cluster_dataset,
    mtv_error_of_naive, mtv_mixture_scaled, Laserlight, LaserlightConfig, Mtv, MtvConfig,
};
use logr_feature::LabeledDataset;

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let mushroom = datasets::mushroom(scale);
    let ks: Vec<usize> = match scale {
        Scale::Quick => vec![2, 4],
        _ => vec![2, 4, 6, 8, 10, 12, 14, 16, 18],
    };

    // Reference lines (K = 1): naive encoding and the classical miners at
    // the common 15-pattern configuration.
    let naive_ll = laserlight_error_of_naive(&mushroom);
    let naive_mtv = mtv_error_of_naive(&mushroom);
    let classical_ll = Laserlight::new(LaserlightConfig::new(15, 0)).summarize(&mushroom).error;
    let classical_mtv =
        Mtv::new(MtvConfig::new(15)).summarize(&mushroom).map_err(|e| e.to_string())?.error;

    let mut a = Table::new(
        "Figure 9a: Laserlight Error v. # clusters (Mushroom)",
        &["k", "naive_mixture", "laserlight_mixture_scaled", "naive_ref", "classical_ref"],
    );
    let mut b = Table::new(
        "Figure 9b: MTV Error v. # clusters (Mushroom)",
        &["k", "naive_mixture", "mtv_mixture_scaled", "naive_ref", "classical_ref"],
    );

    for &k in &ks {
        let clustering = cluster_dataset(&mushroom, k, 7);
        let groups: Vec<Vec<usize>> =
            clustering.members().into_iter().filter(|g| !g.is_empty()).collect();

        // Naive mixture evaluated under each baseline's measure (§8.1.1's
        // generalization: weighted average over clusters).
        let naive_mix_ll = combine(&mushroom, &groups, laserlight_error_of_naive);
        let naive_mix_mtv = combine(&mushroom, &groups, mtv_error_of_naive);

        let ll_scaled = laserlight_mixture_scaled(&mushroom, k, 7);
        let mtv_scaled = mtv_mixture_scaled(&mushroom, k, 7).map_err(|e| e.to_string())?;

        a.row_strings(vec![
            k.to_string(),
            f(naive_mix_ll),
            f(ll_scaled.combined_weighted),
            f(naive_ll),
            f(classical_ll),
        ]);
        b.row_strings(vec![
            k.to_string(),
            f(naive_mix_mtv),
            f(mtv_scaled.combined_weighted),
            f(naive_mtv),
            f(classical_mtv),
        ]);
    }
    a.print();
    a.write_csv("fig9a");
    b.print();
    b.write_csv("fig9b");
    Ok(())
}

/// §5.2-weighted combination of a per-cluster error measure.
fn combine(
    data: &LabeledDataset,
    groups: &[Vec<usize>],
    measure: impl Fn(&LabeledDataset) -> f64,
) -> f64 {
    let total = data.total().max(1) as f64;
    groups
        .iter()
        .map(|g| {
            let cluster = data.subset(g);
            let w = cluster.total() as f64 / total;
            w * measure(&cluster)
        })
        .sum()
}
