//! Figure 3: effectiveness of naive mixture encodings — synthesis error (a)
//! and marginal deviation (b) versus Reproduction Error, across the cluster
//! sweep.
//!
//! Paper claims to reproduce: both diagnostics fall as more clusters reduce
//! Reproduction Error, and both correlate with it (N = 10,000 synthesized
//! patterns per partition).

use crate::datasets::{self, Scale};
use crate::report::{f, Table};
use logr_cluster::{cluster_log, ClusterMethod};
use logr_core::{marginal_deviation, synthesis_error, NaiveMixtureEncoding};

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let (pocket, _) = datasets::pocketdata(scale);
    let (bank, _) = datasets::usbank(scale);
    let n_synth = match scale {
        Scale::Quick => 500,
        Scale::Default => 10_000,
        Scale::Full => 10_000,
    };

    let mut table = Table::new(
        "Figure 3: Synthesis Error & Marginal Deviation v. Reproduction Error",
        &["dataset", "k", "reproduction_error", "synthesis_error", "marginal_deviation"],
    );
    for (name, log) in [("pocket data", &pocket), ("bank data", &bank)] {
        for &k in &scale.k_sweep() {
            let clustering = cluster_log(log, k, ClusterMethod::KMeansEuclidean, 0);
            let mixture = NaiveMixtureEncoding::build(log, &clustering);
            let synth = synthesis_error(log, &mixture, n_synth, 42);
            let dev = marginal_deviation(log, &mixture);
            table.row_strings(vec![
                name.to_string(),
                k.to_string(),
                f(mixture.error()),
                f(synth),
                f(dev),
            ]);
        }
    }
    table.print();
    table.write_csv("fig3");
    Ok(())
}
