//! Table 2: summary statistics of the alternative-application datasets
//! (Income for Laserlight, Mushroom for MTV), paper vs synthetic.

use crate::datasets::{self, Scale};
use crate::report::Table;

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let income = datasets::income(scale);
    let mushroom = datasets::mushroom(scale);

    let income_attrs = 9;
    let mushroom_attrs = 21;

    let mut table = Table::new(
        "Table 2: Data sets of alternative applications (paper | measured)",
        &["Statistic", "Income (paper)", "Income", "Mushroom (paper)", "Mushroom"],
    );
    table.row_strings(vec![
        "# Distinct data tuples".into(),
        "777493".into(),
        income.distinct().to_string(),
        "8124".into(),
        mushroom.distinct().to_string(),
    ]);
    table.row_strings(vec![
        "# Features per tuple".into(),
        "9".into(),
        income_attrs.to_string(),
        "21".into(),
        mushroom_attrs.to_string(),
    ]);
    table.row_strings(vec![
        "# Distinct features".into(),
        "783".into(),
        income.n_features().to_string(),
        "95".into(),
        mushroom.n_features().to_string(),
    ]);
    table.row_strings(vec![
        "Binary classification feature".into(),
        "> 100,000?".into(),
        format!("income>100k (rate {:.2})", income.label_rate()),
        "Edibility".into(),
        format!("edible (rate {:.2})", mushroom.label_rate()),
    ]);
    table.row_strings(vec![
        "Total rows".into(),
        "777493".into(),
        income.total().to_string(),
        "8124".into(),
        mushroom.total().to_string(),
    ]);
    table.print();
    table.write_csv("table2");
    Ok(())
}
