//! Figure 5: naive mixture encodings versus Laserlight/MTV (§7.2), on the
//! US-bank workload.
//!
//! * (a) — refining the naive mixture with patterns mined by Laserlight or
//!   MTV buys only a small Error reduction;
//! * (b) — encodings built from the miners' patterns *alone* have Errors
//!   orders of magnitude above the naive mixture (log scale);
//! * (c) — the naive mixture is orders of magnitude faster to construct.
//!
//! Laserlight consumes the log per Appendix D.1: top-100 features by
//! entropy, the most-entropic feature as the outcome attribute. Both miners
//! are capped at 15 patterns per cluster (§D "Common Configuration").

use crate::datasets::{self, Scale};
use crate::experiments::{log_to_labeled, log_to_transactions};
use crate::report::{f, time_it, Table};
use logr_baselines::{Laserlight, LaserlightConfig, Mtv, MtvConfig};
use logr_cluster::{cluster_log, ClusterMethod};
use logr_core::maxent::GeneralEncoding;
use logr_core::refine::refined_component_error;
use logr_core::{empirical_entropy_for, NaiveMixtureEncoding};
use logr_feature::{QueryLog, QueryVector};

/// Run the experiment.
pub fn run(scale: Scale) -> Result<(), String> {
    let (bank, _) = datasets::usbank(scale);
    let mut table = Table::new(
        "Figure 5: Naive mixture v. Laserlight/MTV refinement (US bank)",
        &[
            "k",
            "naive_error",
            "laserlight_refined",
            "mtv_refined",
            "laserlight_alone",
            "mtv_alone",
            "naive_time_s",
            "laserlight_time_s",
            "mtv_time_s",
        ],
    );

    for &k in &scale.k_sweep() {
        let (mixture, naive_secs) = time_it(|| {
            let clustering = cluster_log(&bank, k, ClusterMethod::KMeansEuclidean, 0);
            NaiveMixtureEncoding::build(&bank, &clustering)
        });

        let ((ll_refined, ll_alone), ll_secs) = time_it(|| laserlight_pass(&bank, &mixture));
        let ((mtv_refined, mtv_alone), mtv_secs) = time_it(|| mtv_pass(&bank, &mixture));

        table.row_strings(vec![
            k.to_string(),
            f(mixture.error()),
            f(ll_refined),
            f(mtv_refined),
            f(ll_alone),
            f(mtv_alone),
            f(naive_secs),
            f(ll_secs),
            f(mtv_secs),
        ]);
    }
    table.print();
    table.write_csv("fig5");
    Ok(())
}

/// Per-cluster Laserlight: mine 15 patterns, then (refined) plug them into
/// the naive encoding, and (alone) use them as the only patterns.
fn laserlight_pass(log: &QueryLog, mixture: &NaiveMixtureEncoding) -> (f64, f64) {
    let mut refined = 0.0;
    let mut alone = 0.0;
    for component in mixture.components() {
        let patterns = match log_to_labeled(log, &component.entries, 100) {
            Some((data, _label)) => {
                let summary = Laserlight::new(LaserlightConfig::new(15, 0)).summarize(&data);
                summary
                    .patterns
                    .into_iter()
                    .map(|(p, _)| p)
                    .filter(|p| !p.is_empty())
                    .collect::<Vec<_>>()
            }
            None => Vec::new(),
        };
        refined += component.weight * refined_error(log, component, &patterns);
        alone += component.weight * alone_error(log, component, &patterns);
    }
    (refined, alone)
}

/// Per-cluster MTV: mine up to 15 itemsets from the cluster's transactions.
fn mtv_pass(log: &QueryLog, mixture: &NaiveMixtureEncoding) -> (f64, f64) {
    let mut refined = 0.0;
    let mut alone = 0.0;
    for component in mixture.components() {
        let data = log_to_transactions(log, &component.entries);
        let patterns: Vec<QueryVector> = Mtv::new(MtvConfig::new(15))
            .summarize(&data)
            .map(|s| s.itemsets.into_iter().map(|(p, _)| p).collect())
            .unwrap_or_default();
        refined += component.weight * refined_error(log, component, &patterns);
        alone += component.weight * alone_error(log, component, &patterns);
    }
    (refined, alone)
}

fn refined_error(
    log: &QueryLog,
    component: &logr_core::mixture::MixtureComponent,
    patterns: &[QueryVector],
) -> f64 {
    let scored: Vec<(QueryVector, f64)> = patterns.iter().map(|p| (p.clone(), 0.0)).collect();
    refined_component_error(log, &component.entries, &component.encoding, &scored)
        .unwrap_or(component.error)
}

/// Error of the pattern-only encoding over the component's support
/// universe (Fig. 5b: what the miners' patterns convey by themselves).
fn alone_error(
    log: &QueryLog,
    component: &logr_core::mixture::MixtureComponent,
    patterns: &[QueryVector],
) -> f64 {
    let universe_size = component.encoding.verbosity();
    if patterns.is_empty() {
        // Empty encoding: max-ent is uniform over the support universe.
        return universe_size as f64 * std::f64::consts::LN_2
            - empirical_entropy_for(log, &component.entries);
    }
    let enc = GeneralEncoding::measure(log, &component.entries, patterns.to_vec(), universe_size);
    match enc.entropy() {
        Ok(h) => h - empirical_entropy_for(log, &component.entries),
        Err(_) => universe_size as f64 * std::f64::consts::LN_2,
    }
}
