//! Reproduction harness for the LogR paper's evaluation.
//!
//! One module per table/figure (see DESIGN.md §5 for the experiment index).
//! The `repro` binary dispatches to [`experiments`]; every experiment
//! prints an aligned text table to stdout and writes a CSV under
//! `results/`.
//!
//! Absolute numbers will differ from the paper (synthetic data, different
//! machine, Rust vs Python/MATLAB/PostgreSQL substrates) — the claims being
//! reproduced are the *shapes*: who wins, convergence trends, crossovers,
//! and orders of magnitude between methods. EXPERIMENTS.md records
//! paper-vs-measured for every artifact.

pub mod datasets;
pub mod experiments;
pub mod report;

pub use datasets::Scale;

/// Run one experiment by id (`table1`, `fig2` … `fig10`, or `all`).
pub fn run_experiment(id: &str, scale: Scale) -> Result<(), String> {
    match id {
        "table1" => experiments::table1::run(scale),
        "fig2" => experiments::fig2::run(scale),
        "fig3" => experiments::fig3::run(scale),
        "fig4" => experiments::fig4::run(scale),
        "fig5" => experiments::fig5::run(scale),
        "table2" => experiments::table2::run(scale),
        "fig6" => experiments::fig6::run(scale),
        "fig7" => experiments::fig7::run(scale),
        "fig8" => experiments::fig8::run(scale),
        "fig9" => experiments::fig9::run(scale),
        "fig10" => experiments::fig10::run(scale),
        "all" => {
            for id in [
                "table1", "fig2", "fig3", "fig4", "fig5", "table2", "fig6", "fig7", "fig8", "fig9",
                "fig10",
            ] {
                run_experiment(id, scale)?;
            }
            Ok(())
        }
        other => Err(format!(
            "unknown experiment '{other}' (expected table1, fig2..fig10, table2, or all)"
        )),
    }
}
