//! Ablation: the distance kernel and the distance measure.
//!
//! Two questions, one group (`distance_matrix`):
//!
//! 1. **Kernel A/B** — sparse id-merge baseline ([`distance_matrix`])
//!    versus the dense popcount engine ([`PointSet::distances`]) on the
//!    same ≥2k-vector workload. The dense path also amortizes one
//!    batch conversion (benchmarked separately as `dense_convert`).
//! 2. **Metric ablation** — the §6.1 measures inside the same dense
//!    pipeline (paper take-away §6.1.1: Hamming offers the best
//!    Error/runtime trade-off). Runtime here; the Error side lives in
//!    `repro fig2`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr_cluster::{distance_matrix, Distance, PointSet};
use logr_feature::{FeatureId, QueryVector};
use logr_workload::{generate_pocketdata, PocketDataConfig};

/// Deterministic synthetic workload: `n` sparse vectors over a `universe`
/// sized like the paper's distinct-query regimes.
fn synthetic_vectors(n: usize, universe: u32, avg_set: u32) -> Vec<QueryVector> {
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let len = 3 + (next() % (2 * avg_set as u64 - 5)) as u32;
            QueryVector::new((0..len).map(|_| FeatureId(next() as u32 % universe)).collect())
        })
        .collect()
}

fn bench_kernel_ab(c: &mut Criterion) {
    // ≥2k vectors: the scale where clustering cost dominates compression.
    let vectors = synthetic_vectors(2048, 512, 12);
    let refs: Vec<&QueryVector> = vectors.iter().collect();
    let nf = 512;

    let mut group = c.benchmark_group("distance_matrix");
    group.bench_function("sparse_baseline/hamming-2048", |b| {
        b.iter(|| distance_matrix(black_box(&refs), Distance::Hamming, nf))
    });
    group.bench_function("dense_kernel/hamming-2048", |b| {
        let points = PointSet::from_vectors(&refs, nf);
        b.iter(|| black_box(&points).distances(Distance::Hamming))
    });
    group.bench_function("dense_convert/2048", |b| {
        b.iter(|| PointSet::from_vectors(black_box(&refs), nf))
    });
    group.bench_function("dense_end_to_end/hamming-2048", |b| {
        b.iter(|| PointSet::from_vectors(black_box(&refs), nf).distances(Distance::Hamming))
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let (log, _) = generate_pocketdata(&PocketDataConfig::small(1)).ingest();
    let points = PointSet::from_log(&log);

    let mut group = c.benchmark_group("distance_matrix");
    for metric in [
        Distance::Euclidean,
        Distance::Manhattan,
        Distance::Minkowski(4.0),
        Distance::Hamming,
        Distance::Chebyshev,
        Distance::Canberra,
    ] {
        group.bench_function(metric.label(), |b| b.iter(|| black_box(&points).distances(metric)));
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_ab, bench_metrics);
criterion_main!(benches);
