//! Ablation: the distance measure inside the same spectral pipeline
//! (paper take-away §6.1.1: Hamming offers the best Error/runtime
//! trade-off). Runtime here; the Error side lives in `repro fig2`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr_cluster::{distance_matrix, Distance};
use logr_feature::QueryVector;
use logr_workload::{generate_pocketdata, PocketDataConfig};

fn bench_distances(c: &mut Criterion) {
    let (log, _) = generate_pocketdata(&PocketDataConfig::small(1)).ingest();
    let points: Vec<&QueryVector> = log.entries().iter().map(|(v, _)| v).collect();
    let nf = log.num_features();

    let mut group = c.benchmark_group("distance_matrix");
    for metric in [
        Distance::Euclidean,
        Distance::Manhattan,
        Distance::Minkowski(4.0),
        Distance::Hamming,
        Distance::Chebyshev,
        Distance::Canberra,
    ] {
        group.bench_function(metric.label(), |b| {
            b.iter(|| distance_matrix(black_box(&points), metric, nf))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
