//! Daemon throughput: mixed ingest/query traffic over loopback.
//!
//! An in-process loadgen drives a real [`logr_server::Server`] (real
//! sockets, real store directory, group commit at a 2 ms interval) with
//! the PR 9 acceptance mix — 70% window-sized ingest batches, 30% reads
//! (frequency / top-k / stats) — and reports frames/sec, statements/sec,
//! and p50/p99 frame latency at 1 and 4 worker threads. Connections are
//! matched to worker threads (a worker owns a connection for its
//! lifetime), so the 1-thread row is the per-core serial ceiling and the
//! 4-thread row shows what thread-level overlap buys (nothing on a
//! 1-core box — that is the honest curve recorded in `BENCH_pr9.json`).
//!
//! The deterministic report prints to stderr once; criterion then times
//! the 1-thread mixed round trip for regression tracking.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr_server::json::{self, Json};
use logr_server::{EngineProfile, Server, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WINDOW: u64 = 8;

/// A templated workload (the paper's setting): 273 distinct shapes per
/// tenant, so window closes stay `O(window)` instead of growing a novel
/// codebook forever — per-frame cost reflects the daemon, not an
/// unboundedly hardening workload.
fn statement(tenant: &str, i: u64) -> String {
    format!("SELECT c{} FROM {tenant}_t{} WHERE a{} = ?", i % 13, i % 3, i % 7)
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("logr-server-bench-{tag}-{}", std::process::id()))
}

fn serve(tag: &str, threads: usize) -> (ServerHandle, PathBuf) {
    let dir = bench_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig::new(&dir)
        .profile(EngineProfile { window: WINDOW, clusters: 2, seed: 7, ..EngineProfile::default() })
        .threads(threads)
        .commit_interval(Duration::from_millis(2));
    let handle = Server::bind(config, "127.0.0.1:0").expect("bind").spawn();
    (handle, dir)
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn call(&mut self, frame: &str) -> Json {
        writeln!(self.stream, "{frame}").expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        let resp = json::parse(line.trim_end()).expect("response parses");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "frame failed: {line}");
        resp
    }
}

fn ingest_frame(tenant: &str, round: u64) -> String {
    let stmts: Vec<String> =
        (0..WINDOW).map(|i| format!("\"{}\"", statement(tenant, round * WINDOW + i))).collect();
    format!("{{\"op\":\"ingest\",\"tenant\":\"{tenant}\",\"statements\":[{}]}}", stmts.join(","))
}

/// The acceptance mix, one frame per op: 7 of every 10 frames ingest a
/// window-sized batch, the rest rotate over the read surface.
fn mixed_frame(tenant: &str, op: u64) -> String {
    if op % 10 < 7 {
        ingest_frame(tenant, op)
    } else {
        match op % 3 {
            0 => format!(
                "{{\"op\":\"frequency\",\"tenant\":\"{tenant}\",\"pred\":{{\"table\":\"{tenant}_t0\"}}}}"
            ),
            1 => format!("{{\"op\":\"top_k\",\"tenant\":\"{tenant}\",\"class\":\"from\",\"k\":5}}"),
            _ => format!("{{\"op\":\"stats\",\"tenant\":\"{tenant}\"}}"),
        }
    }
}

struct LoadReport {
    frames: u64,
    statements: u64,
    elapsed: Duration,
    p50_us: u64,
    p99_us: u64,
}

struct Percentiles(Vec<u64>);

impl Percentiles {
    fn at(&self, p: f64) -> u64 {
        self.0[((self.0.len() - 1) as f64 * p) as usize]
    }
}

/// Drive `conns` connections (one tenant each) through two measured
/// phases — `frames_per_conn` mixed frames (70% durable ingest, acks
/// gated on group commit), then `frames_per_conn` pure read frames off
/// the warmed snapshots — collecting per-frame round-trip latencies.
/// Per-tenant work is identical at every thread count, so the rows
/// compare thread-level overlap, not workload depth.
fn run_load(
    tag: &str,
    threads: usize,
    conns: usize,
    frames_per_conn: u64,
) -> (LoadReport, LoadReport) {
    let (handle, dir) = serve(tag, threads);
    let addr = handle.addr();
    let workers: Vec<_> = (0..conns)
        .map(|w| {
            std::thread::spawn(move || {
                let tenant = format!("t{w}");
                let mut client = Client::connect(addr);
                let mut mixed = Vec::with_capacity(frames_per_conn as usize);
                let mut statements = 0u64;
                for op in 0..frames_per_conn {
                    let frame = mixed_frame(&tenant, op);
                    let start = Instant::now();
                    client.call(&frame);
                    mixed.push(start.elapsed().as_micros() as u64);
                    if op % 10 < 7 {
                        statements += WINDOW;
                    }
                }
                let mut reads = Vec::with_capacity(frames_per_conn as usize);
                for op in 0..frames_per_conn {
                    // Skew 7/10 of the frames onto ingest's read ops so
                    // the phase mirrors the mixed rotation shape.
                    let frame = mixed_frame(&tenant, 7 + 10 * op);
                    let start = Instant::now();
                    client.call(&frame);
                    reads.push(start.elapsed().as_micros() as u64);
                }
                (mixed, reads, statements)
            })
        })
        .collect();
    let start = Instant::now();
    let mut mixed = Vec::new();
    let mut reads = Vec::new();
    let mut statements = 0u64;
    for w in workers {
        let (m, r, stmts) = w.join().expect("loadgen thread");
        mixed.extend(m);
        reads.extend(r);
        statements += stmts;
    }
    let total = start.elapsed();
    handle.shutdown();
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    mixed.sort_unstable();
    reads.sort_unstable();
    let mixed_us: u64 = mixed.iter().sum();
    let reads_us: u64 = reads.iter().sum();
    // Wall split: apportion measured wall time by summed frame latency
    // (workers interleave phases, so per-phase wall is not observable
    // directly without a barrier that would distort the pipeline).
    let mixed_wall = total.mul_f64(mixed_us as f64 / (mixed_us + reads_us).max(1) as f64);
    let read_wall = total - mixed_wall;
    let mixed_p = Percentiles(mixed);
    let read_p = Percentiles(reads);
    (
        LoadReport {
            frames: mixed_p.0.len() as u64,
            statements,
            elapsed: mixed_wall,
            p50_us: mixed_p.at(0.50),
            p99_us: mixed_p.at(0.99),
        },
        LoadReport {
            frames: read_p.0.len() as u64,
            statements: 0,
            elapsed: read_wall,
            p50_us: read_p.at(0.50),
            p99_us: read_p.at(0.99),
        },
    )
}

fn report(threads: usize, conns: usize, frames_per_conn: u64) {
    let (mixed, reads) = run_load(&format!("load{threads}"), threads, conns, frames_per_conn);
    let secs = mixed.elapsed.as_secs_f64();
    eprintln!(
        "server mixed load, {threads} worker thread(s) x {conns} conn(s): \
         {:.0} frames/s ({:.0} ingested statements/s), \
         p50 {} us, p99 {} us over {} frames",
        mixed.frames as f64 / secs,
        mixed.statements as f64 / secs,
        mixed.p50_us,
        mixed.p99_us,
        mixed.frames,
    );
    let secs = reads.elapsed.as_secs_f64();
    eprintln!(
        "server read-only load, {threads} worker thread(s) x {conns} conn(s): \
         {:.0} frames/s, p50 {} us, p99 {} us over {} frames",
        reads.frames as f64 / secs,
        reads.p50_us,
        reads.p99_us,
        reads.frames,
    );
}

fn server_bench(c: &mut Criterion) {
    report(1, 1, 400);
    report(4, 4, 400);

    // Criterion regression hook: one mixed 10-frame round on a pinned
    // 1-thread daemon (7 window ingests + 3 reads per iteration).
    let (handle, dir) = serve("criterion", 1);
    let addr = handle.addr();
    let mut client = Client::connect(addr);
    let mut round = 0u64;
    let mut group = c.benchmark_group("server");
    group.bench_function("mixed_10_frames/threads_1", |b| {
        b.iter(|| {
            for op in 0..10 {
                client.call(black_box(&mixed_frame("bench", round * 10 + op)));
            }
            round += 1;
        });
    });
    group.finish();
    drop(client);
    handle.shutdown();
    handle.join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, server_bench);
criterion_main!(benches);
