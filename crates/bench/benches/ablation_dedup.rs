//! Ablation: clustering multiplicity-weighted distinct vectors versus the
//! exploded log. The weighted form is an exact-equivalence optimization —
//! this bench shows how much it buys on a skewed workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr_cluster::{kmeans_binary, KMeansConfig};
use logr_feature::QueryVector;
use logr_workload::{generate_pocketdata, PocketDataConfig};

fn bench_dedup(c: &mut Criterion) {
    let (log, _) = generate_pocketdata(&PocketDataConfig::small(1)).ingest();
    let nf = log.num_features();

    // Weighted distinct form.
    let distinct: Vec<&QueryVector> = log.entries().iter().map(|(v, _)| v).collect();
    let weights: Vec<f64> = log.entries().iter().map(|&(_, c)| c as f64).collect();

    // Exploded form, capped so the bench stays tractable.
    let mut exploded: Vec<&QueryVector> = Vec::new();
    for (v, count) in log.entries() {
        for _ in 0..(*count).min(40) {
            exploded.push(v);
        }
    }
    let unit = vec![1.0; exploded.len()];

    let mut group = c.benchmark_group("kmeans_k6");
    group.sample_size(10);
    group.bench_function("weighted_distinct", |b| {
        b.iter(|| kmeans_binary(black_box(&distinct), &weights, nf, KMeansConfig::new(6, 0)))
    });
    group.bench_function(format!("exploded_{}_points", exploded.len()), |b| {
        b.iter(|| kmeans_binary(black_box(&exploded), &unit, nf, KMeansConfig::new(6, 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_dedup);
criterion_main!(benches);
