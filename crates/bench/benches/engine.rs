//! `logr::Engine` lifecycle costs: `open()` recovery time as the store
//! grows, concurrent `snapshot()` read throughput, and what compaction
//! buys.
//!
//! Three groups:
//!
//! 1. `engine_recovery` — reopening a persisted store: full manifest
//!    decode, shard-file validation (every file's checksum is verified)
//!    and summarizer rebuild, at several store sizes, plus the same
//!    store after `compact()` (one merged file instead of one per
//!    window).
//! 2. `engine_snapshot` — the read side: acquiring a snapshot (the cost
//!    a reader pays per query round), answering a workload estimate from
//!    a warmed snapshot, and aggregate read throughput with 1 vs 4
//!    reader threads sharing one engine (the handoff the stress test
//!    exercises for correctness; wall-clock gain needs >1 core).
//! 3. `engine_compaction` — spilled-history reads before vs after
//!    `compact()`, at the cluster layer where the effect is isolated.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr::analytics::Pred;
use logr::Engine;
use std::path::PathBuf;

/// Distinct-heavy SQL stream: 600 statement shapes cycled to `n`.
fn statement(i: usize) -> String {
    let i = (i % 600) as u32;
    match i % 3 {
        0 => format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 37, i % 23, i % 7, i % 19),
        1 => {
            format!("SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?", i % 41, i % 7, i % 19, i % 13)
        }
        _ => format!("SELECT c{}, c{} FROM t{}", i % 37, i % 41, i % 5),
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("logr-engine-bench-{tag}-{}", std::process::id()))
}

/// Build a persisted store of `windows` closed windows (window 64).
fn build_store(tag: &str, windows: usize) -> PathBuf {
    let dir = bench_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Engine::builder().window(64).clusters(4).open(&dir).expect("open store");
    for i in 0..windows * 64 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    drop(engine);
    dir
}

fn engine_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_recovery");
    for windows in [4usize, 16] {
        let dir = build_store(&format!("open-{windows}w"), windows);
        group.bench_function(format!("open/{windows}_windows"), |b| {
            b.iter(|| black_box(Engine::open(&dir).expect("reopen")));
        });
    }
    // The same 16-window store, compacted: one shard file instead of 16.
    let dir = build_store("open-compacted", 16);
    Engine::open(&dir).expect("reopen").compact().expect("compact");
    group.bench_function("open/16_windows_compacted", |b| {
        b.iter(|| black_box(Engine::open(&dir).expect("reopen")));
    });
    group.finish();
}

fn engine_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_snapshot");
    let engine = Engine::builder().window(64).clusters(4).in_memory().expect("engine");
    for i in 0..16 * 64 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    // Warm the published snapshot's memoized summary once, as a
    // long-lived reader would find it.
    engine.summary().expect("summary");
    let probe = Pred::table("t0");

    group.bench_function("snapshot_acquire", |b| {
        b.iter(|| black_box(engine.snapshot().expect("snapshot")));
    });
    group.bench_function("estimate/1_thread", |b| {
        b.iter(|| {
            let snap = engine.snapshot().expect("snapshot");
            black_box(
                snap.query().expect("query").expect("summary").frequency(&probe).expect("estimate"),
            )
        });
    });
    // Aggregate throughput: the same total number of reads, spread over
    // 4 scoped reader threads sharing the engine (per-iteration cost is
    // 4096 reads in both flavors — divide by 4096 for per-read time).
    const READS: usize = 4096;
    group.bench_function("estimate/4096_reads_1_thread", |b| {
        b.iter(|| {
            for _ in 0..READS {
                let snap = engine.snapshot().expect("snapshot");
                black_box(
                    snap.query()
                        .expect("query")
                        .expect("summary")
                        .frequency(&probe)
                        .expect("estimate"),
                );
            }
        });
    });
    group.bench_function("estimate/4096_reads_4_threads", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for _ in 0..READS / 4 {
                            let snap = engine.snapshot().expect("snapshot");
                            black_box(
                                snap.query()
                                    .expect("query")
                                    .expect("summary")
                                    .frequency(&probe)
                                    .expect("estimate"),
                            );
                        }
                    });
                }
            });
        });
    });
    group.finish();
}

/// Where compaction pays: a fully spilled history (budget 0) of 128
/// tiny per-window shards — the shape a long-running stream accretes —
/// vs the one compacted file.
///
/// * Random **point reads** (`mismatches(i, j)`) thrash the single-slot
///   reload cache across 128 files (most probes land outside whichever
///   shard is cached, so most reads decode a file); with one shard,
///   every read after the first is a cache hit.
/// * The bulk **merged read** streams every spilled file on every call
///   in the many-shard layout, paying 128 open+decode+segment rounds;
///   the compacted store serves it from the same single cached record
///   with zero decodes. (Benches run in this order deliberately: the
///   point reads warm the cache exactly as a live engine's would.)
///
/// At few-shard counts (16 windows of 64) the merged read is a wash —
/// the crossover is where per-file overhead outgrows one big decode.
fn engine_compaction(c: &mut Criterion) {
    use logr::cluster::{Distance, ShardedPointSet, SpillConfig};
    use logr::feature::LogIngest;

    let mut group = c.benchmark_group("engine_compaction");
    let mut ingest = LogIngest::new();
    for i in 0..16 * 64 {
        ingest.ingest(&statement(i));
    }
    let (log, _) = ingest.finish();
    let vectors: Vec<_> = log.entries().iter().map(|(v, _)| v).collect();

    let dir = bench_dir("merge");
    let _ = std::fs::remove_dir_all(&dir);
    let mut sharded = ShardedPointSet::new();
    sharded.set_spill(SpillConfig { dir: dir.clone(), resident_budget: 0 }).expect("attach store");
    for chunk in vectors.chunks(vectors.len().div_ceil(128)) {
        sharded.push_shard(chunk, log.num_features());
    }
    sharded.spill_all().expect("spill");
    let mut compacted = sharded.clone();
    compacted.compact().expect("compact");
    let n = compacted.len();
    assert_eq!(
        sharded.condensed(Distance::Hamming).as_slice(),
        compacted.condensed(Distance::Hamming).as_slice(),
        "compaction changed a bit"
    );

    for (label, set) in [("128_spilled_shards", &sharded), ("compacted_1_shard", &compacted)] {
        group.bench_function(format!("point_reads_2000/{label}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                let mut x = 1usize;
                for _ in 0..2000 {
                    x = x.wrapping_mul(48271) % (n - 1);
                    let y = (x * 7 + 13) % n;
                    acc += set.mismatches(x.min(y), x.max(y));
                }
                black_box(acc)
            });
        });
        group.bench_function(format!("merged_read/{label}"), |b| {
            b.iter(|| black_box(set.condensed(Distance::Hamming)));
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn cleanup(_c: &mut Criterion) {
    for tag in ["open-4w", "open-16w", "open-compacted"] {
        let _ = std::fs::remove_dir_all(bench_dir(tag));
    }
}

criterion_group!(benches, engine_recovery, engine_snapshot, engine_compaction, cleanup);
criterion_main!(benches);
