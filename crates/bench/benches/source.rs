//! Pluggable-source ingest cost: the Drain-style template path next to
//! the SQL path it replaces for free-form logs.
//!
//! Two groups:
//!
//! 1. `template_mining` — the miner in isolation: `featurize` throughput
//!    over a steady-shape service stream (tree routing + token compare +
//!    journal append per line), and journal `replay` throughput (the
//!    recovery path — every engine resume replays this).
//! 2. `source_ingest` — end-to-end `StreamSummarizer::ingest_record`
//!    throughput with the template source versus the SQL source at the
//!    same window size, so the per-record delta between "parse SQL" and
//!    "mine a template" is read straight off the two numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr_core::{StreamConfig, StreamSummarizer};
use logr_source::{Featurizer, SourceConfig, TemplateConfig, TemplateMiner};
use logr_workload::{generate_pocketdata, PocketDataConfig};

/// A steady free-form service stream: ten shapes with rotating
/// parameters, cycled to `n` lines — the template-source analogue of the
/// PocketData statement stream.
fn service_lines(n: usize) -> Vec<String> {
    (0..n as u64)
        .map(|i| match i % 10 {
            0 => format!("auth: user u{} logged in from 10.0.{}.{}", i % 19, i % 17, i % 251),
            1 => format!("auth: user u{} failed password from 203.0.113.{}", i % 23, i % 251),
            2 => format!("http: GET /api/v1/items/{} -> 200 in {} ms", i % 97, 3 + i % 40),
            3 => format!("http: POST /api/v1/orders -> 201 in {} ms", 5 + i % 60),
            4 => format!("db: slow query {} ms on shard {}", 100 + i % 400, i % 8),
            5 => format!("cache: evicted {} keys from shard {}", i % 512, i % 8),
            6 => format!("gc: pause {} ms heap {} mb", i % 60, 256 + i % 512),
            7 => format!("disk: wrote segment /var/data/seg-{}.db in {} ms", i % 40, 2 + i % 30),
            8 => format!("net: connection reset by 10.1.{}.{}", i % 17, i % 251),
            _ => format!("job: backup {} completed in {} s", i % 1000, 1 + i % 90),
        })
        .collect()
}

fn bench_template_mining(c: &mut Criterion) {
    let lines = service_lines(2000);
    let mut group = c.benchmark_group("template_mining");
    group.bench_function("featurize_2000_lines", |b| {
        b.iter(|| {
            let mut miner = TemplateMiner::new(TemplateConfig::default());
            let mut branches = 0usize;
            for line in &lines {
                branches += miner.featurize(black_box(line)).len();
            }
            black_box(branches)
        })
    });
    // The recovery path: replaying the journal a full mining pass left
    // behind (this is what every template-source engine resume pays).
    let journal = {
        let mut miner = TemplateMiner::new(TemplateConfig::default());
        for line in &lines {
            miner.featurize(line);
        }
        miner.export_journal()
    };
    group.bench_function("journal_replay_2000_lines", |b| {
        b.iter(|| {
            let mut miner = TemplateMiner::new(TemplateConfig::default());
            miner.replay(black_box(&journal)).expect("journal replays");
            black_box(miner.template_count())
        })
    });
    group.finish();
}

fn bench_source_ingest(c: &mut Criterion) {
    let lines = service_lines(2000);
    let synthetic = generate_pocketdata(&PocketDataConfig::default());
    let statements: Vec<String> =
        synthetic.statements.iter().map(|(sql, _)| sql.clone()).cycle().take(2000).collect();

    let mut group = c.benchmark_group("source_ingest");
    let run = |records: &[String], source: SourceConfig| {
        let mut s =
            StreamSummarizer::new(StreamConfig { window: 256, source, ..StreamConfig::default() });
        let mut closed = 0usize;
        for record in records {
            if s.ingest_record(black_box(record)).is_some() {
                closed += 1;
            }
        }
        black_box(closed)
    };
    group.bench_function("template_2000_records/window_256", |b| {
        b.iter(|| run(&lines, SourceConfig::template()))
    });
    group.bench_function("sql_2000_records/window_256", |b| {
        b.iter(|| run(&statements, SourceConfig::Sql))
    });
    group.finish();
}

criterion_group!(benches, bench_template_mining, bench_source_ingest);
criterion_main!(benches);
