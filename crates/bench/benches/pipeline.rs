//! Front-end throughput: lexing, parsing, regularization, and full log
//! ingestion on representative statements.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr_feature::LogIngest;
use logr_sql::{anonymize_statement, parse_select, regularize, Lexer};
use logr_workload::{generate_pocketdata, PocketDataConfig};

const SIMPLE: &str =
    "SELECT _id, sms_type, _time FROM Messages WHERE status = ? AND transport_type = ?";
const COMPLEX: &str =
    "SELECT a.id, b.name, count(*) FROM accounts a JOIN owners b ON a.owner_id = b.id \
     WHERE a.balance BETWEEN ? AND ? AND (a.status = ? OR b.region IN (?, ?, ?)) \
     AND b.joined IS NOT NULL GROUP BY a.id, b.name ORDER BY count(*) DESC LIMIT 100";

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("lex_simple", |b| b.iter(|| Lexer::tokenize(black_box(SIMPLE)).unwrap()));
    c.bench_function("parse_simple", |b| b.iter(|| parse_select(black_box(SIMPLE)).unwrap()));
    c.bench_function("parse_complex", |b| b.iter(|| parse_select(black_box(COMPLEX)).unwrap()));
    c.bench_function("regularize_complex", |b| {
        let stmt = parse_select(COMPLEX).unwrap();
        b.iter(|| {
            let mut anon = stmt.clone();
            anonymize_statement(&mut anon);
            regularize(black_box(&anon)).unwrap()
        })
    });
    c.bench_function("ingest_pocketdata_small", |b| {
        let synthetic = generate_pocketdata(&PocketDataConfig::small(1));
        b.iter(|| {
            let mut ingest = LogIngest::new();
            for (sql, count) in &synthetic.statements {
                ingest.ingest_with_count(black_box(sql), *count);
            }
            ingest.finish()
        })
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
