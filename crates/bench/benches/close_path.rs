//! Close-path persistence cost: what one window close writes, delta-log
//! vs full-manifest-rewrite, as the distinct history grows.
//!
//! The delta manifest exists so a window close appends an `O(window)`
//! record instead of re-encoding the whole `StreamState`; this bench
//! pins both halves of that claim:
//!
//! * **Bytes per close** (deterministic, printed to stderr): a `FaultFs`
//!   engine is warmed past 1024 distinct statements at window 64, then
//!   one more window closes while the IO trace is watched — the
//!   manifest bytes of that close (the delta append) are compared
//!   against the full base rewrite a `checkpoint()` pays at the same
//!   history. The acceptance bar is a ≥5× reduction.
//! * **Time per close** (criterion): on a real store, `delta_close`
//!   ingests one 64-statement window per iteration — the whole close
//!   path end to end, featurization and clustering included — at 1k-
//!   and 4k-distinct histories, while `full_rewrite` isolates the
//!   `checkpoint()` fold (the full-manifest rewrite every close
//!   *additionally* paid before the delta log existed, which grows with
//!   the history while the delta append does not).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr::cluster::vfs::{FaultFs, IoOp};
use logr::Engine;
use std::path::PathBuf;
use std::sync::Arc;

/// Effectively unbounded distinct shapes: the combo space is ~8.8M, so
/// every window of a multi-thousand-statement stream is mostly novel.
fn statement(i: usize) -> String {
    format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 211, (i * 7) % 193, i % 17, i % 127)
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("logr-close-bench-{tag}-{}", std::process::id()))
}

/// Manifest-file bytes (base writes via `.tmp` + delta appends) in `ops`.
fn manifest_bytes(ops: &[IoOp]) -> (u64, u64) {
    let (mut base, mut delta) = (0u64, 0u64);
    for op in ops {
        match op {
            IoOp::Write { path, bytes } => {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name == "engine.tmp" {
                    base += bytes.len() as u64;
                } else if name == "engine.delta" {
                    delta += bytes.len() as u64;
                }
            }
            IoOp::Append { path, bytes }
                if path.file_name().and_then(|n| n.to_str()) == Some("engine.delta") =>
            {
                delta += bytes.len() as u64;
            }
            _ => {}
        }
    }
    (base, delta)
}

/// The deterministic byte count behind the acceptance criterion, printed
/// once so a bench run records it alongside the timings.
fn report_bytes_per_close() {
    let fs = Arc::new(FaultFs::new());
    let dir = PathBuf::from("/close-bytes");
    let engine = Engine::builder().window(64).clusters(4).vfs(fs.clone()).open(&dir).expect("open");
    // 17 windows × 64 mostly-novel statements: history > 1024 distinct.
    for i in 0..17 * 64 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    let before = fs.trace_len();
    for i in 17 * 64..18 * 64 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    let close_ops = &fs.trace()[before..];
    let (close_base, close_delta) = manifest_bytes(close_ops);
    let before = fs.trace_len();
    engine.checkpoint().expect("checkpoint");
    let fold_ops = &fs.trace()[before..];
    let (full_base, _) = manifest_bytes(fold_ops);
    eprintln!(
        "close_path bytes at >1024-distinct history, window 64: \
         delta close = {} manifest bytes ({} base + {} delta append), \
         full rewrite = {} bytes, reduction = {:.1}x",
        close_base + close_delta,
        close_base,
        close_delta,
        full_base,
        full_base as f64 / (close_base + close_delta).max(1) as f64,
    );
    assert!(close_base == 0, "a steady-state close must not rewrite the base manifest");
    assert!(
        full_base >= 5 * close_delta,
        "delta close ({close_delta} bytes) must be >=5x smaller than the full rewrite \
         ({full_base} bytes)"
    );
}

fn close_path(c: &mut Criterion) {
    report_bytes_per_close();
    let mut group = c.benchmark_group("close_path");
    for (label, windows) in [("history_1k", 16usize), ("history_4k", 64)] {
        let dir = bench_dir(label);
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine::builder().window(64).clusters(4).open(&dir).expect("open store");
        let mut next = 0usize;
        for _ in 0..windows * 64 {
            engine.ingest(&statement(next)).expect("ingest");
            next += 1;
        }
        group.bench_function(format!("delta_close/{label}"), |b| {
            b.iter(|| {
                for _ in 0..64 {
                    engine.ingest(black_box(&statement(next))).expect("ingest");
                    next += 1;
                }
            });
        });
        group.bench_function(format!("full_rewrite/{label}"), |b| {
            b.iter(|| engine.checkpoint().expect("checkpoint"));
        });
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, close_path);
criterion_main!(benches);
