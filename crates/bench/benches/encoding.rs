//! Encoding-side costs: naive encoding construction, mixture building,
//! entropy, and the marginal-estimation fast path that motivates LogR.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr_cluster::{cluster_log, ClusterMethod};
use logr_core::{empirical_entropy, NaiveEncoding, NaiveMixtureEncoding};
use logr_feature::{FeatureId, QueryLog, QueryVector};
use logr_workload::{generate_usbank, UsBankConfig};

fn bank_log() -> QueryLog {
    generate_usbank(&UsBankConfig::small(1)).ingest().0
}

fn bench_encoding(c: &mut Criterion) {
    let log = bank_log();
    let clustering = cluster_log(&log, 8, ClusterMethod::KMeansEuclidean, 0);

    c.bench_function("naive_encoding_build", |b| {
        b.iter(|| NaiveEncoding::from_log(black_box(&log)))
    });
    c.bench_function("empirical_entropy", |b| b.iter(|| empirical_entropy(black_box(&log))));
    c.bench_function("mixture_build_k8", |b| {
        b.iter(|| NaiveMixtureEncoding::build(black_box(&log), &clustering))
    });

    let mixture = NaiveMixtureEncoding::build(&log, &clustering);
    let pattern = {
        // A 2-feature pattern over the busiest features.
        let marginals = log.marginals();
        let mut order: Vec<usize> = (0..marginals.len()).collect();
        order.sort_by(|&a, &b| marginals[b].total_cmp(&marginals[a]));
        QueryVector::new(vec![FeatureId(order[0] as u32), FeatureId(order[1] as u32)])
    };
    c.bench_function("estimate_count_from_summary", |b| {
        b.iter(|| mixture.estimate_count(black_box(&pattern)))
    });
    c.bench_function("true_count_from_log", |b| b.iter(|| log.support(black_box(&pattern))));
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
