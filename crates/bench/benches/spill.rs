//! Out-of-core shard store costs: serialization throughput, the
//! reload tax on history reads and appends, and end-to-end bounded-memory
//! streaming vs the unbounded baseline.
//!
//! Three groups:
//!
//! 1. `spill_io` — encode/decode and write/read of one realistic shard
//!    record (the format's raw throughput).
//! 2. `out_of_core` — history-wide operations A/B'd resident vs fully
//!    spilled: materializing the merged condensed matrix (one reload per
//!    shard per read) and appending a window shard (one reload per
//!    history shard per push).
//! 3. `bounded_stream` — `StreamSummarizer` end-to-end over a
//!    distinct-heavy synthetic stream, unbounded vs `spill_to(dir, 0)`
//!    (every closed shard evicted; the strictest budget): the
//!    bounded-memory overhead a production stream would pay. Resident
//!    footprints for both runs are printed once so the BENCH record can
//!    pair time with memory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr_cluster::{spill, Distance, ShardedPointSet, SpillConfig};
use logr_core::{StreamConfig, StreamSummarizer};
use logr_feature::{FeatureId, QueryVector};
use std::path::PathBuf;

/// Deterministic synthetic vectors (same generator family as the
/// `ablation_distance` bench).
fn synthetic_vectors(n: usize, universe: u32) -> Vec<QueryVector> {
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let len = 3 + (next() % 10) as u32;
            QueryVector::new((0..len).map(|_| FeatureId(next() as u32 % universe)).collect())
        })
        .collect()
}

/// Distinct-heavy SQL stream: 1000 statement shapes cycled to `n`.
fn distinct_statements(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let i = (i % 1000) as u32;
            match i % 3 {
                0 => {
                    format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 37, i % 23, i % 7, i % 19)
                }
                1 => format!(
                    "SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?",
                    i % 41,
                    i % 7,
                    i % 19,
                    i % 13
                ),
                _ => format!("SELECT c{}, c{} FROM t{}", i % 37, i % 41, i % 5),
            }
        })
        .collect()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logr-bench-spill-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench spill dir");
    dir
}

fn bench_spill_io(c: &mut Criterion) {
    let nf = 512usize;
    let history_n = 1024usize;
    let window_n = 128usize;
    let vectors = synthetic_vectors(history_n + window_n, nf as u32);
    let refs: Vec<&QueryVector> = vectors.iter().collect();
    let dir = bench_dir("io");

    // The record the streaming close path would spill: a 128-point shard
    // closed against 1024 history points.
    let mut set = ShardedPointSet::new();
    set.push_shard(&refs[..history_n], nf);
    set.push_shard(&refs[history_n..], nf);
    let record = spill_record_of(&set, &refs, nf, history_n);
    let path = dir.join("bench-record.bin");

    let mut group = c.benchmark_group("spill_io");
    group.bench_function("encode/h1024_w128", |b| b.iter(|| spill::encode(black_box(&record))));
    let bytes = spill::encode(&record);
    group.bench_function("decode/h1024_w128", |b| b.iter(|| spill::decode(black_box(&bytes))));
    group.bench_function("write_read_file/h1024_w128", |b| {
        b.iter(|| {
            spill::write_file(&path, black_box(&record)).unwrap();
            black_box(spill::read_file(&path).unwrap())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The exact record `ShardedPointSet` spills for the last shard: rebuilt
/// here through the public push API so the bench measures a faithful
/// payload (1024×128 cross block + 128-triangle + 128 bitsets).
fn spill_record_of(
    set: &ShardedPointSet,
    refs: &[&QueryVector],
    nf: usize,
    history_n: usize,
) -> spill::ShardRecord {
    let bits: Vec<logr_feature::BitVec> =
        refs[history_n..].iter().map(|v| logr_feature::BitVec::from_query_vector(v, nf)).collect();
    let w = bits.len();
    let mut intra = Vec::with_capacity(w * (w - 1) / 2);
    for i in 0..w {
        for j in i + 1..w {
            intra.push(set.mismatches(history_n + i, history_n + j) as u32);
        }
    }
    let mut cross = Vec::with_capacity(history_n * w);
    for i in 0..history_n {
        for j in 0..w {
            cross.push(set.mismatches(i, history_n + j) as u32);
        }
    }
    spill::ShardRecord { n_features: nf, start: history_n, intra, cross, bits }
}

fn bench_out_of_core(c: &mut Criterion) {
    let nf = 512usize;
    let vectors = synthetic_vectors(1152, nf as u32);
    let refs: Vec<&QueryVector> = vectors.iter().collect();
    let dir = bench_dir("ooc");

    // 8 × 128-point shards, one resident copy and one fully spilled copy.
    let mut resident = ShardedPointSet::new();
    for chunk in refs[..1024].chunks(128) {
        resident.push_shard(chunk, nf);
    }
    let mut spilled = resident.clone();
    spilled.set_spill(SpillConfig { dir: dir.clone(), resident_budget: usize::MAX }).unwrap();
    spilled.spill_all().unwrap();

    let mut group = c.benchmark_group("out_of_core");
    group.bench_function("history_read/resident/h1024", |b| {
        b.iter(|| black_box(&resident).condensed(Distance::Hamming))
    });
    group.bench_function("history_read/spilled/h1024", |b| {
        b.iter(|| black_box(&spilled).condensed(Distance::Hamming))
    });
    group.bench_function("shard_append/resident/h1024_w128", |b| {
        b.iter(|| {
            let mut h = resident.clone();
            h.push_shard(black_box(&refs[1024..]), nf);
            black_box(h.len())
        })
    });
    group.bench_function("shard_append/spilled/h1024_w128", |b| {
        b.iter(|| {
            // Cloning an all-spilled set copies paths, not payloads; the
            // append then reloads each history shard for its cross rows.
            let mut h = spilled.clone();
            h.push_shard(black_box(&refs[1024..]), nf);
            black_box(h.len())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_bounded_stream(c: &mut Criterion) {
    let statements = distinct_statements(2000);
    let dir = bench_dir("stream");
    let config = StreamConfig { window: 64, k: 4, ..StreamConfig::default() };

    // One instrumented pass for the memory numbers the BENCH record pairs
    // with the timings below.
    let mut probe = StreamSummarizer::new(config);
    for sql in &statements {
        probe.ingest(sql);
    }
    let unbounded_bytes = probe.resident_shard_bytes();
    let mut probe = StreamSummarizer::new(config);
    probe.spill_to(dir.join("probe"), 0).unwrap();
    for sql in &statements {
        probe.ingest(sql);
    }
    eprintln!(
        "bounded_stream resident bytes: unbounded={unbounded_bytes} budget0={} ({} shards spilled)",
        probe.resident_shard_bytes(),
        probe.spilled_shards()
    );

    let mut group = c.benchmark_group("bounded_stream");
    group.bench_function("ingest_2000_distinct/unbounded", |b| {
        b.iter(|| {
            let mut s = StreamSummarizer::new(config);
            let mut closed = 0usize;
            for sql in &statements {
                if s.ingest(black_box(sql)).is_some() {
                    closed += 1;
                }
            }
            black_box(closed)
        })
    });
    group.bench_function("ingest_2000_distinct/budget0", |b| {
        b.iter(|| {
            let mut s = StreamSummarizer::new(config);
            s.spill_to(dir.join("run"), 0).unwrap();
            let mut closed = 0usize;
            for sql in &statements {
                if s.ingest(black_box(sql)).is_some() {
                    closed += 1;
                }
            }
            black_box(closed)
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_spill_io, bench_out_of_core, bench_bounded_stream);
criterion_main!(benches);
