//! Max-ent inference cost versus pattern count — the blow-up that motivates
//! both MTV's 15-pattern cap and LogR's avoidance of pattern search.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use logr_core::maxent::ClassSystem;
use logr_feature::{FeatureId, QueryVector};

fn chain_patterns(m: usize) -> Vec<QueryVector> {
    // Overlapping chain b_i = {i, i+1}: worst-case single component.
    (0..m).map(|i| QueryVector::new(vec![FeatureId(i as u32), FeatureId(i as u32 + 1)])).collect()
}

fn bench_maxent(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxent_chain");
    for &m in &[2usize, 4, 6, 8, 10, 12] {
        let patterns = chain_patterns(m);
        let targets: Vec<f64> = (0..m).map(|i| 0.2 + 0.5 * (i as f64 / m as f64)).collect();
        group.bench_with_input(BenchmarkId::new("build", m), &m, |b, _| {
            b.iter(|| ClassSystem::build(black_box(&patterns)).unwrap())
        });
        let cs = ClassSystem::build(&patterns).unwrap();
        group.bench_with_input(BenchmarkId::new("ipf", m), &m, |b, _| {
            b.iter(|| cs.maxent(black_box(&targets)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maxent);
criterion_main!(benches);
