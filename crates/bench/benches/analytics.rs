//! Advisor and typed-query latency through an `EngineSnapshot` — the
//! read-side cost of the `logr::analytics` facade at a realistic history
//! size (h ≈ 1024 distinct queries, the same scale the shard-append and
//! engine benches use).
//!
//! All groups run against one warmed snapshot (the memoized history
//! summary is built once, as a long-lived reader would find it), so the
//! numbers isolate the advisor / evaluator work itself:
//!
//! * `analytics_query` — single-feature frequency (the hot estimator),
//!   an AND/OR composite (inclusion–exclusion over 2 branches), and a
//!   conditional.
//! * `analytics_advisor` — each shipped advisor end to end: codebook
//!   scan + mixture estimates + ranking (index), FROM-pair co-occurrence
//!   (view), fragment featurization + conditional ranking (recommend).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr::analytics::{Advisor, IndexAdvisor, Pred, QueryRecommender, ViewAdvisor};
use logr::Engine;

/// Distinct-heavy SQL stream: 1024 statement shapes over shared tables.
fn statement(i: usize) -> String {
    let i = (i % 1024) as u32;
    match i % 3 {
        0 => format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 37, i % 23, i % 7, i % 19),
        1 => {
            format!("SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?", i % 41, i % 7, i % 19, i % 13)
        }
        _ => format!("SELECT c{}, c{} FROM t{}, u{}", i % 37, i % 41, i % 5, i % 3),
    }
}

fn warmed_engine() -> Engine {
    let engine = Engine::builder().window(128).clusters(8).in_memory().expect("engine");
    for i in 0..1024 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    engine.flush().expect("flush");
    // Memoize the snapshot summary once, like a long-lived reader.
    engine.summary().expect("summary");
    engine
}

fn analytics_query(c: &mut Criterion) {
    let engine = warmed_engine();
    let snap = engine.snapshot().expect("snapshot");
    let query = snap.query().expect("query").expect("non-empty");
    let mut group = c.benchmark_group("analytics_query");
    let single = Pred::table("t0");
    group.bench_function("frequency/single_feature", |b| {
        b.iter(|| black_box(query.frequency(&single).expect("estimate")));
    });
    let composite = Pred::table("t0").and(Pred::column_eq("a0")).or(Pred::table("u2"));
    group.bench_function("frequency/and_or_composite", |b| {
        b.iter(|| black_box(query.frequency(&composite).expect("estimate")));
    });
    let (given, then) = (Pred::table("t0"), Pred::column_eq("a0"));
    group.bench_function("conditional", |b| {
        b.iter(|| black_box(query.conditional(&given, &then).expect("estimate")));
    });
    group.finish();
}

fn analytics_advisor(c: &mut Criterion) {
    let engine = warmed_engine();
    let snap = engine.snapshot().expect("snapshot");
    let mut group = c.benchmark_group("analytics_advisor");
    let index = IndexAdvisor::new(0.01);
    group.bench_function("index/h1024", |b| {
        b.iter(|| black_box(index.advise(&*snap).expect("advise")));
    });
    let view = ViewAdvisor::new(0.01);
    group.bench_function("view/h1024", |b| {
        b.iter(|| black_box(view.advise(&*snap).expect("advise")));
    });
    let recommend = QueryRecommender::new("SELECT c1 FROM t0 WHERE a5 = ?", 0.10);
    group.bench_function("recommend/h1024", |b| {
        b.iter(|| black_box(recommend.advise(&*snap).expect("advise")));
    });
    group.finish();
}

criterion_group!(benches, analytics_query, analytics_advisor);
criterion_main!(benches);
