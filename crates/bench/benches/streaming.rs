//! Streaming ingestion throughput and the sharded window-close cost.
//!
//! Two groups:
//!
//! 1. `streaming` — end-to-end `StreamSummarizer` throughput
//!    (`queries/sec`) over a synthetic PocketData stream at several window
//!    sizes: every ingested statement pays parse → anonymize → featurize,
//!    and each window close pays clustering + drift + the history shard
//!    append. Smaller windows close more often (more summaries per query);
//!    larger windows amortize.
//! 2. `window_close` — the tentpole's cost model in isolation: appending
//!    one window-sized shard to a sharded history
//!    (`ShardedPointSet::push_shard`, `O(w² + h·w)`) versus rebuilding the
//!    monolithic condensed matrix over history + window
//!    (`PointSet::distances`, `O((h + w)²)`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use logr_cluster::{Distance, PointSet, ShardedPointSet};
use logr_core::{StreamConfig, StreamSummarizer};
use logr_feature::{FeatureId, QueryVector};
use logr_workload::{generate_pocketdata, PocketDataConfig};

/// The replayed stream: PocketData statements cycled to `n` entries.
fn stream_statements(n: usize) -> Vec<String> {
    let synthetic = generate_pocketdata(&PocketDataConfig::default());
    synthetic.statements.iter().map(|(sql, _)| sql.clone()).cycle().take(n).collect()
}

fn bench_streaming_throughput(c: &mut Criterion) {
    let statements = stream_statements(2000);
    let mut group = c.benchmark_group("streaming");
    for window in [64u64, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("ingest_2000_queries/window", window),
            &statements,
            |b, stmts| {
                b.iter(|| {
                    let mut s = StreamSummarizer::new(StreamConfig {
                        window,
                        k: 4,
                        metric: Distance::Hamming,
                        ..StreamConfig::default()
                    });
                    let mut closed = 0usize;
                    for sql in stmts {
                        if s.ingest(black_box(sql)).is_some() {
                            closed += 1;
                        }
                    }
                    black_box(closed)
                })
            },
        );
    }
    group.finish();
}

/// Deterministic synthetic vectors (same generator family as the
/// `ablation_distance` bench).
fn synthetic_vectors(n: usize, universe: u32) -> Vec<QueryVector> {
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let len = 3 + (next() % 10) as u32;
            QueryVector::new((0..len).map(|_| FeatureId(next() as u32 % universe)).collect())
        })
        .collect()
}

fn bench_window_close(c: &mut Criterion) {
    let nf = 512usize;
    let history_n = 1024usize;
    let window_n = 128usize;
    let vectors = synthetic_vectors(history_n + window_n, nf as u32);
    let refs: Vec<&QueryVector> = vectors.iter().collect();

    // Pre-built history the window closes against.
    let mut history = ShardedPointSet::new();
    history.push_shard(&refs[..history_n], nf);

    let mut group = c.benchmark_group("window_close");
    group.bench_function("shard_append/h1024_w128", |b| {
        b.iter(|| {
            let mut h = history.clone();
            h.push_shard(black_box(&refs[history_n..]), nf);
            black_box(h.len())
        })
    });
    // Control: the clone the append bench pays per iteration, so the pure
    // append cost is `shard_append − history_clone`.
    group.bench_function("history_clone/h1024", |b| b.iter(|| black_box(&history).clone()));
    group.bench_function("monolithic_rebuild/h1024_w128", |b| {
        let points = PointSet::from_vectors(&refs, nf);
        b.iter(|| black_box(&points).distances(Distance::Hamming))
    });
    group.bench_function("merged_condensed_read/h1024_w128", |b| {
        let mut h = history.clone();
        h.push_shard(&refs[history_n..], nf);
        b.iter(|| black_box(&h).condensed(Distance::Hamming))
    });
    group.finish();
}

criterion_group!(benches, bench_streaming_throughput, bench_window_close);
criterion_main!(benches);
