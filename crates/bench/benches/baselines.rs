//! Per-pattern mining cost of the baselines (Fig. 7 as a microbenchmark).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use logr_baselines::{Laserlight, LaserlightConfig, Mtv, MtvConfig};
use logr_workload::{generate_income, generate_mushroom, IncomeConfig, MushroomConfig};

fn bench_baselines(c: &mut Criterion) {
    let income = generate_income(&IncomeConfig::small(1));
    let mushroom = generate_mushroom(&MushroomConfig::small(1));

    let mut group = c.benchmark_group("miners");
    group.sample_size(10);
    for &n in &[2usize, 5, 10] {
        group.bench_with_input(BenchmarkId::new("laserlight_income", n), &n, |b, &n| {
            b.iter(|| Laserlight::new(LaserlightConfig::new(n, 0)).summarize(black_box(&income)))
        });
        group.bench_with_input(BenchmarkId::new("mtv_mushroom", n), &n, |b, &n| {
            b.iter(|| Mtv::new(MtvConfig::new(n)).summarize(black_box(&mushroom)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
