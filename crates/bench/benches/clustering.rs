//! Clustering method costs at fixed K — the Fig. 2c comparison as a
//! microbenchmark.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use logr_cluster::{cluster_log, ClusterMethod, Distance};
use logr_workload::{generate_usbank, UsBankConfig};

fn bench_clustering(c: &mut Criterion) {
    let (log, _) = generate_usbank(&UsBankConfig::small(1)).ingest();
    let mut group = c.benchmark_group("cluster_k8");
    group.sample_size(10);
    for method in [
        ClusterMethod::KMeansEuclidean,
        ClusterMethod::Spectral(Distance::Hamming),
        ClusterMethod::Spectral(Distance::Manhattan),
        ClusterMethod::Spectral(Distance::Minkowski(4.0)),
        ClusterMethod::Hierarchical(Distance::Hamming),
    ] {
        group.bench_function(method.label(), |b| {
            b.iter(|| cluster_log(black_box(&log), 8, method, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
