//! A small, correct-enough Rust lexer for line-oriented static analysis.
//!
//! The rules in this crate match **code**, never comments or literals, so
//! the lexer's one job is to classify every byte of a source file as code
//! or non-code. [`mask`] returns a copy of the source in which every byte
//! of every comment, string literal, raw string literal, byte string, and
//! character literal is replaced by a space — newlines are preserved, so
//! byte offsets and line numbers in the masked text match the original —
//! plus the list of line comments (for the `lint:allow` suppression
//! syntax, which lives in comments by design).
//!
//! Handled: line comments (`//`, `///`, `//!`), **nested** block comments
//! (`/* /* */ */`, `/** … */`, `/*! … */`), string literals with escapes,
//! raw strings with any number of `#`s (`r"…"`, `r##"…"##`), byte and
//! raw byte strings (`b"…"`, `br#"…"#`), char and byte-char literals
//! including `'"'` and `'\''`, and the char-literal/lifetime ambiguity
//! (`'static` stays code).

/// One `//` comment: the line it starts on (1-based), the column of the
/// first `/` (0-based byte offset within the line), and its full text
/// including the leading `//`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based source line.
    pub line: usize,
    /// 0-based byte column of the first `/`.
    pub col: usize,
    /// Comment text from `//` to end of line (newline excluded).
    pub text: String,
    /// True when only whitespace precedes the comment on its line (a
    /// *standalone* comment, as opposed to one trailing code).
    pub leading: bool,
}

/// The lexer's output: the masked source and the line comments found.
#[derive(Debug, Clone)]
pub struct Masked {
    /// The source with every non-code byte replaced by a space
    /// (newlines kept), byte-for-byte the same length as the input.
    pub code: String,
    /// Every `//` comment, in source order.
    pub comments: Vec<LineComment>,
}

/// Classify every byte of `src` as code or non-code (see module docs).
pub fn mask(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_start = 0usize; // byte offset where the current line began
    let mut line_has_code = false; // any non-whitespace byte yet this line?
    let mut i = 0usize;

    // Push `n` masked bytes, keeping newlines so positions survive.
    let push_masked = |out: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize| {
        for &b in &bytes[from..to] {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                out.push(b'\n');
                line += 1;
                i += 1;
                line_start = i;
                line_has_code = false;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment (also doc `///` and `//!`): to end of line.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(LineComment {
                    line,
                    col: start - line_start,
                    text: src[start..i].to_string(),
                    leading: !line_has_code,
                });
                push_masked(&mut out, bytes, start, i);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment (doc or not) with nesting.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                            line_start = i + 1;
                        }
                        i += 1;
                    }
                }
                push_masked(&mut out, bytes, start, i);
            }
            b'"' => {
                let end = skip_string(bytes, i);
                push_masked(&mut out, bytes, i, end);
                line += count_newlines(bytes, i, end, &mut line_start);
                i = end;
                line_has_code = true;
            }
            b'\'' => {
                // Char literal or lifetime. A char literal is `'` +
                // (escape | one char) + `'`; anything else (`'static`,
                // `'a`) is a lifetime and stays code.
                if let Some(end) = char_literal_end(bytes, i) {
                    push_masked(&mut out, bytes, i, end);
                    i = end;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
                line_has_code = true;
            }
            _ if is_ident_start(b) => {
                line_has_code = true;
                // Consume the identifier; `r`/`b`/`br`/`rb` may prefix a
                // literal.
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                let ident = &src[start..i];
                let raw_prefix = matches!(ident, "r" | "br");
                let byte_prefix = matches!(ident, "b" | "br");
                if raw_prefix && i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'#') {
                    // Raw (byte) string: r"…", r#"…"#, br##"…"##.
                    if let Some(end) = skip_raw_string(bytes, i) {
                        out.extend_from_slice(&bytes[start..i]); // keep the prefix as code
                        push_masked(&mut out, bytes, i, end);
                        line += count_newlines(bytes, i, end, &mut line_start);
                        i = end;
                        continue;
                    }
                }
                if byte_prefix && i < bytes.len() && bytes[i] == b'"' {
                    let end = skip_string(bytes, i);
                    out.extend_from_slice(&bytes[start..i]);
                    push_masked(&mut out, bytes, i, end);
                    line += count_newlines(bytes, i, end, &mut line_start);
                    i = end;
                    continue;
                }
                if ident == "b" && i < bytes.len() && bytes[i] == b'\'' {
                    if let Some(end) = char_literal_end(bytes, i) {
                        out.extend_from_slice(&bytes[start..i]);
                        push_masked(&mut out, bytes, i, end);
                        i = end;
                        continue;
                    }
                }
                out.extend_from_slice(&bytes[start..i]);
            }
            _ => {
                if !(b as char).is_whitespace() {
                    line_has_code = true;
                }
                out.push(b);
                i += 1;
            }
        }
    }

    // Only ASCII bytes were substituted, so the masked text is valid
    // UTF-8 whenever the input was.
    let code = String::from_utf8(out).unwrap_or_default();
    Masked { code, comments }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offset one past the closing `"` of the string starting at
/// `bytes[start] == b'"'`, honoring `\"` and `\\` escapes. An unclosed
/// string runs to end of input.
fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Byte offset one past a raw string starting at `bytes[start]`, which is
/// either `"` or the first `#` of its hash fence (the `r`/`br` prefix has
/// already been consumed). `None` when this is not a raw string after all
/// (e.g. `r#foo`, a raw identifier).
fn skip_raw_string(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start;
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return None;
    }
    i += 1;
    // Scan for `"` followed by `hashes` `#`s; no escapes in raw strings.
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let fence = &bytes[i + 1..];
            if fence.len() >= hashes && fence[..hashes].iter().all(|&b| b == b'#') {
                return Some(i + 1 + hashes);
            }
        }
        i += 1;
    }
    Some(bytes.len())
}

/// Byte offset one past the char literal starting at `bytes[start] ==
/// b'\''`, or `None` when this quote begins a lifetime instead.
fn char_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    let next = *bytes.get(start + 1)?;
    if next == b'\\' {
        // Escaped char: skip the escape payload to the closing quote.
        let mut i = start + 2;
        if i < bytes.len() {
            i += 1; // the escaped character itself
        }
        // \x41 and \u{…} escapes have a longer payload.
        while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
            i += 1;
        }
        return if bytes.get(i) == Some(&b'\'') { Some(i + 1) } else { None };
    }
    if next == b'\'' {
        return None; // `''` — not a literal
    }
    // Multi-byte UTF-8 scalar or single ASCII char, then a closing quote.
    let width = utf8_width(next);
    match bytes.get(start + 1 + width) {
        Some(&b'\'') => Some(start + 2 + width),
        _ => None, // `'static`, `'a` — a lifetime
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        _ if b < 0x80 => 1,
        _ if b >> 5 == 0b110 => 2,
        _ if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

fn count_newlines(bytes: &[u8], from: usize, to: usize, line_start: &mut usize) -> usize {
    let mut n = 0;
    for (off, &b) in bytes[from..to].iter().enumerate() {
        if b == b'\n' {
            n += 1;
            *line_start = from + off + 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        mask(src).code
    }

    #[test]
    fn line_comments_are_masked_and_recorded() {
        let m = mask("let x = 1; // trailing note\n// full line\nlet y = 2;\n");
        assert!(m.code.contains("let x = 1;"));
        assert!(!m.code.contains("trailing"));
        assert!(!m.code.contains("full line"));
        assert_eq!(m.comments.len(), 2);
        assert_eq!(m.comments[0].line, 1);
        assert_eq!(m.comments[0].text, "// trailing note");
        assert_eq!(m.comments[1].line, 2);
        assert_eq!(m.comments[1].col, 0);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// calls .unwrap() for fun\n//! and panic!()\nfn f() {}\n";
        let code = masked(src);
        assert!(!code.contains("unwrap"));
        assert!(!code.contains("panic"));
        assert!(code.contains("fn f() {}"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still comment */ b";
        let code = masked(src);
        assert!(code.contains('a'));
        assert!(code.contains('b'));
        assert!(!code.contains("one"));
        assert!(!code.contains("still"));
    }

    #[test]
    fn block_doc_comments_mask_across_lines() {
        let src = "/** docs\nwith std::fs inside\n*/\nfn g() {}\n";
        let code = masked(src);
        assert!(!code.contains("std::fs"));
        assert!(code.contains("fn g() {}"));
        // Newlines survive, so line numbers line up.
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn strings_are_masked_including_comment_lookalikes() {
        let src = r#"let s = "not // a comment"; let t = "std::fs";"#;
        let code = masked(src);
        assert!(!code.contains("comment"));
        assert!(!code.contains("std::fs"));
        assert!(code.contains("let s ="));
        assert!(code.contains("let t ="));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "he said \"hi\" // then left"; done();"#;
        let code = masked(src);
        assert!(!code.contains("hi"));
        assert!(!code.contains("then left"));
        assert!(code.contains("done();"));
    }

    #[test]
    fn raw_strings_containing_comment_markers() {
        let src = r###"let s = r#"// not a comment "quote" /* nor this */"#; after();"###;
        let code = masked(src);
        assert!(!code.contains("not a comment"));
        assert!(!code.contains("nor this"));
        assert!(code.contains("after();"));
    }

    #[test]
    fn raw_strings_with_multiple_hashes_and_bytes() {
        let src = r####"let a = r##"ends "# not yet"##; let b = br"..//.."; tail();"####;
        let code = masked(src);
        assert!(!code.contains("not yet"));
        assert!(!code.contains("..//.."));
        assert!(code.contains("tail();"));
    }

    #[test]
    fn multiline_raw_string_preserves_line_count() {
        let src = "let q = r#\"line one\n// line two\npanic!()\n\"#;\nreal();\n";
        let m = mask(src);
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count());
        assert!(!m.code.contains("panic"));
        assert!(m.code.contains("real();"));
        assert!(m.comments.is_empty());
    }

    #[test]
    fn char_literals_including_quote_and_slash() {
        let src = "let a = '\"'; let b = '/'; let c = '\\''; let d = '\\\\'; end();";
        let code = masked(src);
        assert!(!code.contains('"'));
        assert!(!code.contains("'/'"));
        assert!(code.contains("end();"));
    }

    #[test]
    fn char_slash_pair_is_not_a_comment() {
        // Two adjacent char literals '/' must not fuse into `//`.
        let src = "if c == '/' && d == '/' { tail(); }";
        let code = masked(src);
        assert!(code.contains("tail();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x } // done";
        let code = masked(src);
        assert!(code.contains("'a"));
        assert!(code.contains("'static"));
        assert!(!code.contains("done"));
    }

    #[test]
    fn byte_literals() {
        let src = "let a = b'x'; let s = b\"std::fs\"; let r = br#\"//\"#; go();";
        let code = masked(src);
        assert!(!code.contains("std::fs"));
        assert!(code.contains("go();"));
        // The prefixes survive as code, the payloads do not.
        assert!(!code.contains("'x'"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = "let r#fn = 1; let r = 2; touch(r#fn, r);";
        let code = masked(src);
        assert!(code.contains("touch"));
        assert!(code.contains("r#fn"));
    }

    #[test]
    fn unicode_char_literal() {
        let src = "let c = 'λ'; let d = '\\u{1F600}'; after();";
        let code = masked(src);
        assert!(!code.contains('λ'));
        assert!(!code.contains("1F600"));
        assert!(code.contains("after();"));
    }

    #[test]
    fn masked_output_same_length_in_lines() {
        let src = "fn main() {\n    let x = \"a\nb\"; /* c\nd */ // e\n}\n";
        let m = mask(src);
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count());
    }
}
