//! The workspace invariant rules.
//!
//! Each rule scans the **masked** source (comments and literals blanked
//! by [`crate::lexer::mask`]) of files whose [`FileClass`] it covers,
//! skipping `#[cfg(test)]` regions, and reports [`Finding`]s that the
//! driver then filters through `lint:allow` suppressions. The rules are
//! grounded in contracts earlier PRs established by review and test
//! suite; see the crate docs for the full rationale of each.

use crate::lexer::Masked;
use crate::regions::{fn_spans, innermost_fn, test_spans, FileClass, Span};
use std::path::Path;

/// Names of every rule, in reporting order. `lint:allow` validates
/// against this list.
pub const RULE_NAMES: &[&str] =
    &["vfs-bypass", "no-panic-paths", "sync-protocol", "typed-errors", "no-debug-output"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule that fired (one of [`RULE_NAMES`], or the meta rules
    /// `bare-allow` / `unknown-rule` for malformed suppressions).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Where (by byte offset) each line of the masked source starts —
/// `line_of` turns offsets back into 1-based line numbers.
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Build the index for `text`.
    pub fn new(text: &str) -> LineIndex {
        let mut starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line containing byte `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

/// Everything a rule needs about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path (forward slashes).
    pub rel_path: String,
    /// The file's classification.
    pub class: FileClass,
    /// Original source (for snippets).
    pub source: &'a str,
    /// Masked source + comments.
    pub masked: &'a Masked,
    /// `#[cfg(test)]` spans in the masked source.
    pub test_spans: Vec<Span>,
    /// Line index over the masked source.
    pub lines: LineIndex,
}

impl<'a> FileContext<'a> {
    /// Assemble the context for one file.
    pub fn new(rel_path: &Path, class: FileClass, source: &'a str, masked: &'a Masked) -> Self {
        FileContext {
            rel_path: rel_path.to_string_lossy().replace('\\', "/"),
            class,
            source,
            masked,
            test_spans: test_spans(masked),
            lines: LineIndex::new(&masked.code),
        }
    }

    fn in_test_region(&self, pos: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(pos))
    }

    fn snippet_at(&self, line: usize) -> String {
        self.source.lines().nth(line.saturating_sub(1)).unwrap_or("").trim().to_string()
    }

    fn finding(&self, pos: usize, rule: &'static str, message: String) -> Finding {
        let line = self.lines.line_of(pos);
        Finding { path: self.rel_path.clone(), line, rule, message, snippet: self.snippet_at(line) }
    }
}

/// Run every rule applicable to the file. Suppressions are applied by the
/// caller (`lib.rs`), which also reports malformed allows.
pub fn run_rules(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    vfs_bypass(ctx, &mut findings);
    no_panic_paths(ctx, &mut findings);
    sync_protocol(ctx, &mut findings);
    typed_errors(ctx, &mut findings);
    no_debug_output(ctx, &mut findings);
    findings.sort_by_key(|f| f.line);
    findings
}

// ---- rule: vfs-bypass -------------------------------------------------

/// Paths exempt from `vfs-bypass`: the storage layer itself (it *is* the
/// `std::fs` boundary) and this linter (it reads source files by design
/// and never touches an engine store).
const VFS_EXEMPT: &[&str] = &["crates/cluster/src/vfs.rs", "crates/lint/"];

/// Every file operation in library code must go through the
/// `logr_cluster::vfs::Vfs` layer — the injection point the fault and
/// power-cut suites drive. Direct `std::fs` / `File::` / `OpenOptions`
/// use bypasses fault injection, IO retry, and the crash-replay trace.
fn vfs_bypass(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !matches!(ctx.class, FileClass::Library | FileClass::Binary) {
        return;
    }
    if VFS_EXEMPT.iter().any(|e| ctx.rel_path.starts_with(e)) {
        return;
    }
    for (pos, pat) in find_all(&ctx.masked.code, &["std::fs", "OpenOptions", "File::"]) {
        if ctx.in_test_region(pos) {
            continue;
        }
        out.push(ctx.finding(
            pos,
            "vfs-bypass",
            format!(
                "direct filesystem access (`{pat}`) bypasses the injectable Vfs layer; route it \
                 through `logr_cluster::vfs::Vfs` so fault injection and power-cut replay cover it"
            ),
        ));
    }
}

// ---- rule: no-panic-paths ---------------------------------------------

/// Crate roots whose library code must stay panic-free: the facade (its
/// contract is "every entry point returns a typed `Error`, never a
/// panic"), the two crates on the durable read/write path, the daemon
/// (one tenant's panic must never take down the process), and the source
/// crate (its featurizers sit on every ingest, and its journal replay on
/// every recovery).
const PANIC_FREE_ROOTS: &[&str] = &[
    "src/",
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/server/src/",
    "crates/source/src/",
];

/// No `.unwrap()` / `.expect(` / panicking macro in library code of the
/// durability-critical crates — a panic mid-write is how stores get torn
/// and how the "typed error, never a panic" recovery contract breaks.
fn no_panic_paths(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Library {
        return;
    }
    if !PANIC_FREE_ROOTS.iter().any(|r| ctx.rel_path.starts_with(r)) {
        return;
    }
    let patterns: &[&str] =
        &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];
    for (pos, pat) in find_all(&ctx.masked.code, patterns) {
        if ctx.in_test_region(pos) {
            continue;
        }
        out.push(ctx.finding(
            pos,
            "no-panic-paths",
            format!(
                "`{pat}` in durability-critical library code; return a typed error (see \
                 `logr::Error`) or justify with a lint:allow"
            ),
        ));
    }
}

// ---- rule: sync-protocol ----------------------------------------------

/// A `rename` in library code must sit in a function that also `fsync`s
/// the renamed file and `sync_dir`s the parent — the write-fsync-rename-
/// syncdir protocol that makes replacement atomic **and durable**. A
/// rename without the fsyncs can leave a durable name over unwritten
/// pages after power loss (the exact hole PR 6 closed in the spill path).
///
/// An `append` call must likewise pair with an `fsync` in the same
/// function — the delta-log commit protocol: a record is committed only
/// once its bytes are synced, and appending never changes the namespace,
/// so no `sync_dir` is required.
fn sync_protocol(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !matches!(ctx.class, FileClass::Library | FileClass::Binary) {
        return;
    }
    if VFS_EXEMPT.iter().any(|e| ctx.rel_path.starts_with(e)) {
        return;
    }
    let fns = fn_spans(ctx.masked);
    for (pos, _) in find_all(&ctx.masked.code, &["rename"]) {
        if ctx.in_test_region(pos) || !is_call(&ctx.masked.code, pos, "rename") {
            continue;
        }
        let Some(span) = innermost_fn(&fns, pos) else {
            out.push(
                ctx.finding(
                    pos,
                    "sync-protocol",
                    "`rename` call outside any function body; cannot verify the \
                 fsync→rename→sync_dir protocol"
                        .to_string(),
                ),
            );
            continue;
        };
        let body = &ctx.masked.code[span.start..span.end];
        let has_fsync = find_all(body, &["fsync"]).iter().any(|(p, _)| is_call(body, *p, "fsync"));
        let has_sync_dir =
            find_all(body, &["sync_dir"]).iter().any(|(p, _)| is_call(body, *p, "sync_dir"));
        if !(has_fsync && has_sync_dir) {
            let missing = match (has_fsync, has_sync_dir) {
                (false, false) => "fsync and sync_dir",
                (false, true) => "fsync",
                (true, false) => "sync_dir",
                _ => unreachable!("guarded above"),
            };
            out.push(ctx.finding(
                pos,
                "sync-protocol",
                format!(
                    "`rename` in a function that never calls {missing}: atomic replacement \
                     without durability — follow the write→fsync→rename→sync_dir protocol or \
                     justify with a lint:allow"
                ),
            ));
        }
    }
    for (pos, _) in find_all(&ctx.masked.code, &["append"]) {
        if ctx.in_test_region(pos) || !is_call(&ctx.masked.code, pos, "append") {
            continue;
        }
        let Some(span) = innermost_fn(&fns, pos) else {
            out.push(
                ctx.finding(
                    pos,
                    "sync-protocol",
                    "`append` call outside any function body; cannot verify the append→fsync \
                 commit protocol"
                        .to_string(),
                ),
            );
            continue;
        };
        let body = &ctx.masked.code[span.start..span.end];
        let has_fsync = find_all(body, &["fsync"]).iter().any(|(p, _)| is_call(body, *p, "fsync"));
        if !has_fsync {
            out.push(ctx.finding(
                pos,
                "sync-protocol",
                "`append` in a function that never calls fsync: the appended record can vanish \
                 after power loss while the caller believes it committed — follow the \
                 append→fsync commit protocol or justify with a lint:allow"
                    .to_string(),
            ));
        }
    }
}

// ---- rule: typed-errors -----------------------------------------------

/// Public functions of the facade crate must return the one crate-wide
/// `logr::Error`, not `Box<dyn Error>` or a bare `io::Error` — callers
/// match a single `#[non_exhaustive]` enum, and every lower-level failure
/// arrives through `From` conversions.
fn typed_errors(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    // The facade crate is the workspace root's `src/` tree; the daemon
    // and source crates hold the same line with their own error types.
    if ctx.class != FileClass::Library
        || !(ctx.rel_path.starts_with("src/")
            || ctx.rel_path.starts_with("crates/server/src/")
            || ctx.rel_path.starts_with("crates/source/src/"))
    {
        return;
    }
    let code = &ctx.masked.code;
    let bytes = code.as_bytes();
    for (pos, _) in find_all(code, &["pub fn ", "pub async fn "]) {
        if ctx.in_test_region(pos) {
            continue;
        }
        // Signature runs to the body `{` or a `;`.
        let sig_end = bytes[pos..]
            .iter()
            .position(|&b| b == b'{' || b == b';')
            .map(|off| pos + off)
            .unwrap_or(code.len());
        let sig = &code[pos..sig_end];
        for bad in ["Box<dyn", "io::Error", "std::io::Error"] {
            if let Some(off) = sig.find(bad) {
                // `io::Error` must not match `voodoo::Error`-style names.
                let at = pos + off;
                if bad.starts_with("io") && at > 0 && is_word_byte(bytes[at - 1]) {
                    continue;
                }
                out.push(ctx.finding(
                    at,
                    "typed-errors",
                    format!(
                        "public facade signature exposes `{bad}`; return the crate-wide \
                         `logr::Error` (lower-level errors convert in via `From`)"
                    ),
                ));
                break; // one finding per signature is enough
            }
        }
    }
}

// ---- rule: no-debug-output --------------------------------------------

/// No `println!` / `eprintln!` / `dbg!` in library code: a library's
/// observable surface is its return values, not a stdout side channel.
/// Binaries (`src/bin/`, `src/main.rs`) are exempt — their stdout *is*
/// the interface; library code that legitimately reports (the bench
/// table printer) writes through an explicit `io::Write` handle instead.
fn no_debug_output(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.class != FileClass::Library {
        return;
    }
    for (pos, pat) in
        find_all(&ctx.masked.code, &["println!", "eprintln!", "print!", "eprint!", "dbg!"])
    {
        if ctx.in_test_region(pos) {
            continue;
        }
        out.push(ctx.finding(
            pos,
            "no-debug-output",
            format!(
                "`{pat}` in library code; write to an explicit `io::Write` handle if output is \
                 the contract, or remove the debug print"
            ),
        ));
    }
}

// ---- shared matching helpers ------------------------------------------

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Every occurrence of any pattern in `code`, with word boundaries at
/// both ends (a boundary is only required where the pattern edge is a
/// word character — `.unwrap()` starts with `.`, which needs none).
fn find_all<'p>(code: &str, patterns: &[&'p str]) -> Vec<(usize, &'p str)> {
    let bytes = code.as_bytes();
    let mut hits = Vec::new();
    for &pat in patterns {
        let pat_bytes = pat.as_bytes();
        let first_is_word = is_word_byte(pat_bytes[0]);
        let last_is_word = is_word_byte(pat_bytes[pat_bytes.len() - 1]);
        let mut from = 0usize;
        while let Some(off) = code[from..].find(pat) {
            let at = from + off;
            let end = at + pat.len();
            let before_ok = !first_is_word || at == 0 || !is_word_byte(bytes[at - 1]);
            let after_ok = !last_is_word || end == bytes.len() || !is_word_byte(bytes[end]);
            if before_ok && after_ok {
                hits.push((at, pat));
            }
            from = at + 1;
        }
    }
    hits.sort_by_key(|&(p, _)| p);
    hits
}

/// Is the identifier at `pos` used as a method/path call — preceded
/// (ignoring whitespace) by `.` or `::` and followed (ignoring
/// whitespace) by `(`? Filters out struct fields and unrelated idents
/// named e.g. `rename`.
fn is_call(code: &str, pos: usize, ident: &str) -> bool {
    let bytes = code.as_bytes();
    // Word boundary on the left (find_all guarantees it when asked, but
    // callers pass raw positions too).
    if pos > 0 && is_word_byte(bytes[pos - 1]) {
        return false;
    }
    let mut before = pos;
    while before > 0 && (bytes[before - 1] as char).is_whitespace() {
        before -= 1;
    }
    let called_via = before >= 1 && bytes[before - 1] == b'.'
        || before >= 2 && &bytes[before - 2..before] == b"::";
    if !called_via {
        return false;
    }
    let mut after = pos + ident.len();
    while after < bytes.len() && (bytes[after] as char).is_whitespace() {
        after += 1;
    }
    bytes.get(after) == Some(&b'(')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;
    use std::path::PathBuf;

    fn lint_as(path: &str, class: FileClass, src: &str) -> Vec<Finding> {
        let masked = mask(src);
        let ctx = FileContext::new(&PathBuf::from(path), class, src, &masked);
        run_rules(&ctx)
    }

    #[test]
    fn call_detection() {
        let code = "vfs.rename(&a, &b); let rename = 1; s.rename; fs::rename(x, y);";
        let hits = find_all(code, &["rename"]);
        let calls: Vec<usize> =
            hits.iter().filter(|(p, _)| is_call(code, *p, "rename")).map(|(p, _)| *p).collect();
        assert_eq!(calls.len(), 2); // the method call and the path call
    }

    #[test]
    fn test_region_hits_are_skipped() {
        let src = "fn lib() { let _ = 1; }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); std::fs::read(p); println!(\"{}\", 1); }\n}\n";
        let findings = lint_as("crates/core/src/x.rs", FileClass::Library, src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn line_index_maps_positions() {
        let idx = LineIndex::new("a\nbb\nccc\n");
        assert_eq!(idx.line_of(0), 1);
        assert_eq!(idx.line_of(2), 2);
        assert_eq!(idx.line_of(3), 2);
        assert_eq!(idx.line_of(5), 3);
    }
}
