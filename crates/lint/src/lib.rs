//! `logr-lint` — the workspace invariant checker.
//!
//! The logr workspace carries contracts that `rustc` and clippy cannot
//! see: every file operation must flow through the injectable
//! [`Vfs`] layer so fault-injection and power-cut replay cover it;
//! durable replacement must follow the write→fsync→rename→sync_dir
//! protocol; the durability-critical crates must not panic in library
//! code; the facade's public surface speaks one typed error. Until this
//! crate, those contracts were enforced by review only. `logr-lint`
//! makes them machine-checked:
//!
//! ```text
//! cargo run -p logr-lint -- --deny
//! ```
//!
//! scans every `.rs` file in the workspace with a small purpose-built
//! lexer ([`lexer::mask`]) that blanks comments and string/char
//! literals while preserving byte offsets, classifies each file
//! ([`regions::classify`]) and its `#[cfg(test)]` regions, runs the
//! five rules ([`rules::RULE_NAMES`]), and applies inline suppressions
//! of the form:
//!
//! ```text
//! risky_call(); // lint:allow(<rule>): <justification>
//! ```
//!
//! A bare allow with no justification is itself an error — see
//! [`suppress`]. The binary exits non-zero under `--deny` when any
//! finding survives, which is what gates CI.
//!
//! [`Vfs`]: ../logr_cluster/vfs/trait.Vfs.html

pub mod lexer;
pub mod regions;
pub mod rules;
pub mod suppress;

use regions::{classify, FileClass};
use rules::{FileContext, Finding, RULE_NAMES};
use std::io;
use std::path::{Path, PathBuf};

/// Lint one file's source. `class` overrides path-based classification
/// when `Some` — the conformance suite uses this to lint fixture text as
/// library code regardless of where the fixture lives on disk.
pub fn lint_source(rel_path: &Path, class: Option<FileClass>, source: &str) -> Vec<Finding> {
    let class = class.unwrap_or_else(|| classify(rel_path));
    if class == FileClass::Vendored {
        return Vec::new();
    }
    let masked = lexer::mask(source);
    let ctx = FileContext::new(rel_path, class, source, &masked);
    let (allows, problems) = suppress::collect(&masked.comments, RULE_NAMES);
    let mut findings: Vec<Finding> = rules::run_rules(&ctx)
        .into_iter()
        .filter(|f| !suppress::is_allowed(&allows, f.rule, f.line))
        .collect();
    for p in problems {
        let (line, rule, message) = match p {
            suppress::AllowProblem::Bare { line } => (
                line,
                "bare-allow",
                "lint:allow without a justification; write \
                 `// lint:allow(<rule>): <why this exemption is sound>`"
                    .to_string(),
            ),
            suppress::AllowProblem::UnknownRule { line, name } => (
                line,
                "unknown-rule",
                format!(
                    "lint:allow names unknown rule `{name}` (known: {}); a typo here would \
                     silently suppress nothing",
                    RULE_NAMES.join(", ")
                ),
            ),
            suppress::AllowProblem::Malformed { line } => (
                line,
                "malformed-allow",
                "unparsable lint:allow; the syntax is `// lint:allow(<rule>[, <rule>]): \
                 <justification>`"
                    .to_string(),
            ),
        };
        findings.push(Finding {
            path: ctx.rel_path.clone(),
            line,
            rule,
            message,
            snippet: source.lines().nth(line.saturating_sub(1)).unwrap_or("").trim().to_string(),
        });
    }
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    findings
}

/// Directories never descended into: build output, VCS metadata, and the
/// linter's own conformance fixtures (deliberate violations).
fn skip_dir(rel: &Path, name: &str) -> bool {
    name.starts_with('.')
        || name == "target"
        || rel.to_string_lossy().replace('\\', "/").starts_with("crates/lint/tests/fixtures")
}

/// Walk `root` and lint every `.rs` file. Findings come back sorted by
/// path then line, with paths relative to `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(lint_source(&rel, None, &source));
    }
    Ok(findings)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if !skip_dir(&rel, &name) {
                walk(root, &path, out)?;
            }
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Render one finding in the `path:line: [rule] message` shape that
/// terminals and CI annotations both understand.
pub fn render(f: &Finding) -> String {
    format!("{}:{}: [{}] {}\n    {}", f.path, f.line, f.rule, f.message, f.snippet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendored_files_are_never_linted() {
        let src = "pub fn f() { x.unwrap(); std::fs::read(p); println!(\"x\"); }\n";
        let findings = lint_source(Path::new("crates/compat/rand/src/lib.rs"), None, src);
        assert!(findings.is_empty());
    }

    #[test]
    fn allow_suppresses_but_bare_allow_surfaces() {
        let src = "pub fn f() {\n    x.unwrap(); // lint:allow(no-panic-paths): invariant: x checked above\n    y.unwrap(); // lint:allow(no-panic-paths)\n}\n";
        let findings = lint_source(Path::new("src/demo.rs"), None, src);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        // Line 2 suppressed; line 3's violation stands AND the bare allow
        // is its own finding.
        assert!(rules.contains(&"bare-allow"), "{findings:?}");
        assert!(rules.contains(&"no-panic-paths"), "{findings:?}");
        assert_eq!(findings.iter().filter(|f| f.line == 2).count(), 0, "{findings:?}");
    }

    #[test]
    fn findings_carry_path_line_and_snippet() {
        let src = "pub fn f() {\n    let v = x.unwrap();\n}\n";
        let findings = lint_source(Path::new("src/demo.rs"), None, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "src/demo.rs");
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[0].snippet, "let v = x.unwrap();");
    }
}
