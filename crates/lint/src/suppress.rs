//! The inline suppression syntax:
//! `// lint:allow(<rule>): <justification>`.
//!
//! A trailing allow suppresses findings of the named rule(s) on **its own
//! line**; an allow standing alone on a line suppresses them on the next
//! line that is not itself a standalone allow (so several rules can be
//! stacked above one statement). The justification is mandatory — a bare
//! `// lint:allow(rule)` is itself a finding ([`AllowProblem::Bare`]),
//! because an unexplained exemption is exactly the review-only
//! enforcement this tool replaces. Unknown rule names are findings too
//! ([`AllowProblem::UnknownRule`]): a typo must not silently disable
//! nothing.

use crate::lexer::LineComment;

/// One parsed `lint:allow`, bound to the line it suppresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule names inside the parentheses.
    pub rules: Vec<String>,
    /// The line the allow suppresses findings on.
    pub target_line: usize,
    /// The line the comment itself is on.
    pub comment_line: usize,
    /// The justification text after the closing `): `.
    pub justification: String,
}

/// A malformed allow — reported as a finding by the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllowProblem {
    /// No `:` + justification after the rule list (or an empty one).
    Bare {
        /// Line of the offending comment.
        line: usize,
    },
    /// The rule list names a rule this linter does not have.
    UnknownRule {
        /// Line of the offending comment.
        line: usize,
        /// The unrecognized name.
        name: String,
    },
    /// `lint:allow` appeared without a parsable `(rule)` list.
    Malformed {
        /// Line of the offending comment.
        line: usize,
    },
}

/// Scan line comments for `lint:allow` markers. `known_rules` validates
/// the names. Returns the well-formed allows and every problem found.
pub fn collect(comments: &[LineComment], known_rules: &[&str]) -> (Vec<Allow>, Vec<AllowProblem>) {
    let mut allows = Vec::new();
    let mut problems = Vec::new();
    for c in comments {
        // The marker only counts at the start of the comment's content
        // (after doc-comment `/`/`!` markers and indentation) — prose that
        // merely *mentions* `lint:allow` mid-sentence is not a suppression.
        let content = c.text.trim_start_matches(['/', '!', ' ', '\t']);
        if !content.starts_with("lint:allow") {
            continue;
        }
        let rest = &content["lint:allow".len()..];
        let Some(open_rel) = rest.find('(') else {
            problems.push(AllowProblem::Malformed { line: c.line });
            continue;
        };
        // Only whitespace may sit between `lint:allow` and `(`.
        if !rest[..open_rel].trim().is_empty() {
            problems.push(AllowProblem::Malformed { line: c.line });
            continue;
        }
        let after_open = &rest[open_rel + 1..];
        let Some(close_rel) = after_open.find(')') else {
            problems.push(AllowProblem::Malformed { line: c.line });
            continue;
        };
        let rules: Vec<String> = after_open[..close_rel]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            problems.push(AllowProblem::Malformed { line: c.line });
            continue;
        }
        let mut ok = true;
        for r in &rules {
            if !known_rules.contains(&r.as_str()) {
                problems.push(AllowProblem::UnknownRule { line: c.line, name: r.clone() });
                ok = false;
            }
        }
        let tail = after_open[close_rel + 1..].trim();
        let justification = match tail.strip_prefix(':') {
            Some(j) if !j.trim().is_empty() => j.trim().to_string(),
            _ => {
                problems.push(AllowProblem::Bare { line: c.line });
                continue;
            }
        };
        if !ok {
            continue; // unknown rule already reported; don't also bind it
        }
        // A standalone comment targets the next line; a trailing comment
        // targets its own.
        let target_line = if c.leading { c.line + 1 } else { c.line };
        allows.push(Allow { rules, target_line, comment_line: c.line, justification });
    }
    // Stacked standalone allows all target the first following line that
    // is not itself a standalone allow comment.
    let standalone_lines: Vec<usize> = allows
        .iter()
        .filter(|a| a.target_line == a.comment_line + 1)
        .map(|a| a.comment_line)
        .collect();
    for a in &mut allows {
        if a.target_line == a.comment_line + 1 {
            let mut t = a.target_line;
            while standalone_lines.contains(&t) {
                t += 1;
            }
            a.target_line = t;
        }
    }
    (allows, problems)
}

/// Is a finding of `rule` on `line` suppressed by one of `allows`?
pub fn is_allowed(allows: &[Allow], rule: &str, line: usize) -> bool {
    allows.iter().any(|a| a.target_line == line && a.rules.iter().any(|r| r == rule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;

    const RULES: &[&str] =
        &["vfs-bypass", "no-panic-paths", "sync-protocol", "typed-errors", "no-debug-output"];

    fn parse(src: &str) -> (Vec<Allow>, Vec<AllowProblem>) {
        collect(&mask(src).comments, RULES)
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let (allows, problems) =
            parse("let x = f().unwrap(); // lint:allow(no-panic-paths): fixture value\n");
        assert!(problems.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].target_line, 1);
        assert_eq!(allows[0].rules, vec!["no-panic-paths"]);
        assert_eq!(allows[0].justification, "fixture value");
        assert!(is_allowed(&allows, "no-panic-paths", 1));
        assert!(!is_allowed(&allows, "vfs-bypass", 1));
    }

    #[test]
    fn standalone_allow_targets_next_line() {
        let src = "// lint:allow(vfs-bypass): tempdir helper outside the store\nstd::fs::create_dir_all(&d);\n";
        let (allows, problems) = parse(src);
        assert!(problems.is_empty());
        assert_eq!(allows[0].target_line, 2);
        assert!(is_allowed(&allows, "vfs-bypass", 2));
        assert!(!is_allowed(&allows, "vfs-bypass", 1));
    }

    #[test]
    fn bare_allow_is_a_problem() {
        let (allows, problems) = parse("x(); // lint:allow(no-panic-paths)\n");
        assert!(allows.is_empty());
        assert_eq!(problems, vec![AllowProblem::Bare { line: 1 }]);
    }

    #[test]
    fn empty_justification_is_bare() {
        let (allows, problems) = parse("x(); // lint:allow(no-panic-paths):   \n");
        assert!(allows.is_empty());
        assert_eq!(problems, vec![AllowProblem::Bare { line: 1 }]);
    }

    #[test]
    fn unknown_rule_is_a_problem() {
        let (allows, problems) = parse("x(); // lint:allow(no-panics): because\n");
        assert!(allows.is_empty());
        assert_eq!(problems, vec![AllowProblem::UnknownRule { line: 1, name: "no-panics".into() }]);
    }

    #[test]
    fn multiple_rules_in_one_allow() {
        let (allows, problems) =
            parse("y(); // lint:allow(vfs-bypass, no-panic-paths): test scaffolding\n");
        assert!(problems.is_empty());
        assert!(is_allowed(&allows, "vfs-bypass", 1));
        assert!(is_allowed(&allows, "no-panic-paths", 1));
    }

    #[test]
    fn stacked_standalone_allows_share_a_target() {
        let src = "// lint:allow(vfs-bypass): helper\n// lint:allow(no-panic-paths): helper\nstd::fs::read(p).unwrap();\n";
        let (allows, problems) = parse(src);
        assert!(problems.is_empty());
        assert!(is_allowed(&allows, "vfs-bypass", 3));
        assert!(is_allowed(&allows, "no-panic-paths", 3));
    }

    #[test]
    fn malformed_allow_is_a_problem() {
        let (_, problems) = parse("x(); // lint:allow no-panic-paths: because\n");
        assert_eq!(problems, vec![AllowProblem::Malformed { line: 1 }]);
    }

    #[test]
    fn allow_in_doc_comment_is_found() {
        // Doc comments are line comments too; an allow there still counts
        // (it reads naturally above the item it justifies).
        let (allows, _) = parse(
            "/// lint:allow(no-debug-output): CLI table printer\nfn p() { println!(\"x\"); }\n",
        );
        assert_eq!(allows.len(), 1);
    }
}
