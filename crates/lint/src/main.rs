//! CLI for the workspace invariant checker.
//!
//! ```text
//! logr-lint [ROOT] [--deny] [--list-rules]
//! ```
//!
//! `ROOT` defaults to the current directory (cargo runs binaries from
//! the workspace root, so `cargo run -p logr-lint -- --deny` scans the
//! whole workspace). Without `--deny` the tool reports and exits 0 —
//! useful while triaging; with it, any surviving finding exits 1, which
//! is what CI gates on.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list-rules" => {
                for r in logr_lint::rules::RULE_NAMES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: logr-lint [ROOT] [--deny] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("logr-lint: unrecognized argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let findings = match logr_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("logr-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for f in &findings {
        println!("{}", logr_lint::render(f));
    }
    if findings.is_empty() {
        println!("logr-lint: workspace clean ({} rules)", logr_lint::rules::RULE_NAMES.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "logr-lint: {} finding{} — fix or justify with `// lint:allow(<rule>): <why>`",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
