//! Region tracking: which parts of which files are *library code*.
//!
//! The workspace contracts bind production code only — tests exercise
//! failure paths on purpose (`unwrap()` a fixture, `std::fs::write`
//! corruption into a store). Two layers decide what counts:
//!
//! * **File classification** ([`FileClass`], [`classify`]) — by path:
//!   `tests/`, `benches/`, and `examples/` trees are test/harness code;
//!   `src/bin/` and `src/main.rs` are CLI binaries (their stdout *is*
//!   their interface); `crates/compat/` holds vendored stand-ins for
//!   external crates (not ours to lint); everything else under a `src/`
//!   tree is library code.
//! * **`#[cfg(test)]` spans** ([`test_spans`]) — inline test modules
//!   inside library files, tracked by brace matching over the masked
//!   source so spans survive nested modules, and strings or comments
//!   containing braces.

use crate::lexer::Masked;
use std::path::Path;

/// What kind of code a file holds, decided from its workspace-relative
/// path (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code — the contracts apply in full.
    Library,
    /// A binary entry point (`src/bin/`, `src/main.rs`): storage and
    /// panic contracts apply, but printing to stdout is its job.
    Binary,
    /// `tests/`, `benches/`, `examples/`: exempt from the contracts.
    Test,
    /// `crates/compat/`: vendored stand-ins for external crates, not
    /// linted.
    Vendored,
}

/// Classify a file by its path **relative to the workspace root**.
pub fn classify(rel_path: &Path) -> FileClass {
    let p = rel_path.to_string_lossy().replace('\\', "/");
    if p.starts_with("crates/compat/") {
        return FileClass::Vendored;
    }
    let in_dir = |dir: &str| p.starts_with(&format!("{dir}/")) || p.contains(&format!("/{dir}/"));
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        return FileClass::Test;
    }
    if p.contains("/src/bin/") || p.ends_with("src/main.rs") {
        return FileClass::Binary;
    }
    FileClass::Library
}

/// A half-open byte range `[start, end)` of the masked source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the span.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Does the span contain byte offset `pos`?
    pub fn contains(&self, pos: usize) -> bool {
        self.start <= pos && pos < self.end
    }
}

/// Byte spans of every `#[cfg(test)]`-gated item in the masked source:
/// from the attribute's `#` through the item's closing brace. An
/// out-of-line gated item (`#[cfg(test)] mod tests;`) contributes no
/// span — its body lives in another file, classified by path.
///
/// The predicate is deliberately broad: any `#[cfg(…)]` whose argument
/// list mentions `test` as a word gates test-only code (`test`,
/// `all(test, …)`, `any(test, …)`). `#[cfg_attr(…)]` does **not** match —
/// it configures attributes, not compilation.
pub fn test_spans(masked: &Masked) -> Vec<Span> {
    let code = masked.code.as_bytes();
    let mut spans: Vec<Span> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i] != b'#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        j = skip_ws(code, j);
        if code.get(j) != Some(&b'[') {
            i += 1;
            continue;
        }
        j = skip_ws(code, j + 1);
        if !ident_at(code, j, "cfg") {
            i += 1;
            continue;
        }
        j = skip_ws(code, j + 3);
        if code.get(j) != Some(&b'(') {
            i += 1; // `cfg_attr` and friends fall out here
            continue;
        }
        let Some(args_end) = match_close(code, j, b'(', b')') else { break };
        let args = &masked.code[j + 1..args_end];
        let gates_tests = has_word(args, "test");
        // Move past the attribute's closing `]`.
        let Some(attr_end) = match_close(code, skip_ws(code, attr_start + 1), b'[', b']') else {
            break;
        };
        i = attr_end + 1;
        if !gates_tests {
            continue;
        }
        // The gated item runs to its closing brace; a `;` first means an
        // out-of-line item with no body here. Intervening attributes
        // (`#[allow(…)]` under the cfg) have their own brackets — skip
        // any bracketed group while looking for the item's `{`.
        let mut k = i;
        loop {
            k = skip_ws(code, k);
            match code.get(k) {
                None => break,
                Some(b';') => break,
                Some(b'{') => {
                    if let Some(close) = match_close(code, k, b'{', b'}') {
                        spans.push(Span { start: attr_start, end: close + 1 });
                        i = close + 1;
                    }
                    break;
                }
                Some(b'#') => {
                    let b = skip_ws(code, k + 1);
                    match code.get(b) {
                        Some(&b'[') => match match_close(code, b, b'[', b']') {
                            Some(close) => k = close + 1,
                            None => break,
                        },
                        _ => break,
                    }
                }
                Some(_) => k += 1,
            }
        }
    }
    spans
}

/// Byte spans of every `fn` **body** (brace to matching brace) in the
/// masked source, innermost-resolvable by picking the smallest span
/// containing an offset. Trait method declarations (`fn f();`) have no
/// body and contribute nothing.
pub fn fn_spans(masked: &Masked) -> Vec<Span> {
    let code = masked.code.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 2 <= code.len() {
        if !ident_at(code, i, "fn") {
            i += 1;
            continue;
        }
        // From the signature, find the body's `{` or a `;` (no body).
        // Parens and angle brackets in the signature may nest; braces
        // cannot appear before the body's own `{`.
        let mut j = i + 2;
        let mut body = None;
        while j < code.len() {
            match code[j] {
                b'{' => {
                    body = Some(j);
                    break;
                }
                b';' => break,
                b'(' => match match_close(code, j, b'(', b')') {
                    Some(close) => j = close + 1,
                    None => break,
                },
                _ => j += 1,
            }
        }
        if let Some(open) = body {
            if let Some(close) = match_close(code, open, b'{', b'}') {
                spans.push(Span { start: open, end: close + 1 });
            }
            i = open + 1; // nested fns inside the body still get found
        } else {
            i = j + 1;
        }
    }
    spans
}

/// The smallest (innermost) fn-body span containing `pos`.
pub fn innermost_fn(spans: &[Span], pos: usize) -> Option<Span> {
    spans.iter().filter(|s| s.contains(pos)).min_by_key(|s| s.end - s.start).copied()
}

fn skip_ws(code: &[u8], mut i: usize) -> usize {
    while i < code.len() && (code[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

/// Is the exact identifier `word` at offset `i` (word boundaries on both
/// sides)?
fn ident_at(code: &[u8], i: usize, word: &str) -> bool {
    let w = word.as_bytes();
    if i + w.len() > code.len() || &code[i..i + w.len()] != w {
        return false;
    }
    let before_ok = i == 0 || !is_word(code[i - 1]);
    let after_ok = i + w.len() == code.len() || !is_word(code[i + w.len()]);
    before_ok && after_ok
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does `text` contain `word` with word boundaries?
fn has_word(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(off) = text[from..].find(word) {
        let at = from + off;
        let before_ok = at == 0 || !is_word(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end == bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Offset of the bracket matching `code[open]` (which must be `open_b`),
/// or `None` when unbalanced.
fn match_close(code: &[u8], open: usize, open_b: u8, close_b: u8) -> Option<usize> {
    debug_assert_eq!(code.get(open), Some(&open_b));
    let mut depth = 0usize;
    for (off, &b) in code[open..].iter().enumerate() {
        if b == open_b {
            depth += 1;
        } else if b == close_b {
            depth -= 1;
            if depth == 0 {
                return Some(open + off);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;
    use std::path::PathBuf;

    fn spans_of(src: &str) -> (Masked, Vec<Span>) {
        let m = mask(src);
        let s = test_spans(&m);
        (m, s)
    }

    #[test]
    fn classification_by_path() {
        let c = |p: &str| classify(&PathBuf::from(p));
        assert_eq!(c("src/engine.rs"), FileClass::Library);
        assert_eq!(c("crates/cluster/src/spill.rs"), FileClass::Library);
        assert_eq!(c("tests/engine_recovery.rs"), FileClass::Test);
        assert_eq!(c("crates/cluster/tests/spill_format.rs"), FileClass::Test);
        assert_eq!(c("crates/bench/benches/spill.rs"), FileClass::Test);
        assert_eq!(c("examples/quickstart.rs"), FileClass::Test);
        assert_eq!(c("crates/bench/src/bin/repro.rs"), FileClass::Binary);
        assert_eq!(c("crates/lint/src/main.rs"), FileClass::Binary);
        assert_eq!(c("crates/compat/rand/src/lib.rs"), FileClass::Vendored);
    }

    #[test]
    fn cfg_test_module_span() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let (m, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        let unwrap_pos = m.code.find("unwrap").unwrap();
        assert!(spans[0].contains(unwrap_pos));
        let more_pos = m.code.find("more").unwrap();
        assert!(!spans[0].contains(more_pos));
    }

    #[test]
    fn cfg_test_spans_nested_modules() {
        let src = "#[cfg(test)]\nmod outer {\n    mod inner {\n        mod deepest { fn t() {} }\n    }\n}\nfn lib() {}\n";
        let (m, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        let deepest = m.code.find("deepest").unwrap();
        assert!(spans[0].contains(deepest));
        assert!(!spans[0].contains(m.code.find("lib").unwrap()));
    }

    #[test]
    fn cfg_any_test_counts_cfg_attr_does_not() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() {} }\n#[cfg_attr(test, derive(Debug))]\nstruct S { f: u8 }\n";
        let (m, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].contains(m.code.find("h()").unwrap()));
        assert!(!spans[0].contains(m.code.find("struct S").unwrap()));
    }

    #[test]
    fn cfg_test_with_intervening_attribute() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\nfn lib() {}\n";
        let (m, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].contains(m.code.find("t()").unwrap()));
        assert!(!spans[0].contains(m.code.find("lib").unwrap()));
    }

    #[test]
    fn out_of_line_cfg_test_module_has_no_span() {
        let (_, spans) = spans_of("#[cfg(test)]\nmod tests;\nfn lib() {}\n");
        assert!(spans.is_empty());
    }

    #[test]
    fn cfg_feature_is_not_a_test_span() {
        let (_, spans) = spans_of("#[cfg(feature = \"testing\")]\nmod x { }\n");
        // `testing` is not the word `test`.
        assert!(spans.is_empty());
    }

    #[test]
    fn braces_in_strings_do_not_break_span_tracking() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}{\";\n    fn t() {}\n}\nfn lib() {}\n";
        let (m, spans) = spans_of(src);
        assert_eq!(spans.len(), 1);
        assert!(!spans[0].contains(m.code.find("lib").unwrap()));
    }

    #[test]
    fn fn_spans_nest_and_innermost_wins() {
        let src = "fn outer() {\n    fn inner() { target(); }\n    other();\n}\n";
        let m = mask(src);
        let spans = fn_spans(&m);
        assert_eq!(spans.len(), 2);
        let target = m.code.find("target").unwrap();
        let inner = innermost_fn(&spans, target).unwrap();
        let outer = innermost_fn(&spans, m.code.find("other").unwrap()).unwrap();
        assert!(inner.end - inner.start < outer.end - outer.start);
    }

    #[test]
    fn trait_decl_without_body_is_skipped() {
        let src = "trait T {\n    fn decl(&self);\n    fn with_default(&self) { body(); }\n}\n";
        let m = mask(src);
        let spans = fn_spans(&m);
        assert_eq!(spans.len(), 1);
        assert!(spans[0].contains(m.code.find("body").unwrap()));
    }
}
