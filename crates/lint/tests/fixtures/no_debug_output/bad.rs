//! Positive fixture: stdout/stderr side channels in library code.

pub fn compute(x: u32) -> u32 {
    println!("debug {x}");
    eprintln!("still here");
    x + 1
}
