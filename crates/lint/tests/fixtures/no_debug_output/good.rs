//! Negative fixture: output through an explicit handle; `println!` in a
//! string literal or test module does not count.

use std::io::Write;

pub fn report(out: &mut dyn Write, x: u32) -> std::io::Result<()> {
    let tip = "use println!(..) only in binaries";
    writeln!(out, "value {x} ({tip})")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debugging a test is fine");
    }
}
