//! Negative fixture: a justified allow (trailing and standalone forms)
//! silences the named rule and nothing else.

pub fn len(starts: &[usize]) -> usize {
    *starts.last().expect("never empty") // lint:allow(no-panic-paths): seeded with one element at construction
}

pub fn first(starts: &[usize]) -> usize {
    // lint:allow(no-panic-paths): same construction invariant as len()
    *starts.first().expect("never empty")
}
