//! Positive fixture: a typo'd rule name must not silently suppress
//! nothing.

pub fn len(starts: &[usize]) -> usize {
    *starts.last().expect("never empty") // lint:allow(no-panics): misspelled rule
}
