//! Positive fixture: an allow with no justification is itself a finding,
//! and does not suppress the violation it sits on.

pub fn len(starts: &[usize]) -> usize {
    *starts.last().expect("never empty") // lint:allow(no-panic-paths)
}
