//! Positive fixture: panicking operators in durability-critical library
//! code.

pub fn parse(input: &str) -> u32 {
    input.parse().unwrap()
}

pub fn header(bytes: &[u8]) -> u8 {
    bytes.first().copied().expect("non-empty header")
}

pub fn later() {
    todo!("write this")
}
