//! Negative fixture: typed errors on the library path; panics stay in
//! test code.

pub fn parse(input: &str) -> Result<u32, Error> {
    input.parse().map_err(|_| Error::BadInput)
}

pub fn header(bytes: &[u8]) -> Result<u8, Error> {
    bytes.first().copied().ok_or(Error::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses() {
        assert_eq!(parse("7").unwrap(), 7);
    }

    mod nested {
        #[test]
        fn nested_test_modules_are_test_regions_too() {
            "8".parse::<u32>().expect("parses");
        }
    }
}
