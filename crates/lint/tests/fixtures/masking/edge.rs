//! Negative fixture: every lexer edge case that could fake a violation —
//! the linter must see code, not comment or literal text.
//! Doc text mentioning x.unwrap() stays doc text.

pub fn edge_cases() -> usize {
    let raw = r#"raw string with // not-a-comment and x.unwrap() inside"#;
    let fenced = r##"nested fence: "# still inside "## ;
    let byte_raw = br#"byte raw: std::fs::write"#;
    /* block comment
       /* nested block comment with println!("x") */
       still commented: .expect("nope")
    */
    let quote_char = '"';
    let escaped = '\'';
    let newline = '\n';
    let lifetime: &'static str = "tick 'a is a lifetime, not a char literal";
    let s = "string with \" escape and .unwrap() text";
    (raw.len() + fenced.len() + byte_raw.len() + s.len() + lifetime.len())
        + (quote_char as usize + escaped as usize + newline as usize)
}
