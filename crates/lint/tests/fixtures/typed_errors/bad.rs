//! Positive fixture: public facade signatures leaking untyped errors.

use std::path::Path;

pub fn load(path: &Path) -> Result<Vec<u8>, std::io::Error> {
    Ok(Vec::new())
}

pub fn run() -> Result<(), Box<dyn std::error::Error>> {
    Ok(())
}
