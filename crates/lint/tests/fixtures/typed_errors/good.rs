//! Negative fixture: the public surface speaks the crate error; private
//! helpers may use io::Error internally.

use std::path::Path;

pub fn load(path: &Path) -> Result<Vec<u8>, Error> {
    read_raw(path).map_err(Error::from)
}

fn read_raw(_path: &Path) -> Result<Vec<u8>, std::io::Error> {
    Ok(Vec::new())
}
