//! Negative fixture: files go through the injected Vfs; textual mentions
//! of std::fs in comments, strings, and test code do not count.

use std::path::Path;

pub fn save(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    // A comment naming std::fs::write is not a call.
    let banner = "routing around std::fs::File::create on purpose";
    let raw = r#"raw literal: std::fs::OpenOptions"#;
    let _ = (banner, raw);
    vfs.write(path, bytes)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_may_use_std_fs() {
        let dir = std::env::temp_dir().join("fixture");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
