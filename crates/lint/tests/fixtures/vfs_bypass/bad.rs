//! Positive fixture: raw std::fs access in library code.

use std::path::Path;

pub fn save(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}

pub fn open_options(path: &Path) -> std::io::Result<()> {
    let _ = std::fs::OpenOptions::new().append(true).open(path)?;
    Ok(())
}
