//! Positive fixture: rename without the fsync/sync_dir halves of the
//! durable-replacement protocol.

use std::path::Path;

pub fn replace(vfs: &dyn Vfs, tmp: &Path, dst: &Path) -> std::io::Result<()> {
    vfs.rename(tmp, dst)
}

pub fn log_record(vfs: &dyn Vfs, log: &Path, frame: &[u8]) -> std::io::Result<()> {
    vfs.append(log, frame)
}
