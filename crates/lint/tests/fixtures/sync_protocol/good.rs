//! Negative fixture: the full write -> fsync -> rename -> sync_dir
//! protocol, plus a justified allow for a non-durable rename.

use std::path::Path;

pub fn replace(vfs: &dyn Vfs, tmp: &Path, dst: &Path, dir: &Path) -> std::io::Result<()> {
    vfs.fsync(tmp)?;
    vfs.rename(tmp, dst)?;
    vfs.sync_dir(dir)
}

pub fn shuffle_lock(vfs: &dyn Vfs, a: &Path, b: &Path) -> std::io::Result<()> {
    // lint:allow(sync-protocol): advisory scratch file; losing it to power-off is harmless
    vfs.rename(a, b)
}

pub fn commit_record(vfs: &dyn Vfs, log: &Path, frame: &[u8]) -> std::io::Result<()> {
    vfs.append(log, frame)?;
    vfs.fsync(log)
}
