//! Fixture-based conformance suite: every rule has at least one positive
//! (the rule fires, at the expected lines) and one negative (clean code,
//! plus the comment/literal/test-region text that must NOT count) case.
//!
//! Fixtures live in `tests/fixtures/` and are embedded at compile time;
//! each is linted **as if** it sat at a library path inside the rule's
//! scope (the `lint_source` path argument controls scoping, not the
//! fixture's on-disk location, which the workspace walker skips).

use logr_lint::lint_source;
use logr_lint::rules::Finding;
use std::path::Path;

fn lint_at(path: &str, src: &str) -> Vec<Finding> {
    lint_source(Path::new(path), None, src)
}

fn rules_fired(findings: &[Finding]) -> Vec<&str> {
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

// ---- vfs-bypass --------------------------------------------------------

#[test]
fn vfs_bypass_positive() {
    let findings =
        lint_at("crates/core/src/fixture.rs", include_str!("fixtures/vfs_bypass/bad.rs"));
    let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == "vfs-bypass").collect();
    assert!(hits.len() >= 2, "expected std::fs and OpenOptions hits: {findings:?}");
    assert!(hits.iter().any(|f| f.line == 6), "std::fs::write line: {hits:?}");
    assert!(hits.iter().all(|f| !f.snippet.is_empty()));
}

#[test]
fn vfs_bypass_negative() {
    let findings =
        lint_at("crates/core/src/fixture.rs", include_str!("fixtures/vfs_bypass/good.rs"));
    assert!(
        findings.iter().all(|f| f.rule != "vfs-bypass"),
        "comments/strings/tests must not fire: {findings:?}"
    );
}

#[test]
fn vfs_bypass_does_not_apply_to_the_vfs_layer_itself() {
    let findings = lint_at(
        "crates/cluster/src/vfs.rs",
        "pub fn passthrough(p: &std::path::Path) -> std::io::Result<Vec<u8>> { std::fs::read(p) }\n",
    );
    assert!(findings.iter().all(|f| f.rule != "vfs-bypass"), "{findings:?}");
}

// ---- no-panic-paths ----------------------------------------------------

#[test]
fn no_panic_paths_positive() {
    let findings =
        lint_at("crates/cluster/src/fixture.rs", include_str!("fixtures/no_panic_paths/bad.rs"));
    let hits: Vec<usize> =
        findings.iter().filter(|f| f.rule == "no-panic-paths").map(|f| f.line).collect();
    assert_eq!(hits, vec![5, 9, 13], "unwrap, expect, todo lines: {findings:?}");
}

#[test]
fn no_panic_paths_negative() {
    let findings =
        lint_at("crates/cluster/src/fixture.rs", include_str!("fixtures/no_panic_paths/good.rs"));
    assert!(findings.is_empty(), "typed errors + test-only panics are clean: {findings:?}");
}

#[test]
fn no_panic_paths_only_covers_durability_critical_crates() {
    let src = include_str!("fixtures/no_panic_paths/bad.rs");
    let findings = lint_at("crates/bench/src/fixture.rs", src);
    assert!(findings.iter().all(|f| f.rule != "no-panic-paths"), "{findings:?}");
}

// ---- sync-protocol -----------------------------------------------------

#[test]
fn sync_protocol_positive() {
    let findings =
        lint_at("crates/cluster/src/fixture.rs", include_str!("fixtures/sync_protocol/bad.rs"));
    let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == "sync-protocol").collect();
    assert_eq!(hits.len(), 2, "{findings:?}");
    assert_eq!(hits[0].line, 7);
    assert!(hits[0].message.contains("fsync and sync_dir"), "{}", hits[0].message);
    assert_eq!(hits[1].line, 11, "the unsynced log append: {findings:?}");
    assert!(hits[1].message.contains("append→fsync"), "{}", hits[1].message);
}

#[test]
fn sync_protocol_negative() {
    let findings =
        lint_at("crates/cluster/src/fixture.rs", include_str!("fixtures/sync_protocol/good.rs"));
    assert!(findings.is_empty(), "full protocol + justified allow are clean: {findings:?}");
}

// ---- typed-errors ------------------------------------------------------

#[test]
fn typed_errors_positive() {
    let findings = lint_at("src/fixture.rs", include_str!("fixtures/typed_errors/bad.rs"));
    let hits: Vec<usize> =
        findings.iter().filter(|f| f.rule == "typed-errors").map(|f| f.line).collect();
    assert_eq!(hits, vec![5, 9], "io::Error and Box<dyn lines: {findings:?}");
}

#[test]
fn typed_errors_negative() {
    let findings = lint_at("src/fixture.rs", include_str!("fixtures/typed_errors/good.rs"));
    assert!(findings.is_empty(), "crate error + private io::Error helper: {findings:?}");
}

#[test]
fn typed_errors_only_covers_the_facade() {
    let src = include_str!("fixtures/typed_errors/bad.rs");
    let findings = lint_at("crates/bench/src/fixture.rs", src);
    assert!(findings.iter().all(|f| f.rule != "typed-errors"), "{findings:?}");
}

// ---- no-debug-output ---------------------------------------------------

#[test]
fn no_debug_output_positive() {
    let findings =
        lint_at("crates/bench/src/fixture.rs", include_str!("fixtures/no_debug_output/bad.rs"));
    let hits: Vec<usize> =
        findings.iter().filter(|f| f.rule == "no-debug-output").map(|f| f.line).collect();
    assert_eq!(hits, vec![4, 5], "println and eprintln lines: {findings:?}");
}

#[test]
fn no_debug_output_negative() {
    let findings =
        lint_at("crates/bench/src/fixture.rs", include_str!("fixtures/no_debug_output/good.rs"));
    assert!(findings.is_empty(), "explicit handle + literal/test prints: {findings:?}");
}

#[test]
fn no_debug_output_exempts_binaries() {
    let src = include_str!("fixtures/no_debug_output/bad.rs");
    let findings = lint_at("crates/bench/src/bin/fixture.rs", src);
    assert!(findings.is_empty(), "a binary's stdout is its interface: {findings:?}");
}

// ---- suppression -------------------------------------------------------

#[test]
fn justified_allows_suppress() {
    let findings =
        lint_at("crates/cluster/src/fixture.rs", include_str!("fixtures/suppress/allowed.rs"));
    assert!(findings.is_empty(), "trailing and standalone allows: {findings:?}");
}

#[test]
fn bare_allow_is_reported_and_does_not_suppress() {
    let findings =
        lint_at("crates/cluster/src/fixture.rs", include_str!("fixtures/suppress/bare.rs"));
    let fired = rules_fired(&findings);
    assert!(fired.contains(&"bare-allow"), "{findings:?}");
    assert!(fired.contains(&"no-panic-paths"), "unjustified allow must not suppress: {findings:?}");
}

#[test]
fn unknown_rule_is_reported_and_does_not_suppress() {
    let findings =
        lint_at("crates/cluster/src/fixture.rs", include_str!("fixtures/suppress/unknown.rs"));
    let fired = rules_fired(&findings);
    assert!(fired.contains(&"unknown-rule"), "{findings:?}");
    assert!(findings.iter().any(|f| f.rule == "unknown-rule" && f.message.contains("no-panics")));
    assert!(fired.contains(&"no-panic-paths"), "typo'd allow must not suppress: {findings:?}");
}

// ---- lexer edge cases end to end --------------------------------------

#[test]
fn masking_edge_cases_produce_no_findings() {
    let findings =
        lint_at("crates/cluster/src/fixture.rs", include_str!("fixtures/masking/edge.rs"));
    assert!(findings.is_empty(), "literal/comment text must never fire: {findings:?}");
}

// ---- the workspace itself ---------------------------------------------

#[test]
fn workspace_is_clean() {
    // `cargo test` enforces the invariants too, not just the CI lint job:
    // scan the real workspace from the lint crate's manifest dir.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = logr_lint::lint_workspace(&root).expect("workspace scan");
    let rendered: Vec<String> = findings.iter().map(logr_lint::render).collect();
    assert!(findings.is_empty(), "workspace violations:\n{}", rendered.join("\n"));
}
