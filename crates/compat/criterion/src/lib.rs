//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `black_box`, `BenchmarkId`, benchmark groups with `sample_size` /
//! `bench_function` / `bench_with_input`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple warmup-then-sample timer
//! instead of criterion's statistical machinery.
//!
//! Every benchmark prints one aligned line:
//!
//! ```text
//! distance_matrix/hamming  time: [1.2345 ms 1.2401 ms]   (min mean)
//! ```
//!
//! and, when the `CRITERION_SHIM_JSON` environment variable names a file,
//! appends one JSON object per benchmark to it (used by the repo's
//! `BENCH_*.json` records and CI smoke checks).
//!
//! Environment knobs: `CRITERION_SHIM_BUDGET_MS` (per-benchmark measurement
//! budget, default 300).

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value laundering so the optimizer cannot elide benchmarked work.
#[inline]
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Identifier for parameterized benchmarks (`BenchmarkId::new("enc", n)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

/// Timing collector handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Benchmark `routine`: warm up, then repeatedly time batches until the
    /// measurement budget is spent. Per-iteration nanoseconds are recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + per-iteration estimate (at least one run, ~10% of budget).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.budget / 10 || warm_iters >= 1000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Aim for ~50 samples within the budget, at least 1 iter per sample.
        let budget_s = self.budget.as_secs_f64();
        let iters_per_sample = ((budget_s / 50.0) / per_iter.max(1e-9)).max(1.0) as u64;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline && self.samples.len() < 200 {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
        if self.samples.is_empty() {
            self.samples.push(per_iter * 1e9);
        }
    }
}

#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    min_ns: f64,
    mean_ns: f64,
    samples: usize,
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.4} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.4} ms", ns / 1_000_000.0)
    } else {
        format!("{:.4} s", ns / 1_000_000_000.0)
    }
}

/// The shim harness: runs benchmarks eagerly and records results.
pub struct Criterion {
    budget: Duration,
    results: Vec<BenchResult>,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(budget_ms),
            results: Vec::new(),
            json_path: std::env::var("CRITERION_SHIM_JSON").ok(),
        }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher { budget: self.budget, samples: Vec::new() };
        f(&mut bencher);
        let samples = bencher.samples;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!("{id:<48} time: [{} {}]", format_time(min), format_time(mean));
        let result = BenchResult { id, min_ns: min, mean_ns: mean, samples: samples.len() };
        if let Some(path) = &self.json_path {
            if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(
                    file,
                    "{{\"id\":\"{}\",\"min_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}",
                    result.id, result.min_ns, result.mean_ns, result.samples
                );
            }
        }
        self.results.push(result);
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.run_one(id.into(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Print the closing summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks run", self.results.len());
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time
    /// budget, not count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(full, f);
        self
    }

    /// Run `group_name/id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c =
            Criterion { budget: Duration::from_millis(10), results: Vec::new(), json_path: None };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].min_ns >= 0.0);
        assert!(c.results[0].mean_ns >= c.results[0].min_ns);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c =
            Criterion { budget: Duration::from_millis(5), results: Vec::new(), json_path: None };
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).bench_function("a", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("b", 7), &7, |b, &x| b.iter(|| black_box(x * 2)));
        g.finish();
        assert_eq!(c.results[0].id, "grp/a");
        assert_eq!(c.results[1].id, "grp/b/7");
    }
}
