//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no registry access, so the
//! external `rand` dependency is replaced by this shim, which implements the
//! exact API subset the workspace consumes: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_range`,
//! and `gen_bool`. The generator is xoshiro256++ (Blackman & Vigna) seeded
//! through SplitMix64 — not the upstream ChaCha12 stream, so seeded
//! sequences differ from real `rand`, but every workspace consumer only
//! relies on determinism and uniformity, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f64` in `[0,1)`,
    /// uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`). The element type
    /// is inferred from the call site, as in real `rand`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: UniformRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from raw bits (the `Standard` distribution).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly into `T`.
pub trait UniformRange<T> {
    /// Draw one value; panics on an empty range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, span)` via Lemire's multiply-shift rejection.
#[inline]
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl UniformRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

pub mod rngs {
    //! Concrete generators (`StdRng`).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the shim's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start at the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples did not span [0, 1)");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
