//! `any::<T>()` — the canonical strategy per type.

use crate::strategy::Strategy;
use crate::test_rng::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag = (rng.unit_f64() * 40.0) - 20.0;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag) * rng.unit_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally wider code points.
        match rng.below(10) {
            0..=7 => (0x20 + rng.below(0x5F) as u32) as u8 as char,
            8 => char::from_u32(0xA1 + rng.below(0xFF) as u32).unwrap_or('x'),
            _ => ['λ', '中', '🦀', 'ß', '\u{2028}'][rng.below(5) as usize],
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
