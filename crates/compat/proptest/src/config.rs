//! Run configuration (`ProptestConfig`).

/// How many cases each `proptest!` test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
