//! Generation from a small regex subset, for `"pattern"` strategies.
//!
//! Supported syntax — the subset the workspace's tests use:
//!
//! * literal characters;
//! * character classes `[a-z0-9_]` (ranges and single characters);
//! * `\PC` — any printable (non-control) character, mostly ASCII with an
//!   occasional multi-byte code point;
//! * `\x` — escaped literal character;
//! * quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones are
//!   capped at 8 repetitions).

use crate::test_rng::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive code-point ranges; sampled uniformly by total size.
    Class(Vec<(u32, u32)>),
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let inner = &chars[i + 1..i + close];
                i += close + 1;
                Atom::Class(parse_class(inner, pattern))
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') if chars.get(i + 1) == Some(&'C') => {
                        i += 2;
                        Atom::Printable
                    }
                    Some(&c) => {
                        i += 1;
                        Atom::Literal(c)
                    }
                    None => panic!("dangling escape in pattern {pattern:?}"),
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(inner: &[char], pattern: &str) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut j = 0;
    while j < inner.len() {
        if j + 2 < inner.len() && inner[j + 1] == '-' {
            let (lo, hi) = (inner[j] as u32, inner[j + 2] as u32);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            ranges.push((lo, hi));
            j += 3;
        } else {
            ranges.push((inner[j] as u32, inner[j] as u32));
            j += 1;
        }
    }
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    ranges
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let m = body.trim().parse().expect("bad quantifier");
                    (m, m)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).sum();
            let mut roll = rng.below(total);
            for &(lo, hi) in ranges {
                let span = (hi - lo + 1) as u64;
                if roll < span {
                    return char::from_u32(lo + roll as u32).expect("valid class char");
                }
                roll -= span;
            }
            unreachable!("roll below total")
        }
        Atom::Printable => match rng.below(10) {
            // Mostly printable ASCII; sometimes Latin-1 or wider, which is
            // what `\PC` totality tests want to see.
            0..=7 => char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii"),
            8 => char::from_u32(0xA1 + rng.below(0x0100) as u32).unwrap_or('¿'),
            _ => ['λ', '中', '🦀', 'ß', '€', '—'][rng.below(6) as usize],
        },
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.usize_inclusive(piece.min, piece.max);
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_rng::TestRng;

    #[test]
    fn identifier_pattern() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase(), "{s:?}");
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_pattern_bounds() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = generate("\\PC{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literal_and_quantifiers() {
        let mut rng = TestRng::from_seed(3);
        assert_eq!(generate("abc", &mut rng), "abc");
        let s = generate("x{3}", &mut rng);
        assert_eq!(s, "xxx");
        for _ in 0..50 {
            let s = generate("a?b+", &mut rng);
            assert!(s.trim_start_matches('a').chars().all(|c| c == 'b'));
            assert!(s.contains('b'));
        }
    }
}
