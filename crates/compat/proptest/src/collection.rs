//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_inclusive(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, sizes)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng::TestRng;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = vec(0u8..5, 2..6);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            lens.insert(v.len());
        }
        assert!(lens.len() > 1, "length never varied");
    }
}
