//! Deterministic RNG backing the shim's generation.

/// xoshiro256++ generator seeded from a string (test path) or integer.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an integer.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Seed deterministically from a test identifier (FNV-1a of the path),
    /// so every test gets its own reproducible stream.
    pub fn deterministic(test_path: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, span)`.
    ///
    /// # Panics
    /// Panics if `span == 0`.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "below(0)");
        let mut m = (self.next_u64() as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = (self.next_u64() as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    #[inline]
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        lo + self.below((hi - lo) as u64 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
